//! The serving layer's three load-bearing properties (ISSUE 10):
//!
//! 1. admission control is typed: a tenant at its queue-depth limit gets
//!    `MigrateError::Rejected` with the tenant/depth/limit that tripped,
//!    and the cluster is untouched;
//! 2. the weighted deficit scheduler never starves a tenant — every
//!    admitted job completes, for every tenant, under skewed overload;
//! 3. a `kill:`+`join:` fault plan mid-stream changes *when* jobs run but
//!    not *what* they compute: per-tenant memory digests are bit-identical
//!    to the fault-free run.

use cucc::cluster::ClusterSpec;
use cucc::core::{
    synthetic_stream, DeadlineClass, JobServer, JobSpec, MigrateError, RunOptions, ServeConfig,
    ServePolicy,
};
use proptest::prelude::*;

fn server(nodes: u32, config: ServeConfig) -> JobServer {
    JobServer::new(ClusterSpec::simd_focused().with_nodes(nodes), config).unwrap()
}

#[test]
fn queue_full_rejection_is_typed() {
    let mut srv = server(
        2,
        ServeConfig {
            policy: ServePolicy::Fair,
            queue_depth: 3,
            ..ServeConfig::default()
        },
    );
    let spec = |i: usize| JobSpec {
        tenant: 9,
        class: DeadlineClass::Interactive,
        kernel: 0,
        elems: 512,
        nodes: 1,
        arrival: i as f64 * 1e-7,
        scale: 1.5,
    };
    for i in 0..3 {
        srv.submit(&spec(i)).unwrap();
    }
    match srv.submit(&spec(3)).unwrap_err() {
        MigrateError::Rejected {
            tenant,
            depth,
            limit,
        } => assert_eq!((tenant, depth, limit), (9, 3, 3)),
        other => panic!("expected Rejected, got {other}"),
    }
    // Another tenant is unaffected by tenant 9's backlog.
    srv.submit(&JobSpec {
        tenant: 1,
        ..spec(4)
    })
    .unwrap();
}

#[test]
fn overload_rejections_surface_in_the_report() {
    // Arrivals far faster than service: a shallow queue must reject.
    let jobs = synthetic_stream(300, 4, 3, 1e-8);
    let mut srv = server(
        2,
        ServeConfig {
            policy: ServePolicy::Fair,
            queue_depth: 4,
            ..ServeConfig::default()
        },
    );
    let report = srv.run(&jobs).unwrap();
    assert!(report.rejected > 0, "shallow queue under overload rejects");
    assert_eq!(report.submitted, 300);
    assert_eq!(report.completed, report.admitted, "admitted jobs all run");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under skewed overloaded arrivals, the fair scheduler completes
    /// every admitted job of every tenant: nobody starves.
    #[test]
    fn no_tenant_starves_under_skewed_arrivals(
        jobs in 40usize..120,
        tenants in 2u32..8,
        nodes in 2u32..6,
        seed in 1u64..5000,
    ) {
        let stream = synthetic_stream(jobs, tenants, seed, 1e-7);
        let mut srv = server(nodes, ServeConfig {
            policy: ServePolicy::Fair,
            queue_depth: 0,
            ..ServeConfig::default()
        });
        let report = srv.run(&stream).unwrap();
        prop_assert_eq!(report.rejected, 0);
        prop_assert_eq!(report.completed, jobs);
        for t in &report.per_tenant {
            prop_assert_eq!(
                t.completed, t.admitted,
                "tenant {} starved: {}/{} completed", t.tenant, t.completed, t.admitted
            );
            prop_assert!(t.p99_total.is_finite());
        }
    }
}

#[test]
fn mid_stream_kill_and_join_is_bit_identical_to_fault_free() {
    let jobs = synthetic_stream(80, 5, 17, 5e-5);
    let run = |faulted: bool| {
        let mut options = RunOptions::builder();
        if faulted {
            // Node 1 dies a few launches in and rejoins later; node 0
            // survives throughout. Placement capacity resizes at each
            // membership epoch.
            options = options
                .fault("kill:node=1@t=0.00002")
                .unwrap()
                .fault("join:node=1@t=0.00008")
                .unwrap();
        }
        let mut srv = server(
            3,
            ServeConfig {
                policy: ServePolicy::Fair,
                queue_depth: 0,
                options: options.build(),
            },
        );
        let report = srv.run(&jobs).unwrap();
        assert_eq!(report.completed, 80, "faulted={faulted}");
        (report.digests.clone(), report.node_failures)
    };
    let (clean, clean_failures) = run(false);
    let (faulted, faulted_failures) = run(true);
    assert_eq!(clean_failures, 0);
    assert!(faulted_failures > 0, "the kill actually fired");
    assert_eq!(
        clean, faulted,
        "admitted jobs complete bit-identically across the fault"
    );
}
