//! Round-trip property tests for the mini-CUDA front-end: for randomly
//! *constructed* kernels, `parse(print(k))` must execute identically to
//! `k`, and printing must be idempotent (`print(parse(print(k))) ==
//! print(k)`).

use cucc::exec::{execute_launch, Arg, MemPool};
use cucc::ir::printer::print_kernel;
use cucc::ir::{parse_kernel, validate, Expr, KernelBuilder, LaunchConfig, MemRef, Scalar, VarId};
use proptest::prelude::*;

/// Recipe for one random statement.
#[derive(Debug, Clone)]
enum StmtRecipe {
    Let(ExprRecipe),
    Store(ExprRecipe, ExprRecipe),
    If(ExprRecipe, Vec<StmtRecipe>),
    For(u8, Vec<StmtRecipe>),
}

/// Recipe for one random integer expression over the ambient context.
#[derive(Debug, Clone)]
enum ExprRecipe {
    Const(i64),
    Tid,
    Bid,
    Param,
    Var(u8),
    Add(Box<ExprRecipe>, Box<ExprRecipe>),
    Sub(Box<ExprRecipe>, Box<ExprRecipe>),
    Mul(Box<ExprRecipe>, Box<ExprRecipe>),
    Lt(Box<ExprRecipe>, Box<ExprRecipe>),
    Select(Box<ExprRecipe>, Box<ExprRecipe>, Box<ExprRecipe>),
}

fn expr_recipe() -> impl Strategy<Value = ExprRecipe> {
    let leaf = prop_oneof![
        (-9i64..10).prop_map(ExprRecipe::Const),
        Just(ExprRecipe::Tid),
        Just(ExprRecipe::Bid),
        Just(ExprRecipe::Param),
        (0u8..4).prop_map(ExprRecipe::Var),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprRecipe::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprRecipe::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprRecipe::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprRecipe::Lt(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| ExprRecipe::Select(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn stmt_recipe() -> impl Strategy<Value = StmtRecipe> {
    let leaf = prop_oneof![
        expr_recipe().prop_map(StmtRecipe::Let),
        (expr_recipe(), expr_recipe()).prop_map(|(i, v)| StmtRecipe::Store(i, v)),
    ];
    leaf.prop_recursive(2, 12, 4, |inner| {
        prop_oneof![
            (expr_recipe(), prop::collection::vec(inner.clone(), 1..3))
                .prop_map(|(c, b)| StmtRecipe::If(c, b)),
            (1u8..4, prop::collection::vec(inner, 1..3)).prop_map(|(n, b)| StmtRecipe::For(n, b)),
        ]
    })
}

/// Materialize recipes into a real kernel. All stores are masked into the
/// output buffer with a final `% LEN` guard... but `%` breaks nothing here
/// since we only check round-trip + execution equivalence.
fn build_kernel(stmts: &[StmtRecipe]) -> cucc::ir::Kernel {
    const LEN: i64 = 256;
    let mut b = KernelBuilder::new("rnd");
    let out = b.buffer("out", Scalar::I64);
    let p = b.scalar("p", Scalar::I32);
    // A pool of pre-defined variables the recipes may read.
    let vars: Vec<VarId> = (0..4)
        .map(|i| b.let_(format!("v{i}"), Expr::int(i as i64 + 1)))
        .collect();

    fn expr(r: &ExprRecipe, p: &Expr, vars: &[VarId]) -> Expr {
        match r {
            ExprRecipe::Const(v) => Expr::int(*v),
            ExprRecipe::Tid => Expr::ThreadIdx(cucc::ir::Axis::X),
            ExprRecipe::Bid => Expr::BlockIdx(cucc::ir::Axis::X),
            ExprRecipe::Param => p.clone(),
            ExprRecipe::Var(i) => Expr::Var(vars[*i as usize % vars.len()]),
            ExprRecipe::Add(a, c) => expr(a, p, vars).add(expr(c, p, vars)),
            ExprRecipe::Sub(a, c) => expr(a, p, vars).sub(expr(c, p, vars)),
            ExprRecipe::Mul(a, c) => expr(a, p, vars).mul(expr(c, p, vars)),
            ExprRecipe::Lt(a, c) => expr(a, p, vars).lt(expr(c, p, vars)),
            ExprRecipe::Select(c, a, d) => Expr::Select {
                cond: Box::new(expr(c, p, vars)),
                then_value: Box::new(expr(a, p, vars)),
                else_value: Box::new(expr(d, p, vars)),
            },
        }
    }

    fn emit(
        b: &mut KernelBuilder,
        stmts: &[StmtRecipe],
        out: MemRef,
        p: &Expr,
        vars: &[VarId],
        fresh: &mut u32,
    ) {
        for s in stmts {
            match s {
                StmtRecipe::Let(e) => {
                    let name = format!("t{}", *fresh);
                    *fresh += 1;
                    b.let_(name, expr(e, p, vars));
                }
                StmtRecipe::Store(i, v) => {
                    // Mask the index into range with a (non-affine) modulo:
                    // index = ((i % LEN) + LEN) % LEN.
                    let raw = expr(i, p, vars);
                    let idx = raw
                        .rem(Expr::int(LEN))
                        .add(Expr::int(LEN))
                        .rem(Expr::int(LEN));
                    b.store(out, idx, expr(v, p, vars));
                }
                StmtRecipe::If(c, body) => {
                    let cond = expr(c, p, vars);
                    // Borrow-friendly: build nested statements directly.
                    b.if_then(cond, |b| emit(b, body, out, p, vars, fresh));
                }
                StmtRecipe::For(n, body) => {
                    let name = format!("i{}", *fresh);
                    *fresh += 1;
                    b.for_range(name, Expr::int(*n as i64), |b, _i| {
                        emit(b, body, out, p, vars, fresh)
                    });
                }
            }
        }
    }

    let mut fresh = 0;
    let stmts_vec = stmts.to_vec();
    emit(&mut b, &stmts_vec, out, &p, &vars, &mut fresh);
    b.finish()
}

fn run(k: &cucc::ir::Kernel) -> Vec<u8> {
    let mut pool = MemPool::new();
    let out = pool.alloc_elems(Scalar::I64, 256);
    execute_launch(
        k,
        LaunchConfig::new(3u32, 8u32),
        &[Arg::Buffer(out), Arg::int(5)],
        &mut pool,
    )
    .expect("random kernels are total (no div, masked indices)");
    pool.bytes(out).to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// parse(print(k)) executes identically to k.
    #[test]
    fn print_parse_execution_equivalence(recipes in prop::collection::vec(stmt_recipe(), 1..6)) {
        let k = build_kernel(&recipes);
        validate(&k).expect("generated kernels are valid");
        let printed = print_kernel(&k);
        let reparsed = parse_kernel(&printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        validate(&reparsed).unwrap();
        prop_assert_eq!(run(&k), run(&reparsed), "printed form:\n{}", printed);
    }

    /// Printing is idempotent across one parse round trip.
    #[test]
    fn print_is_idempotent(recipes in prop::collection::vec(stmt_recipe(), 1..6)) {
        let k = build_kernel(&recipes);
        let p1 = print_kernel(&k);
        let k2 = parse_kernel(&p1).unwrap();
        let p2 = print_kernel(&k2);
        prop_assert_eq!(p1, p2);
    }
}
