//! Property tests for the kernel verifier (`cucc-analysis::verify`).
//!
//! The verifier's contract is a two-sided soundness pact with the dynamic
//! sanitizer (`cucc-exec::sanitize`), checked here over a corpus of random
//! affine kernels with **exact, known buffer extents** and no division or
//! barriers (so every verdict direction is decidable):
//!
//! 1. `Safe` is a proof: if the sanitizer observes an inter-block
//!    write-write race, the static race verdict must not be `Safe`; if it
//!    traps an out-of-bounds access, the static bounds verdict must not be
//!    `Safe`.
//! 2. `Must` is a witness: a MUST-level race verdict must reproduce as an
//!    observed dynamic race, and a MUST-level bounds verdict as a dynamic
//!    OOB trap.
//!
//! `Unknown`/`May` are unconstrained — imprecision is allowed, unsoundness
//! is not.

use cucc::analysis::{verify_launch, PropertyVerdict};
use cucc::exec::{sanitize_launch, Arg, MemPool};
use cucc::ir::{parse_kernel, validate, LaunchConfig};
use proptest::prelude::*;

/// One random verifier subject: an indexing shape, a launch geometry, and
/// an allocation shortfall (elements removed from the exact footprint; 0
/// means the buffer fits exactly, >0 forces out-of-bounds traps).
#[derive(Debug, Clone)]
struct Subject {
    shape: Shape,
    blocks: u32,
    threads: u32,
    shortfall: u64,
}

#[derive(Debug, Clone)]
enum Shape {
    /// `out[(b·T + t) · stride]` — disjoint per-block footprints.
    Strided { stride: i64 },
    /// `out[t]` — every block writes the same window.
    BlockInvariant,
    /// `out[b·(T − overlap) + t]` — adjacent blocks share `overlap` elems.
    Halo { overlap: u32 },
    /// `out[id] = …; out[id + gap] = …` — second site shifted by `gap`.
    TwoSite { gap: i64 },
    /// `if (id < n) out[id] = …` — guarded tail, exact extent `n`.
    GuardedTail { quarters: i64 },
}

impl Subject {
    fn total(&self) -> i64 {
        self.blocks as i64 * self.threads as i64
    }

    /// Clamp shape parameters to the launch (halo overlap < threads).
    fn overlap(&self) -> i64 {
        match self.shape {
            Shape::Halo { overlap } => (overlap as i64).min(self.threads as i64 - 1).max(0),
            _ => 0,
        }
    }

    fn source(&self) -> String {
        let body = match &self.shape {
            Shape::Strided { stride } => format!(
                "int id = blockIdx.x * blockDim.x + threadIdx.x;
                 out[id * {stride}] = id;"
            ),
            Shape::BlockInvariant => "out[threadIdx.x] = 1;".to_string(),
            Shape::Halo { .. } => format!(
                "out[blockIdx.x * (blockDim.x - {}) + threadIdx.x] = 1;",
                self.overlap()
            ),
            Shape::TwoSite { gap } => format!(
                "int id = blockIdx.x * blockDim.x + threadIdx.x;
                 out[id] = id;
                 out[id + {gap}] = id;"
            ),
            Shape::GuardedTail { .. } => "int id = blockIdx.x * blockDim.x + threadIdx.x;
                 if (id < n) out[id] = id;"
                .to_string(),
        };
        let params = match self.shape {
            Shape::GuardedTail { .. } => "int* out, int n",
            _ => "int* out",
        };
        format!("__global__ void k({params}) {{ {body} }}")
    }

    /// Exact element footprint of all writes (before the shortfall).
    fn exact_extent(&self) -> i64 {
        let total = self.total();
        match &self.shape {
            Shape::Strided { stride } => (total - 1) * stride + 1,
            Shape::BlockInvariant => self.threads as i64,
            Shape::Halo { .. } => {
                (self.blocks as i64 - 1) * (self.threads as i64 - self.overlap())
                    + self.threads as i64
            }
            Shape::TwoSite { gap } => total + gap,
            Shape::GuardedTail { quarters } => (total * quarters / 4).max(1),
        }
    }

    fn n_arg(&self) -> Option<i64> {
        match self.shape {
            Shape::GuardedTail { .. } => Some(self.exact_extent()),
            _ => None,
        }
    }
}

fn subject() -> impl Strategy<Value = Subject> {
    let shape = prop_oneof![
        (1i64..4).prop_map(|stride| Shape::Strided { stride }),
        Just(Shape::BlockInvariant),
        (0u32..3).prop_map(|overlap| Shape::Halo { overlap }),
        (0i64..6).prop_map(|gap| Shape::TwoSite { gap }),
        (1i64..=4).prop_map(|quarters| Shape::GuardedTail { quarters }),
    ];
    (
        shape,
        1u32..6,
        prop::sample::select(vec![2u32, 4, 8]),
        0u64..3,
    )
        .prop_map(|(shape, blocks, threads, shortfall)| Subject {
            shape,
            blocks,
            threads,
            shortfall,
        })
}

/// Run both the static verifier (exact extents, no assumed-extent cap) and
/// the dynamic sanitizer on a subject; returns `(report, dynamic)`.
fn run_both(s: &Subject) -> (cucc::analysis::VerifyReport, cucc::exec::SanitizeReport) {
    let kernel = parse_kernel(&s.source()).unwrap();
    validate(&kernel).unwrap();
    let launch = LaunchConfig::new(s.blocks, s.threads);
    let extent = (s.exact_extent() as u64).saturating_sub(s.shortfall).max(1);
    let mut pool = MemPool::new();
    let out = pool.alloc(extent as usize * 4);
    let mut args = vec![Arg::Buffer(out)];
    let mut extents = vec![Some(extent)];
    if let Some(n) = s.n_arg() {
        args.push(Arg::int(n));
        extents.push(None);
    }
    let report = verify_launch(&kernel, launch, &args, &extents, false, None);
    let dynamic = sanitize_launch(&kernel, launch, &args, &pool);
    (report, dynamic)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Two-sided soundness: `Safe` never contradicted dynamically, `Must`
    /// always reproduced dynamically.
    #[test]
    fn verifier_sound_against_sanitizer(s in subject()) {
        let (report, dynamic) = run_both(&s);
        // Safe is a proof.
        if !dynamic.races.is_empty() {
            prop_assert!(
                report.race != PropertyVerdict::Safe,
                "dynamic race but static Safe on {:?}\n{:?}", s, dynamic.races
            );
        }
        if !dynamic.oob.is_empty() {
            prop_assert!(
                report.bounds != PropertyVerdict::Safe,
                "dynamic OOB but static Safe on {:?}\n{:?}", s, dynamic.oob
            );
        }
        // Must is a witness.
        if report.race == PropertyVerdict::Must {
            prop_assert!(
                !dynamic.races.is_empty(),
                "MUST race did not reproduce on {:?}\n{:?}", s, report.diagnostics
            );
        }
        if report.bounds == PropertyVerdict::Must {
            prop_assert!(
                !dynamic.oob.is_empty(),
                "MUST bounds did not reproduce on {:?}\n{:?}", s, report.diagnostics
            );
        }
        // Corpus has no barriers: the barrier rule must prove uniformity.
        prop_assert_eq!(report.barrier, PropertyVerdict::Safe);
    }

    /// Precision floor: exact-extent strided kernels are fully proven safe
    /// (no spurious MAY/UNKNOWN on the bread-and-butter affine pattern).
    #[test]
    fn strided_exact_is_proven_safe(
        stride in 1i64..4,
        blocks in 1u32..6,
        threads in prop::sample::select(vec![2u32, 4, 8]),
    ) {
        let s = Subject {
            shape: Shape::Strided { stride },
            blocks,
            threads,
            shortfall: 0,
        };
        let (report, dynamic) = run_both(&s);
        prop_assert_eq!(report.race, PropertyVerdict::Safe, "{:?}", report.diagnostics);
        prop_assert_eq!(report.bounds, PropertyVerdict::Safe, "{:?}", report.diagnostics);
        prop_assert!(dynamic.clean(), "{:?}", dynamic.summary());
    }

    /// Block-invariant writes with ≥2 blocks and an exactly-sized buffer
    /// are a MUST-level race — and the sanitizer sees them.
    #[test]
    fn block_invariant_is_must_race(
        blocks in 2u32..6,
        threads in prop::sample::select(vec![2u32, 4, 8]),
    ) {
        let s = Subject {
            shape: Shape::BlockInvariant,
            blocks,
            threads,
            shortfall: 0,
        };
        let (report, dynamic) = run_both(&s);
        prop_assert_eq!(report.race, PropertyVerdict::Must, "{:?}", report.diagnostics);
        prop_assert!(!dynamic.races.is_empty());
    }
}
