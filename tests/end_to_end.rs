//! End-to-end migration tests: every evaluation benchmark, compiled through
//! the full CuCC pipeline and executed **functionally** on simulated
//! clusters of several sizes, must produce exactly the results of the GPU
//! reference device (which itself is verified against pure-Rust reference
//! implementations inside `cucc-workloads`).

use cucc::cluster::ClusterSpec;
use cucc::core::{compile_source, CuccCluster, ExecMode, RuntimeConfig};
use cucc::pgas::{PgasCluster, PgasConfig};
use cucc::workloads::{perf_suite, run_reference_check, setup_args, Benchmark, Scale};

fn simd_cluster(n: u32) -> ClusterSpec {
    ClusterSpec::simd_focused().with_nodes(n)
}

fn thread_cluster(n: u32) -> ClusterSpec {
    ClusterSpec::thread_focused().with_nodes(n)
}

/// Run one benchmark functionally on a CuCC cluster and verify outputs.
fn check_cucc(bench: &dyn Benchmark, spec: ClusterSpec) {
    let ck = compile_source(&bench.source()).unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
    let mut cluster = CuccCluster::with_options(spec, RuntimeConfig::default());
    let (args, handles) = setup_args(bench, &ck.kernel, &mut cluster);
    cluster
        .launch(&ck, bench.launch(), &args)
        .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
    run_reference_check(bench, &mut cluster, &handles).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn all_benchmarks_on_simd_cluster_sizes() {
    for bench in perf_suite(Scale::Test) {
        for nodes in [1u32, 2, 4, 8] {
            check_cucc(bench.as_ref(), simd_cluster(nodes));
        }
    }
}

#[test]
fn all_benchmarks_on_thread_cluster() {
    for bench in perf_suite(Scale::Test) {
        for nodes in [2u32, 4] {
            check_cucc(bench.as_ref(), thread_cluster(nodes));
        }
    }
}

#[test]
fn odd_node_counts_work() {
    // Non-power-of-two clusters exercise remainder callbacks and the Bruck
    // paths.
    for bench in perf_suite(Scale::Test) {
        check_cucc(bench.as_ref(), simd_cluster(3));
        check_cucc(bench.as_ref(), simd_cluster(7));
    }
}

#[test]
fn pgas_baseline_matches_references_too() {
    for bench in perf_suite(Scale::Test) {
        let ck = compile_source(&bench.source()).unwrap();
        let mut pg = PgasCluster::new(simd_cluster(4), PgasConfig::default());
        let (args, handles) = setup_args(bench.as_ref(), &ck.kernel, &mut pg);
        pg.launch(&ck, bench.launch(), &args)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name()));
        run_reference_check(bench.as_ref(), &mut pg, &handles).unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn all_benchmarks_distribute_not_replicate() {
    // The eight evaluation programs must actually take the three-phase
    // path, not the fallback.
    for bench in perf_suite(Scale::Test) {
        let ck = compile_source(&bench.source()).unwrap();
        let mut cluster = CuccCluster::with_options(simd_cluster(4), RuntimeConfig::default());
        let (args, _) = setup_args(bench.as_ref(), &ck.kernel, &mut cluster);
        let report = cluster.launch(&ck, bench.launch(), &args).unwrap();
        assert!(
            report.mode.is_three_phase(),
            "{} fell back to replication: {:?}",
            bench.name(),
            report.mode
        );
    }
}

#[test]
fn node_memories_fully_consistent_after_launch() {
    for bench in perf_suite(Scale::Test) {
        let ck = compile_source(&bench.source()).unwrap();
        let mut cluster = CuccCluster::with_options(simd_cluster(5), RuntimeConfig::default());
        let (args, _) = setup_args(bench.as_ref(), &ck.kernel, &mut cluster);
        cluster.launch(&ck, bench.launch(), &args).unwrap();
        assert!(
            cluster.sim().fully_consistent(),
            "{}: node memories diverged",
            bench.name()
        );
    }
}

#[test]
fn callback_counts_match_partition_arithmetic() {
    // VecCopy at Listing-1 size on two nodes: Figure 5's exact partition.
    let bench = cucc::workloads::perf::VecCopy::new(Scale::Test);
    let ck = compile_source(&bench.source()).unwrap();
    let mut cluster = CuccCluster::with_options(simd_cluster(2), RuntimeConfig::default());
    let (args, _) = setup_args(&bench, &ck.kernel, &mut cluster);
    let report = cluster.launch(&ck, bench.launch(), &args).unwrap();
    match report.mode {
        ExecMode::ThreePhase {
            partial_blocks_per_node,
            callback_blocks,
            ..
        } => {
            assert_eq!(partial_blocks_per_node, 2);
            assert_eq!(callback_blocks, 1);
        }
        other => panic!("unexpected mode {other:?}"),
    }
}
