//! Stream/event scheduler properties: random async DAGs must stay
//! byte-identical to default-stream serial execution, hazard-carrying DAGs
//! must serialize to the single-stream layout exactly, and independent
//! streams must genuinely overlap on the simulated clock.

use cucc::cluster::ClusterSpec;
use cucc::core::{compile_source, CompiledKernel, CuccCluster, RuntimeConfig};
use cucc::exec::Arg;
use cucc::ir::LaunchConfig;
use cucc::trace::Track;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

const SCALE: &str = "__global__ void scale(float* x, float* y, float a, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) y[id] = a * x[id] + y[id];
}";

const STEP: &str = "__global__ void step(float* data, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) data[id] = data[id] * 0.5f + 1.0f;
}";

fn cluster(nodes: u32) -> CuccCluster {
    CuccCluster::with_options(
        ClusterSpec::simd_focused().with_nodes(nodes),
        RuntimeConfig::default(),
    )
}

fn f32_bytes(vals: impl Iterator<Item = f32>) -> Vec<u8> {
    vals.flat_map(|v| v.to_le_bytes()).collect()
}

/// One independent chain of host ops: upload `x`, scale into `y`, read
/// `y` back. Chains touch disjoint buffers, so they are hazard-free
/// against each other.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ChainOp {
    H2d,
    Launch,
    D2h,
}

/// A random interleaving of `chains` chains × 3 ops each, preserving each
/// chain's internal order.
fn interleaving(chains: usize, seed: u64) -> Vec<(usize, ChainOp)> {
    let mut order: Vec<usize> = (0..chains).flat_map(|c| [c, c, c]).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let mut next = vec![0usize; chains];
    order
        .into_iter()
        .map(|c| {
            let op = [ChainOp::H2d, ChainOp::Launch, ChainOp::D2h][next[c]];
            next[c] += 1;
            (c, op)
        })
        .collect()
}

struct Chain {
    x: cucc::exec::BufferId,
    y: cucc::exec::BufferId,
    data: Vec<u8>,
    n: usize,
}

fn setup_chains(cl: &mut CuccCluster, chains: usize, n: usize, seed: u64) -> Vec<Chain> {
    (0..chains)
        .map(|c| Chain {
            x: cl.alloc(n * 4),
            y: cl.alloc(n * 4),
            data: f32_bytes((0..n).map(|i| ((i + c) as f32 + seed as f32 % 17.0).sin())),
            n,
        })
        .collect()
}

fn chain_args(ch: &Chain) -> [Arg; 4] {
    [
        Arg::Buffer(ch.x),
        Arg::Buffer(ch.y),
        Arg::float(1.5),
        Arg::int(ch.n as i64),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any random stream/event DAG over hazard-free chains produces memory
    /// byte-identical to default-stream serial execution, and the
    /// overlapped layout never ends later than the serial one (beyond f64
    /// association noise).
    #[test]
    fn hazard_free_dags_match_serial_memory(
        chains in 1usize..4,
        nodes in 2u32..5,
        n in 512usize..4000,
        num_streams in 1usize..4,
        assign_seed in any::<u64>(),
        shuffle_seed in any::<u64>(),
        with_events in any::<bool>(),
    ) {
        let ck = compile_source(SCALE).unwrap();
        let ops = interleaving(chains, shuffle_seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(assign_seed);

        // Serial reference on the default stream (sync API).
        let mut serial = cluster(nodes);
        let sc = setup_chains(&mut serial, chains, n, shuffle_seed);
        let mut serial_out: Vec<Vec<u8>> = vec![Vec::new(); chains];
        for &(c, op) in &ops {
            let launch = LaunchConfig::cover1(sc[c].n as u64, 128);
            match op {
                ChainOp::H2d => serial.upload(sc[c].x, &sc[c].data).unwrap(),
                ChainOp::Launch => { serial.launch(&ck, launch, &chain_args(&sc[c])).unwrap(); }
                ChainOp::D2h => serial_out[c] = serial.download::<u8>(sc[c].y).unwrap(),
            }
        }
        let serial_elapsed = serial.clock();

        // Async replay: random chain→stream assignment, random event edges.
        let mut cl = cluster(nodes);
        let ac = setup_chains(&mut cl, chains, n, shuffle_seed);
        let streams: Vec<_> = (0..num_streams).map(|_| cl.stream_create()).collect();
        let assign: Vec<_> = (0..chains).map(|_| streams[rng.gen_range(0..num_streams)]).collect();
        let mut async_out: Vec<Vec<u8>> = vec![Vec::new(); chains];
        let mut last_event = None;
        for &(c, op) in &ops {
            let s = assign[c];
            let launch = LaunchConfig::cover1(ac[c].n as u64, 128);
            match op {
                ChainOp::H2d => cl.upload_on(ac[c].x, &ac[c].data, s).unwrap(),
                ChainOp::Launch => { cl.launch_on(&ck, launch, &chain_args(&ac[c]), s).unwrap(); }
                ChainOp::D2h => async_out[c] = cl.download_on::<u8>(ac[c].y, s).unwrap(),
            }
            if with_events {
                // Random backward-pointing event edges between streams:
                // they add ordering but can never deadlock or change
                // functional results.
                if rng.gen_bool(0.3) {
                    last_event = Some(cl.event_record(s));
                }
                if let Some(ev) = last_event {
                    if rng.gen_bool(0.3) {
                        let waiter = streams[rng.gen_range(0..num_streams)];
                        cl.stream_wait_event(waiter, ev);
                    }
                }
            }
        }
        let async_elapsed = cl.synchronize().unwrap();

        prop_assert_eq!(&async_out, &serial_out);
        for c in 0..chains {
            // d2h_async returned eagerly; the settled memory agrees.
            prop_assert_eq!(&cl.download::<u8>(ac[c].y).unwrap(), &serial_out[c]);
        }
        prop_assert!(
            async_elapsed <= serial_elapsed * (1.0 + 1e-9),
            "async {} > serial {}", async_elapsed, serial_elapsed
        );
    }

    /// Every op of every chain touches one shared buffer: RAW/WAW/WAR
    /// hazards must serialize the DAG to exactly the single-stream layout,
    /// bit-for-bit, whatever the stream assignment.
    #[test]
    fn hazard_carrying_dags_serialize(
        launches in 2usize..6,
        nodes in 2u32..5,
        n in 512usize..3000,
        num_streams in 2usize..4,
        assign_seed in any::<u64>(),
    ) {
        let ck = compile_source(STEP).unwrap();
        let launch = LaunchConfig::cover1(n as u64, 128);
        let init = f32_bytes((0..n).map(|i| i as f32 * 0.25));

        let run = |streams_to_use: usize, seed: u64| {
            let mut cl = cluster(nodes);
            let buf = cl.alloc(n * 4);
            let streams: Vec<_> = (0..streams_to_use).map(|_| cl.stream_create()).collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            cl.upload_on(buf, &init, streams[rng.gen_range(0..streams_to_use)]).unwrap();
            for _ in 0..launches {
                let s = streams[rng.gen_range(0..streams_to_use)];
                cl.launch_on(&ck, launch, &[Arg::Buffer(buf), Arg::int(n as i64)], s).unwrap();
            }
            let elapsed = cl.synchronize().unwrap();
            (elapsed, cl.download::<u8>(buf).unwrap())
        };

        let (t_one, mem_one) = run(1, assign_seed);
        let (t_many, mem_many) = run(num_streams, assign_seed);
        prop_assert_eq!(t_one.to_bits(), t_many.to_bits(),
            "hazard DAG must serialize: single-stream {} vs multi-stream {}", t_one, t_many);
        prop_assert_eq!(mem_one, mem_many);
    }
}

/// Helper for the overlap tests: a two-stream h2d+kernel pipeline over
/// independent replicas, vs the same pipeline on the default stream.
fn pipeline_elapsed(ck: &CompiledKernel, streams: usize, replicas: usize) -> (f64, CuccCluster) {
    let n = 32_768usize;
    let data = f32_bytes((0..n).map(|i| i as f32));
    let launch = LaunchConfig::cover1(n as u64, 256);
    let mut cl = cluster(4);
    let ss: Vec<_> = (0..streams).map(|_| cl.stream_create()).collect();
    for r in 0..replicas {
        let x = cl.alloc(n * 4);
        let y = cl.alloc(n * 4);
        let args = [
            Arg::Buffer(x),
            Arg::Buffer(y),
            Arg::float(2.0),
            Arg::int(n as i64),
        ];
        if ss.is_empty() {
            cl.upload(x, &data).unwrap();
            cl.launch(ck, launch, &args).unwrap();
        } else {
            let s = ss[r % ss.len()];
            cl.upload_on(x, &data, s).unwrap();
            cl.launch_on(ck, launch, &args, s).unwrap();
        }
    }
    let elapsed = cl.synchronize().expect("synchronize");
    (elapsed, cl)
}

/// Acceptance criterion: two independent streams overlap on the simulated
/// clock with a ≥1.2× end-to-end win, and the trace shows concurrent
/// spans on distinct lanes.
#[test]
fn two_stream_pipeline_overlaps_at_least_1_2x() {
    let ck = compile_source(SCALE).unwrap();
    let (serial, _) = pipeline_elapsed(&ck, 0, 6);
    let (overlapped, cl) = pipeline_elapsed(&ck, 2, 6);
    let speedup = serial / overlapped;
    assert!(
        speedup >= 1.2,
        "expected >=1.2x from transfer/compute overlap, got {speedup:.3}x \
         (serial {serial:.6}, overlapped {overlapped:.6})"
    );

    // Concurrency is visible in the trace: a host-lane transfer span and a
    // node-lane compute span overlap in simulated time.
    let spans = cl.timeline().spans();
    let concurrent = spans.iter().any(|a| {
        a.track == Track::Host
            && a.dur > 0.0
            && spans.iter().any(|b| {
                matches!(b.track, Track::Node(_))
                    && b.dur > 0.0
                    && a.start < b.end()
                    && b.start < a.end()
            })
    });
    assert!(concurrent, "no concurrent host/node spans in the trace");
}

/// The default stream alone reproduces the serial pipeline's per-replica
/// memory exactly (bit-for-bit guarantee of the refactor).
#[test]
fn default_stream_pipeline_is_serial() {
    let ck = compile_source(SCALE).unwrap();
    let (serial, s_cl) = pipeline_elapsed(&ck, 0, 3);
    let (single, a_cl) = pipeline_elapsed(&ck, 1, 3);
    // One stream still chains physical span ends, so elapsed agrees up to
    // f64 association; span counts and wire traffic agree exactly.
    assert!((serial - single).abs() <= 1e-9 * serial.max(single));
    assert_eq!(s_cl.timeline().spans().len(), a_cl.timeline().spans().len());
    assert_eq!(s_cl.wire_bytes(), a_cl.wire_bytes());
}
