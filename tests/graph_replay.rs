//! Launch-graph capture/replay and the graph communication optimizer.
//!
//! The contract under test: replaying a captured graph leaves every buffer
//! **bit-identical** to running the same ops uncaptured, no matter how many
//! Allgathers the optimizer elides or narrows — and the elision actually
//! happens (zero gather wire bytes) when every consumer read is covered by
//! node-resident data.

use cucc::cluster::ClusterSpec;
use cucc::core::{compile_source, CuccCluster, GraphCapture, LaunchGraph, RuntimeConfig};
use cucc::exec::Arg;
use cucc::ir::LaunchConfig;
use proptest::prelude::*;

const ELEMS: usize = 1024;
const THREADS: u32 = 64;
/// Buffers carry a 64-element tail beyond the written region so shifted
/// reads (`r[id + k]`, k ≤ 64) stay in bounds without a tail guard.
const PAD: usize = 64;

fn cluster(nodes: u32) -> CuccCluster {
    CuccCluster::with_options(
        ClusterSpec::simd_focused().with_nodes(nodes),
        RuntimeConfig::default(),
    )
}

fn launch_cfg() -> LaunchConfig {
    LaunchConfig::cover1(ELEMS as u64, THREADS)
}

/// Unguarded producer: dense, slice-local writes, no tail block.
const PROD: &str = "__global__ void prod(float* x) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    x[id] = x[id] * 3.0f + 1.0f;
}";

/// Unguarded slice-local consumer: reads exactly what its node wrote.
const CONS: &str = "__global__ void cons(float* x, float* y) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    y[id] = x[id] + 2.0f;
}";

fn seeded(seed: u64, len: usize) -> Vec<f32> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-8.0..8.0)).collect()
}

fn bytes(data: &[f32]) -> Vec<u8> {
    <f32 as cucc::core::HostScalar>::encode(data).into_owned()
}

/// The ISSUE's acceptance scenario: a 2-kernel producer→consumer graph
/// where the consumer reads only its node-local slice. Both gathers must
/// be elided — zero gather wire bytes inside the replay window — and
/// memory after download must match the uncaptured run bit-for-bit.
#[test]
fn slice_local_consumer_elides_all_gathers() {
    let prod = compile_source(PROD).unwrap();
    let cons = compile_source(CONS).unwrap();
    let xs = seeded(7, ELEMS);

    let mut a = cluster(4);
    let x = a.alloc(ELEMS * 4);
    let y = a.alloc(ELEMS * 4);
    let mut cap = GraphCapture::new();
    cap.upload(x, bytes(&xs));
    cap.launch(&prod, launch_cfg(), &[Arg::Buffer(x)]);
    cap.launch(&cons, launch_cfg(), &[Arg::Buffer(x), Arg::Buffer(y)]);
    let graph = cap.finish();

    let stats = a.graph_replay(&graph).unwrap();
    assert_eq!(stats.gathers_elided, 2, "both producer gathers must elide");
    assert_eq!(stats.gathers_full, 0);
    assert_eq!(stats.gathers_narrowed, 0);
    assert_eq!(stats.materializations, 0);
    assert_eq!(
        stats.wire_bytes, 0,
        "elided replay must move no gather bytes"
    );
    assert!(stats.wire_bytes_saved > 0, "savings vs the planned gathers");
    assert_eq!(stats.cache_misses, 2, "first replay plans fresh");

    // Second replay: schedules come entirely from the cache.
    let stats2 = a.graph_replay(&graph).unwrap();
    assert_eq!(stats2.cache_hits, 2);
    assert_eq!(stats2.cache_misses, 0);
    assert_eq!(stats2.cache_hit_rate(), 1.0);
    assert_eq!(stats2.wire_bytes, 0);

    // Uncaptured reference: same ops, same number of iterations.
    let mut b = cluster(4);
    let xb = b.alloc(ELEMS * 4);
    let yb = b.alloc(ELEMS * 4);
    for _ in 0..2 {
        b.upload::<f32>(xb, &xs).unwrap();
        b.launch(&prod, launch_cfg(), &[Arg::Buffer(xb)]).unwrap();
        b.launch(&cons, launch_cfg(), &[Arg::Buffer(xb), Arg::Buffer(yb)])
            .unwrap();
    }
    assert_eq!(
        a.download::<u8>(x).unwrap(),
        b.download::<u8>(xb).unwrap(),
        "x diverged from the uncaptured run"
    );
    assert_eq!(
        a.download::<u8>(y).unwrap(),
        b.download::<u8>(yb).unwrap(),
        "y diverged from the uncaptured run"
    );
}

/// A consumer that reads one thread-block past its own index: most bytes
/// are node-resident, but each node's last 256 bytes live on its right
/// neighbour. The optimizer must *narrow* the gather to those sub-ranges
/// instead of eliding it away or falling back to the full collective.
#[test]
fn shifted_consumer_narrows_the_gather() {
    let prod = compile_source(PROD).unwrap();
    let shift = compile_source(
        "__global__ void sh(float* y, float* x) {
            int id = blockIdx.x * blockDim.x + threadIdx.x;
            y[id] = x[id + 64];
        }",
    )
    .unwrap();
    let xs = seeded(11, ELEMS + PAD);

    let mut a = cluster(4);
    let x = a.alloc((ELEMS + PAD) * 4);
    let y = a.alloc(ELEMS * 4);
    let mut cap = GraphCapture::new();
    cap.upload(x, bytes(&xs));
    cap.launch(&prod, launch_cfg(), &[Arg::Buffer(x)]);
    cap.launch(&shift, launch_cfg(), &[Arg::Buffer(y), Arg::Buffer(x)]);
    let graph = cap.finish();
    let stats = a.graph_replay(&graph).unwrap();

    assert_eq!(stats.gathers_elided, 2, "x and y gathers both deferred");
    assert_eq!(
        stats.gathers_narrowed, 1,
        "x narrowed for the shifted reads"
    );
    assert_eq!(stats.materializations, 0);
    assert!(stats.wire_bytes > 0, "the narrowed gather moves real bytes");
    assert!(
        stats.wire_bytes_saved > 0,
        "narrowing must still beat the planned full gathers"
    );

    let mut b = cluster(4);
    let xb = b.alloc((ELEMS + PAD) * 4);
    let yb = b.alloc(ELEMS * 4);
    b.upload::<f32>(xb, &xs).unwrap();
    b.launch(&prod, launch_cfg(), &[Arg::Buffer(xb)]).unwrap();
    b.launch(&shift, launch_cfg(), &[Arg::Buffer(yb), Arg::Buffer(xb)])
        .unwrap();
    assert_eq!(a.download::<u8>(x).unwrap(), b.download::<u8>(xb).unwrap());
    assert_eq!(a.download::<u8>(y).unwrap(), b.download::<u8>(yb).unwrap());
}

/// A consumer whose read index is not affine (`x[(id·id) % n]`) gets an
/// `Unknown` footprint: the optimizer must fall back to materializing the
/// full deferred Allgather before the consumer runs — never guess.
#[test]
fn non_must_footprint_falls_back_to_full_gather() {
    let prod = compile_source(PROD).unwrap();
    let gather_all = compile_source(
        "__global__ void ga(float* y, float* x, int n) {
            int id = blockIdx.x * blockDim.x + threadIdx.x;
            y[id] = x[(id * id) % n];
        }",
    )
    .unwrap();
    let xs = seeded(13, ELEMS);

    let mut a = cluster(4);
    let x = a.alloc(ELEMS * 4);
    let y = a.alloc(ELEMS * 4);
    let mut cap = GraphCapture::new();
    cap.upload(x, bytes(&xs));
    cap.launch(&prod, launch_cfg(), &[Arg::Buffer(x)]);
    cap.launch(
        &gather_all,
        launch_cfg(),
        &[Arg::Buffer(y), Arg::Buffer(x), Arg::int(ELEMS as i64)],
    );
    let graph = cap.finish();
    let stats = a.graph_replay(&graph).unwrap();

    assert_eq!(
        stats.materializations, 1,
        "Unknown footprint must materialize"
    );
    assert!(
        stats.wire_bytes > 0,
        "the fallback gather moves the full region"
    );
    assert_eq!(stats.gathers_narrowed, 0);

    let mut b = cluster(4);
    let xb = b.alloc(ELEMS * 4);
    let yb = b.alloc(ELEMS * 4);
    b.upload::<f32>(xb, &xs).unwrap();
    b.launch(&prod, launch_cfg(), &[Arg::Buffer(xb)]).unwrap();
    b.launch(
        &gather_all,
        launch_cfg(),
        &[Arg::Buffer(yb), Arg::Buffer(xb), Arg::int(ELEMS as i64)],
    )
    .unwrap();
    assert_eq!(a.download::<u8>(x).unwrap(), b.download::<u8>(xb).unwrap());
    assert_eq!(a.download::<u8>(y).unwrap(), b.download::<u8>(yb).unwrap());
}

/// A graph-external launch after a replay must first materialize any
/// pending (elided) gathers its arguments depend on.
#[test]
fn external_launch_materializes_pending_state() {
    let prod = compile_source(PROD).unwrap();
    let cons = compile_source(CONS).unwrap();

    let xs = seeded(17, ELEMS);
    let mut a = cluster(4);
    let x = a.alloc(ELEMS * 4);
    let y = a.alloc(ELEMS * 4);
    a.upload::<f32>(x, &xs).unwrap();
    let mut cap = GraphCapture::new();
    cap.launch(&prod, launch_cfg(), &[Arg::Buffer(x)]);
    let graph = cap.finish();
    a.graph_replay(&graph).unwrap();
    assert_eq!(a.pending_gathers(), vec![x], "x left pending by the replay");
    // Regular (uncaptured) launch: consumes x outside the graph machinery.
    a.launch(&cons, launch_cfg(), &[Arg::Buffer(x), Arg::Buffer(y)])
        .unwrap();
    assert!(
        a.pending_gathers().is_empty(),
        "external launch materialized x"
    );

    let mut b = cluster(4);
    let xb = b.alloc(ELEMS * 4);
    let yb = b.alloc(ELEMS * 4);
    b.upload::<f32>(xb, &xs).unwrap();
    b.launch(&prod, launch_cfg(), &[Arg::Buffer(xb)]).unwrap();
    b.launch(&cons, launch_cfg(), &[Arg::Buffer(xb), Arg::Buffer(yb)])
        .unwrap();
    assert_eq!(a.download::<u8>(y).unwrap(), b.download::<u8>(yb).unwrap());
}

// ---------------------------------------------------------------------
// Randomized producer/consumer DAGs
// ---------------------------------------------------------------------

/// One randomized captured op over a 3-buffer pool.
#[derive(Debug, Clone)]
enum Op {
    /// Re-broadcast fresh seeded data into a buffer.
    Upload { buf: usize, seed: u64 },
    /// `w[id] = w[id]·c + d` — slice-local read-modify-write.
    Scale { buf: usize, c: f32, d: f32 },
    /// `w[id] = w[id] + r[id]` — slice-local elementwise combine.
    Add { dst: usize, src: usize },
    /// `w[id] = r[id + k]` — shifted read crossing slice boundaries.
    Shift { dst: usize, src: usize, k: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..3, any::<u64>()).prop_map(|(buf, seed)| Op::Upload { buf, seed }),
        (0usize..3, -2.0f32..2.0, -2.0f32..2.0).prop_map(|(buf, c, d)| Op::Scale { buf, c, d }),
        (0usize..3, 0usize..3).prop_map(|(dst, src)| Op::Add { dst, src }),
        (
            0usize..3,
            0usize..3,
            prop::sample::select(vec![16usize, 64])
        )
            .prop_map(|(dst, src, k)| Op::Shift {
                dst,
                // A self-shift would race its own writes; read a neighbour.
                src: if src == dst { (src + 1) % 3 } else { src },
                k,
            }),
    ]
}

fn op_sources(op: &Op) -> String {
    match op {
        Op::Upload { .. } => String::new(),
        Op::Scale { .. } => "__global__ void sc(float* w, float c, float d) {
            int id = blockIdx.x * blockDim.x + threadIdx.x;
            w[id] = w[id] * c + d;
        }"
        .to_string(),
        Op::Add { .. } => "__global__ void ad(float* w, float* r) {
            int id = blockIdx.x * blockDim.x + threadIdx.x;
            w[id] = w[id] + r[id];
        }"
        .to_string(),
        Op::Shift { k, .. } => format!(
            "__global__ void sh{k}(float* w, float* r) {{
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                w[id] = r[id + {k}];
            }}"
        ),
    }
}

/// Capture the op sequence into a graph against `cl`'s buffer ids.
fn capture_ops(ops: &[Op], bufs: &[cucc::exec::BufferId]) -> LaunchGraph {
    let mut cap = GraphCapture::new();
    for op in ops {
        match op {
            Op::Upload { buf, seed } => {
                let data = seeded(*seed, ELEMS + PAD);
                cap.upload(bufs[*buf], bytes(&data));
            }
            Op::Scale { buf, c, d } => {
                let ck = compile_source(&op_sources(op)).unwrap();
                cap.launch(
                    &ck,
                    launch_cfg(),
                    &[
                        Arg::Buffer(bufs[*buf]),
                        Arg::float(*c as f64),
                        Arg::float(*d as f64),
                    ],
                );
            }
            Op::Add { dst, src } => {
                let ck = compile_source(&op_sources(op)).unwrap();
                cap.launch(
                    &ck,
                    launch_cfg(),
                    &[Arg::Buffer(bufs[*dst]), Arg::Buffer(bufs[*src])],
                );
            }
            Op::Shift { dst, src, .. } => {
                let ck = compile_source(&op_sources(op)).unwrap();
                cap.launch(
                    &ck,
                    launch_cfg(),
                    &[Arg::Buffer(bufs[*dst]), Arg::Buffer(bufs[*src])],
                );
            }
        }
    }
    cap.finish()
}

/// Run the op sequence uncaptured.
fn run_ops(cl: &mut CuccCluster, ops: &[Op], bufs: &[cucc::exec::BufferId]) {
    for op in ops {
        match op {
            Op::Upload { buf, seed } => {
                cl.upload::<f32>(bufs[*buf], &seeded(*seed, ELEMS + PAD))
                    .unwrap();
            }
            Op::Scale { buf, c, d } => {
                let ck = compile_source(&op_sources(op)).unwrap();
                cl.launch(
                    &ck,
                    launch_cfg(),
                    &[
                        Arg::Buffer(bufs[*buf]),
                        Arg::float(*c as f64),
                        Arg::float(*d as f64),
                    ],
                )
                .unwrap();
            }
            Op::Add { dst, src } | Op::Shift { dst, src, .. } => {
                let ck = compile_source(&op_sources(op)).unwrap();
                cl.launch(
                    &ck,
                    launch_cfg(),
                    &[Arg::Buffer(bufs[*dst]), Arg::Buffer(bufs[*src])],
                )
                .unwrap();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random producer/consumer DAGs over shared buffers — exercising
    /// elision, narrowing, re-elision of rewritten buffers, and uploads
    /// clearing pending state — two replays of the captured graph leave
    /// all memory bit-identical to two uncaptured runs of the same ops.
    #[test]
    fn replayed_graphs_match_uncaptured_runs_bitwise(
        ops in prop::collection::vec(op_strategy(), 3..9),
        init in any::<u64>(),
        nodes in prop::sample::select(vec![2u32, 4]),
    ) {
        let mut a = cluster(nodes);
        let mut b = cluster(nodes);
        let ba: Vec<_> = (0..3).map(|_| a.alloc((ELEMS + PAD) * 4)).collect();
        let bb: Vec<_> = (0..3).map(|_| b.alloc((ELEMS + PAD) * 4)).collect();
        for i in 0..3 {
            let data = seeded(init.wrapping_add(i as u64), ELEMS + PAD);
            a.upload::<f32>(ba[i], &data).unwrap();
            b.upload::<f32>(bb[i], &data).unwrap();
        }

        let graph = capture_ops(&ops, &ba);
        let s1 = a.graph_replay(&graph).unwrap();
        let s2 = a.graph_replay(&graph).unwrap();
        run_ops(&mut b, &ops, &bb);
        run_ops(&mut b, &ops, &bb);

        // Replay 2 plans nothing: every launch hits the schedule cache.
        prop_assert_eq!(s2.cache_misses, 0);
        prop_assert_eq!(s2.cache_hits, s1.cache_hits + s1.cache_misses);

        for i in 0..3 {
            prop_assert_eq!(
                a.download::<u8>(ba[i]).unwrap(),
                b.download::<u8>(bb[i]).unwrap(),
                "buffer {} diverged after replay (ops: {:?})", i, &ops
            );
        }
    }
}
