//! Throwaway review test: two node deaths in one launch.

use cucc::cluster::ClusterSpec;
use cucc::core::{compile_source, CuccCluster, FaultPlan, RuntimeConfig};
use cucc::exec::Arg;
use cucc::ir::LaunchConfig;

const SAXPY: &str = "__global__ void f(float* x, float* y, float a, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) y[id] = a * x[id] + y[id];
}";

fn run(faults: FaultPlan) -> Vec<u8> {
    let ck = compile_source(SAXPY).unwrap();
    // 13 blocks on 4 nodes: 12 distributed chunks, divisible by 3 and by 2,
    // so both deaths re-partition (no degraded fallback).
    let n = 13 * 128;
    let xs: Vec<f32> = (0..n).map(|i| i as f32 * 0.25 - 100.0).collect();
    let ys: Vec<f32> = (0..n).map(|i| 50.0 - i as f32 * 0.125).collect();
    let mut cl = CuccCluster::new(
        ClusterSpec::simd_focused().with_nodes(4),
        RuntimeConfig::builder().faults(faults).build(),
    );
    let x = cl.alloc(n * 4);
    let y = cl.alloc(n * 4);
    cl.upload::<f32>(x, &xs).unwrap();
    cl.upload::<f32>(y, &ys).unwrap();
    let report = cl
        .launch(
            &ck,
            LaunchConfig::cover1(n as u64, 128),
            &[
                Arg::Buffer(x),
                Arg::Buffer(y),
                Arg::float(2.0),
                Arg::int(n as i64),
            ],
        )
        .expect("recoverable");
    eprintln!("faults = {:?}, mode three-phase = {}", report.faults, report.mode.is_three_phase());
    cl.download::<u8>(y).unwrap()
}

#[test]
fn double_kill_recovers_bit_identical_memory() {
    let want = run(FaultPlan::none());
    let got = run(FaultPlan::none().kill(1, 0.0).kill(3, 0.0));
    assert_eq!(got, want, "double-death recovery diverged from fault-free run");
}
