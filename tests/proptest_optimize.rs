//! Property tests for the IR optimizer: optimization must preserve exact
//! execution semantics (same memory contents, same control decisions) for
//! randomly generated expression kernels.

use cucc::exec::{execute_launch, Arg, MemPool};
use cucc::ir::{optimize, parse_kernel, validate, LaunchConfig, Scalar};
use proptest::prelude::*;

/// Grammar of random integer expressions over `threadIdx.x`, `blockIdx.x`,
/// the scalar parameter `n` and constants.
fn expr_strategy() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(|v| v.to_string()),
        Just("threadIdx.x".to_string()),
        Just("blockIdx.x".to_string()),
        Just("n".to_string()),
        Just("0".to_string()),
        Just("1".to_string()),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop::sample::select(vec![
                    "+", "-", "*", "&", "|", "^", "<", "<=", "==", "&&", "||"
                ])
            )
                .prop_map(|(a, b, op)| format!("({a} {op} {b})")),
            (inner.clone()).prop_map(|a| format!("(-{a})")),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, a, b)| format!("({c} ? {a} : {b})")),
        ]
    })
}

fn run(src: &str, n: i64) -> Result<Vec<u8>, String> {
    let k = parse_kernel(src).map_err(|e| e.to_string())?;
    validate(&k).map_err(|e| e.to_string())?;
    let mut pool = MemPool::new();
    let out = pool.alloc_elems(Scalar::I64, 64);
    execute_launch(
        &k,
        LaunchConfig::new(4u32, 16u32),
        &[Arg::Buffer(out), Arg::int(n)],
        &mut pool,
    )
    .map_err(|e| e.to_string())?;
    Ok(pool.bytes(out).to_vec())
}

fn run_optimized(src: &str, n: i64) -> Result<Vec<u8>, String> {
    let mut k = parse_kernel(src).map_err(|e| e.to_string())?;
    validate(&k).map_err(|e| e.to_string())?;
    optimize(&mut k);
    // The optimizer must never break validity.
    validate(&k).map_err(|e| format!("optimizer broke validation: {e}"))?;
    let mut pool = MemPool::new();
    let out = pool.alloc_elems(Scalar::I64, 64);
    execute_launch(
        &k,
        LaunchConfig::new(4u32, 16u32),
        &[Arg::Buffer(out), Arg::int(n)],
        &mut pool,
    )
    .map_err(|e| e.to_string())?;
    Ok(pool.bytes(out).to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Optimized kernels compute identical memory images (including the
    /// identical error outcome for kernels that divide by zero).
    #[test]
    fn optimization_preserves_semantics(e in expr_strategy(), n in -5i64..70) {
        let src = format!(
            "__global__ void k(long* out, int n) {{
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                int v = {e};
                if (id < 64)
                    out[id] = v;
            }}"
        );
        let original = run(&src, n);
        let optimized = run_optimized(&src, n);
        prop_assert_eq!(original, optimized);
    }

    /// Guards built from random conditions make the same taking decisions
    /// after optimization (exercise dead-branch elimination with both
    /// outcomes present).
    #[test]
    fn branch_decisions_preserved(c in expr_strategy(), n in 0i64..70) {
        let src = format!(
            "__global__ void k(long* out, int n) {{
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < 64) {{
                    if ({c})
                        out[id] = 1;
                    else
                        out[id] = 2;
                }}
            }}"
        );
        prop_assert_eq!(run(&src, n), run_optimized(&src, n));
    }

    /// Loop bounds built from constants: zero-trip elimination leaves the
    /// induction variable with the right final value.
    #[test]
    fn loop_semantics_preserved(s in -4i64..8, e in -4i64..8, n in 1i64..64) {
        let src = format!(
            "__global__ void k(long* out, int n) {{
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                int acc = 7;
                for (int i = {s}; i < {e}; i++)
                    acc += i * i + 1;
                if (id < 64)
                    out[id] = acc * 100 + n;
            }}"
        );
        prop_assert_eq!(run(&src, n), run_optimized(&src, n));
    }
}
