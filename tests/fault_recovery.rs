//! Property tests of the fault-tolerant runtime: for randomized kernels,
//! data, cluster sizes and injected single-node faults, a recovered launch
//! must reproduce the fault-free memory bit-for-bit — and a fault plan that
//! never fires must reproduce the fault-free `LaunchReport` bit-for-bit.

use cucc::cluster::ClusterSpec;
use cucc::core::{compile_source, CompiledKernel, CuccCluster, FaultPlan, RuntimeConfig};
use cucc::exec::Arg;
use cucc::ir::LaunchConfig;
use proptest::prelude::*;

/// saxpy-like family: `y[id] = a·x[id] + y[id]` with a tail guard and a
/// random per-thread multiplicity (same family as `proptest_distributed`).
fn family_source(width: usize) -> String {
    if width == 1 {
        "__global__ void f(float* x, float* y, float a, int n) {
            int id = blockIdx.x * blockDim.x + threadIdx.x;
            if (id < n) y[id] = a * x[id] + y[id];
        }"
        .to_string()
    } else {
        format!(
            "__global__ void f(float* x, float* y, float a, int n) {{
                for (int i = 0; i < {width}; i++) {{
                    int id = blockIdx.x * blockDim.x + threadIdx.x;
                    if (id * {width} + i < n)
                        y[id * {width} + i] = a * x[id * {width} + i] + y[id * {width} + i];
                }}
            }}"
        )
    }
}

/// Run the kernel on a fresh cluster with `faults` armed and return the
/// launch outcome, the final bytes of `y`, and the cluster itself.
#[allow(clippy::too_many_arguments)]
fn run(
    ck: &CompiledKernel,
    nodes: u32,
    launch: LaunchConfig,
    xs: &[f32],
    ys: &[f32],
    a: f64,
    n: usize,
    faults: FaultPlan,
) -> (cucc::core::LaunchReport, Vec<u8>, CuccCluster) {
    let mut cl = CuccCluster::with_options(
        ClusterSpec::simd_focused().with_nodes(nodes),
        RuntimeConfig::builder().faults(faults).build(),
    );
    let x = cl.alloc(n * 4);
    let y = cl.alloc(n * 4);
    cl.upload::<f32>(x, xs).unwrap();
    cl.upload::<f32>(y, ys).unwrap();
    let report = cl
        .launch(
            ck,
            launch,
            &[
                Arg::Buffer(x),
                Arg::Buffer(y),
                Arg::float(a),
                Arg::int(n as i64),
            ],
        )
        .expect("single-node faults must be recoverable");
    let bytes = cl.download::<u8>(y).unwrap();
    (report, bytes, cl)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Killing one random node at a random time yields memory bit-identical
    /// to the fault-free run, whether the kill fires before, during, or
    /// after the collective (or never).
    #[test]
    fn killed_node_recovers_bit_identical_memory(
        n in 256usize..4000,
        block in prop::sample::select(vec![64u32, 128, 256]),
        width in prop::sample::select(vec![1usize, 2]),
        nodes in 2u32..6,
        a in -2.0f64..2.0,
        victim in 0u32..8,
        kill_t in prop::sample::select(vec![0.0f64, 1e-7, 1e-5, 1e-3]),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let xs: Vec<f32> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let ys: Vec<f32> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let threads = n.div_ceil(width) as u64;
        let launch = LaunchConfig::cover1(threads, block);
        let ck = compile_source(&family_source(width)).unwrap();
        let victim = victim % nodes;

        let (clean_report, want, _) =
            run(&ck, nodes, launch, &xs, &ys, a, n, FaultPlan::none());
        let (report, got, cl) =
            run(&ck, nodes, launch, &xs, &ys, a, n, FaultPlan::none().kill(victim, kill_t));

        prop_assert_eq!(got, want, "recovered memory diverged (victim={}, t={})", victim, kill_t);
        if report.faults.failures > 0 {
            prop_assert!(!cl.is_alive(victim as usize), "confirmed-dead node still alive");
            prop_assert_eq!(cl.active_nodes(), nodes as usize - 1);
        } else {
            // The kill never fired (replicated schedule, or the collective
            // finished before `kill_t`): the report must match bit-for-bit.
            prop_assert_eq!(report, clean_report);
        }
    }

    /// A straggling node stretches the clock but never corrupts memory or
    /// counts as a failure.
    #[test]
    fn straggler_keeps_memory_and_stays_clean(
        n in 256usize..3000,
        nodes in 2u32..6,
        a in -2.0f64..2.0,
        victim in 0u32..8,
        factor in 1.5f64..6.0,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let xs: Vec<f32> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let ys: Vec<f32> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let launch = LaunchConfig::cover1(n as u64, 128);
        let ck = compile_source(&family_source(1)).unwrap();
        let victim = victim % nodes;

        let (clean_report, want, _) =
            run(&ck, nodes, launch, &xs, &ys, a, n, FaultPlan::none());
        let (report, got, _) = run(
            &ck, nodes, launch, &xs, &ys, a, n,
            FaultPlan::none().straggle(victim, 0.0, factor),
        );

        prop_assert_eq!(got, want, "straggler corrupted memory");
        prop_assert!(report.faults.is_clean(), "straggler counted as a failure");
        prop_assert!(
            report.times.total() >= clean_report.times.total(),
            "a straggler cannot make the launch faster"
        );
    }

    /// A fault plan that is armed but never fires must leave every launch
    /// bit-for-bit identical to a launch with no fault plan at all — the
    /// injection layer costs nothing until a fault actually lands.
    #[test]
    fn unfired_fault_plans_reproduce_clean_reports_bitwise(
        n in 256usize..3000,
        block in prop::sample::select(vec![64u32, 128, 256]),
        nodes in 1u32..6,
        a in -2.0f64..2.0,
        victim in 0u32..8,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let xs: Vec<f32> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let ys: Vec<f32> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let launch = LaunchConfig::cover1(n as u64, block);
        let ck = compile_source(&family_source(1)).unwrap();
        let victim = victim % nodes;

        let (clean, want, _) = run(&ck, nodes, launch, &xs, &ys, a, n, FaultPlan::none());
        // Kill far beyond any simulated completion time: armed, never fires.
        let (armed, got, _) =
            run(&ck, nodes, launch, &xs, &ys, a, n, FaultPlan::none().kill(victim, 1e9));

        prop_assert_eq!(got, want);
        prop_assert_eq!(&armed, &clean);
        prop_assert_eq!(armed.times.total().to_bits(), clean.times.total().to_bits());
        prop_assert_eq!(armed.wire_bytes, clean.wire_bytes);
    }
}

/// Two node deaths in one launch. 13 blocks on 4 nodes leave 12 distributed
/// chunks — divisible by 3 and by 2 — so both deaths re-partition across the
/// survivors (no degraded fallback) and memory must still match the
/// fault-free run bit-for-bit.
#[test]
fn double_kill_recovers_bit_identical_memory() {
    let ck = compile_source(&family_source(1)).unwrap();
    let n = 13 * 128;
    let xs: Vec<f32> = (0..n).map(|i| i as f32 * 0.25 - 100.0).collect();
    let ys: Vec<f32> = (0..n).map(|i| 50.0 - i as f32 * 0.125).collect();
    let launch = LaunchConfig::cover1(n as u64, 128);

    let (_, want, _) = run(&ck, 4, launch, &xs, &ys, 2.0, n, FaultPlan::none());
    let (report, got, cl) = run(
        &ck,
        4,
        launch,
        &xs,
        &ys,
        2.0,
        n,
        FaultPlan::none().kill(1, 0.0).kill(3, 0.0),
    );

    assert_eq!(
        got, want,
        "double-death recovery diverged from fault-free run"
    );
    assert_eq!(report.faults.failures, 2, "both kills must be confirmed");
    assert!(!cl.is_alive(1) && !cl.is_alive(3));
    assert_eq!(cl.active_nodes(), 2);
}
