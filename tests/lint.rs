//! End-to-end lint coverage: one kernel exhibiting four distinct finding
//! kinds with source-line attribution, and the graph-level dead-launch
//! lint on a captured graph (the acceptance shape of the `cucc lint`
//! subcommand).

use cucc::analysis::lint_kernel;
use cucc::core::{compile_source, lint_graph, GraphCapture};
use cucc::exec::{Arg, BufferId};
use cucc::ir::{parse_kernel_with_map, validate, LaunchConfig};

#[test]
fn lint_reports_four_kinds_with_lines() {
    let src = "__global__ void demo(float* out, int n) {
        __shared__ float scratch[64];
        int id = blockIdx.x * blockDim.x + threadIdx.x;
        scratch[threadIdx.x] = out[id % 64];
        __syncthreads();
        if (n > 0) {
            __syncthreads();
        }
        if (id < 100000) {
            out[id % 64] = 1.0f;
        } else {
            out[0] = 0.0f;
        }
    }";
    let (kernel, map) = parse_kernel_with_map(src).unwrap();
    validate(&kernel).unwrap();
    let args = [Arg::Buffer(BufferId(0)), Arg::int(7)];
    let report = lint_kernel(
        &kernel,
        LaunchConfig::new(4u32, 64u32),
        &args,
        &[Some(64), None],
        Some(&map),
    )
    .unwrap();

    let kinds: std::collections::BTreeSet<&str> = report
        .diagnostics
        .iter()
        .map(|d| d.message.split(':').next().unwrap())
        .collect();
    for kind in [
        "dead store",
        "uniform branch barrier",
        "constant condition",
        "unreachable code",
    ] {
        assert!(kinds.contains(kind), "missing `{kind}` in {kinds:?}");
    }
    assert!(kinds.len() >= 4);

    // Every sited finding carries a source line.
    let sited: Vec<_> = report
        .diagnostics
        .iter()
        .filter_map(|d| d.site.as_ref())
        .collect();
    assert!(sited.len() >= 3, "{:?}", report.diagnostics);
    assert!(sited.iter().all(|s| s.line.is_some()));
    // Spot-check two attributions against the source above.
    let dead = report
        .diagnostics
        .iter()
        .find(|d| d.message.starts_with("dead store"))
        .unwrap();
    assert_eq!(dead.site.as_ref().unwrap().line, Some(4));
    let ubb = report
        .diagnostics
        .iter()
        .find(|d| d.message.starts_with("uniform branch barrier"))
        .unwrap();
    assert_eq!(ubb.site.as_ref().unwrap().line, Some(7));
}

#[test]
fn graph_dead_launch_lint_fires() {
    let ck = compile_source(
        "__global__ void fill(float* x, int n) {
            int id = blockIdx.x * blockDim.x + threadIdx.x;
            if (id < n) x[id] = 3.0f;
        }",
    )
    .unwrap();
    let x = BufferId(0);
    let launch = LaunchConfig::cover1(512, 64);
    let args = [Arg::Buffer(x), Arg::int(512)];
    let mut cap = GraphCapture::new();
    let dead = cap.launch(&ck, launch, &args);
    cap.launch(&ck, launch, &args);
    let findings = lint_graph(&cap.finish());
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.starts_with("dead launch"));
    assert_eq!(findings[0].site.as_ref().unwrap().ordinal, dead);
}
