//! Multi-dimensional launch tests: 2-D/3-D thread and block indexing,
//! CUDA's x-fastest linearization, and distributed execution of 2-D/3-D
//! grids (row- and plane-chunked Allgather distribution).

use cucc::cluster::ClusterSpec;
use cucc::core::{compile_source, CuccCluster, RuntimeConfig};
use cucc::exec::{execute_launch, Arg, MemPool};
use cucc::gpu_model::{GpuDevice, GpuSpec};
use cucc::ir::{LaunchConfig, Scalar};

#[test]
fn thread_linearization_is_x_fastest() {
    // Each thread writes its linear id computed from 3-D coordinates; the
    // result must be the identity sequence iff the interpreter linearizes
    // x-fastest like CUDA.
    let src = "__global__ void lin(int* out) {
        int tid = (threadIdx.z * blockDim.y + threadIdx.y) * blockDim.x + threadIdx.x;
        out[tid] = tid;
    }";
    let k = cucc::ir::parse_kernel(src).unwrap();
    let mut pool = MemPool::new();
    let total = 4 * 3 * 2;
    let out = pool.alloc_elems(Scalar::I32, total);
    execute_launch(
        &k,
        LaunchConfig::new(1u32, (4u32, 3u32, 2u32)),
        &[Arg::Buffer(out)],
        &mut pool,
    )
    .unwrap();
    assert_eq!(pool.read_i32(out), (0..total as i32).collect::<Vec<_>>());
}

#[test]
fn block_linearization_is_x_fastest() {
    let src = "__global__ void lin(int* out) {
        int bid = (blockIdx.z * gridDim.y + blockIdx.y) * gridDim.x + blockIdx.x;
        out[bid] = bid * 10;
    }";
    let k = cucc::ir::parse_kernel(src).unwrap();
    let mut pool = MemPool::new();
    let total = 3 * 2 * 2;
    let out = pool.alloc_elems(Scalar::I32, total);
    execute_launch(
        &k,
        LaunchConfig::new((3u32, 2u32, 2u32), 1u32),
        &[Arg::Buffer(out)],
        &mut pool,
    )
    .unwrap();
    assert_eq!(
        pool.read_i32(out),
        (0..total as i32).map(|i| i * 10).collect::<Vec<_>>()
    );
}

#[test]
fn three_d_grid_distributes_by_plane() {
    // A 3-D volume fill: blocks (bx, by, bz) tile a WxHxD volume; only
    // whole z-planes have dense footprints, so the planner must pick
    // plane-granularity chunks.
    let src = "__global__ void fill3d(float* vol, int w, int h) {
        int x = blockIdx.x * blockDim.x + threadIdx.x;
        int y = blockIdx.y * blockDim.y + threadIdx.y;
        int z = blockIdx.z;
        vol[(z * h + y) * w + x] = (float)(z * 1000 + y * 10 + x);
    }";
    let ck = compile_source(src).unwrap();
    assert!(ck.is_distributable());
    let (w, h, d) = (32usize, 16usize, 8usize);
    let launch = LaunchConfig::new((2u32, 2u32, d as u32), (16u32, 8u32, 1u32));

    // GPU reference.
    let mut gpu = GpuDevice::new(GpuSpec::a100());
    let gv = gpu.alloc(w * h * d * 4);
    gpu.launch(
        &ck.kernel,
        launch,
        &[Arg::Buffer(gv), Arg::int(w as i64), Arg::int(h as i64)],
    )
    .unwrap();
    let want = gpu.d2h(gv);

    for nodes in [2u32, 4] {
        let mut cl = CuccCluster::with_options(
            ClusterSpec::simd_focused().with_nodes(nodes),
            RuntimeConfig::default(),
        );
        let cv = cl.alloc(w * h * d * 4);
        let report = cl
            .launch(
                &ck,
                launch,
                &[Arg::Buffer(cv), Arg::int(w as i64), Arg::int(h as i64)],
            )
            .unwrap();
        assert!(report.mode.is_three_phase(), "nodes={nodes}");
        assert_eq!(cl.download::<u8>(cv).unwrap(), want, "nodes={nodes}");
    }
}

#[test]
fn rectangular_blocks_and_grids() {
    // Non-square 2-D geometry with different x/y extents everywhere.
    let src = "__global__ void idx2(float* out, int w) {
        int x = blockIdx.x * blockDim.x + threadIdx.x;
        int y = blockIdx.y * blockDim.y + threadIdx.y;
        out[y * w + x] = (float)(y) * 100.0f + (float)(x);
    }";
    let ck = compile_source(src).unwrap();
    let (bw, bh) = (8u32, 4u32);
    let (gw, gh) = (3u32, 5u32);
    let (w, h) = ((bw * gw) as usize, (bh * gh) as usize);
    let launch = LaunchConfig::new((gw, gh), (bw, bh));

    let mut cl = CuccCluster::with_options(
        ClusterSpec::thread_focused().with_nodes(3),
        RuntimeConfig::default(),
    );
    let out = cl.alloc(w * h * 4);
    cl.launch(&ck, launch, &[Arg::Buffer(out), Arg::int(w as i64)])
        .unwrap();
    let got = cl.download::<f32>(out).unwrap();
    for y in 0..h {
        for x in 0..w {
            assert_eq!(got[y * w + x], y as f32 * 100.0 + x as f32, "({x},{y})");
        }
    }
}

#[test]
fn grid_dim_registers_visible_in_kernel() {
    let src = "__global__ void dims(int* out) {
        out[0] = gridDim.x;
        out[1] = gridDim.y;
        out[2] = gridDim.z;
        out[3] = blockDim.x;
        out[4] = blockDim.y;
        out[5] = blockDim.z;
    }";
    let k = cucc::ir::parse_kernel(src).unwrap();
    let mut pool = MemPool::new();
    let out = pool.alloc_elems(Scalar::I32, 6);
    execute_launch(
        &k,
        LaunchConfig::new((5u32, 4u32, 3u32), (2u32, 1u32, 1u32)),
        &[Arg::Buffer(out)],
        &mut pool,
    )
    .unwrap();
    assert_eq!(pool.read_i32(out), vec![5, 4, 3, 2, 1, 1]);
}
