//! Property tests of the distributed runtime: for randomized kernels, data
//! and cluster sizes, CuCC's three-phase execution and the PGAS baseline
//! must both reproduce the GPU reference byte-for-byte.

use cucc::cluster::ClusterSpec;
use cucc::core::{compile_source, CuccCluster, RuntimeConfig};
use cucc::exec::Arg;
use cucc::gpu_model::{GpuDevice, GpuSpec};
use cucc::ir::LaunchConfig;
use cucc::pgas::{PgasCluster, PgasConfig};
use proptest::prelude::*;

/// saxpy-like family: `y[id] = a·x[id] + y[id]` with a tail guard and a
/// random per-thread multiplicity.
fn family_source(width: usize) -> String {
    if width == 1 {
        "__global__ void f(float* x, float* y, float a, int n) {
            int id = blockIdx.x * blockDim.x + threadIdx.x;
            if (id < n) y[id] = a * x[id] + y[id];
        }"
        .to_string()
    } else {
        format!(
            "__global__ void f(float* x, float* y, float a, int n) {{
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                for (int i = 0; i < {width}; i++) {{
                    if (id * {width} + i < n)
                        y[id * {width} + i] = a * x[id * {width} + i] + y[id * {width} + i];
                }}
            }}"
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distributed_equals_gpu_reference(
        n in 64usize..5000,
        block in prop::sample::select(vec![32u32, 64, 128, 256]),
        width in prop::sample::select(vec![1usize, 2, 3]),
        nodes in 1u32..7,
        a in -2.0f64..2.0,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let xs: Vec<f32> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let ys: Vec<f32> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let threads = n.div_ceil(width) as u64;
        let launch = LaunchConfig::cover1(threads, block);
        let ck = compile_source(&family_source(width)).unwrap();
        let args_for = |x, y| [Arg::Buffer(x), Arg::Buffer(y), Arg::float(a), Arg::int(n as i64)];

        // GPU reference.
        let mut gpu = GpuDevice::new(GpuSpec::v100());
        let gx = gpu.alloc(n * 4);
        let gy = gpu.alloc(n * 4);
        gpu.pool_mut().write_f32(gx, &xs);
        gpu.pool_mut().write_f32(gy, &ys);
        gpu.launch(&ck.kernel, launch, &args_for(gx, gy)).unwrap();
        let want = gpu.d2h(gy);

        // CuCC cluster.
        let mut cl = CuccCluster::with_options(
            ClusterSpec::simd_focused().with_nodes(nodes),
            RuntimeConfig::default(),
        );
        let cx = cl.alloc(n * 4);
        let cy = cl.alloc(n * 4);
        cl.upload(cx, &xs).unwrap();
        cl.upload(cy, &ys).unwrap();
        cl.launch(&ck, launch, &args_for(cx, cy)).unwrap();
        prop_assert_eq!(cl.download::<u8>(cy).unwrap(), want.clone(), "CuCC diverged (nodes={})", nodes);

        // PGAS baseline.
        let mut pg = PgasCluster::new(
            ClusterSpec::simd_focused().with_nodes(nodes),
            PgasConfig::default(),
        );
        let px = pg.alloc(n * 4);
        let py = pg.alloc(n * 4);
        let mut xb = Vec::new();
        for v in &xs { xb.extend_from_slice(&v.to_le_bytes()); }
        let mut yb = Vec::new();
        for v in &ys { yb.extend_from_slice(&v.to_le_bytes()); }
        pg.h2d(px, &xb);
        pg.h2d(py, &yb);
        pg.launch(&ck, launch, &args_for(px, py)).unwrap();
        prop_assert_eq!(pg.d2h(py), want, "PGAS diverged (nodes={})", nodes);
    }

    /// Launching the same kernel repeatedly (iterative apps) keeps all node
    /// memories consistent and matches repeated GPU launches.
    #[test]
    fn iterated_launches_stay_consistent(
        n in 128usize..1200,
        iters in 1usize..4,
        nodes in 2u32..5,
    ) {
        let src = "__global__ void step(float* data, int n) {
            int id = blockIdx.x * blockDim.x + threadIdx.x;
            if (id < n) data[id] = data[id] * 0.5f + 1.0f;
        }";
        let ck = compile_source(src).unwrap();
        let launch = LaunchConfig::cover1(n as u64, 64);
        let init: Vec<f32> = (0..n).map(|i| i as f32).collect();

        let mut gpu = GpuDevice::new(GpuSpec::a100());
        let gb = gpu.alloc(n * 4);
        gpu.pool_mut().write_f32(gb, &init);
        for _ in 0..iters {
            gpu.launch(&ck.kernel, launch, &[Arg::Buffer(gb), Arg::int(n as i64)]).unwrap();
        }
        let want = gpu.d2h(gb);

        let mut cl = CuccCluster::with_options(
            ClusterSpec::thread_focused().with_nodes(nodes),
            RuntimeConfig::default(),
        );
        let cb = cl.alloc(n * 4);
        cl.upload(cb, &init).unwrap();
        for _ in 0..iters {
            cl.launch(&ck, launch, &[Arg::Buffer(cb), Arg::int(n as i64)]).unwrap();
            prop_assert!(cl.sim().fully_consistent());
        }
        prop_assert_eq!(cl.download::<u8>(cb).unwrap(), want);
    }
}
