//! The schedule cache's two load-bearing properties (ISSUE 6, re-keyed
//! by ISSUE 8's elastic membership state):
//!
//! 1. a warm (cached) plan is `PartialEq`-identical to the cold plan it
//!    memoized — caching never changes what executes;
//! 2. a cached schedule is **never** reused across a cluster-shape change:
//!    entries are keyed on the interned membership-shape id, so a node
//!    death makes the next lookup replan against the surviving
//!    communicator — while a later join back to the original shape
//!    warm-hits the entry planned for it.

use cucc::cluster::ClusterSpec;
use cucc::core::{compile_source, CompiledKernel, CuccCluster, FaultPlan, RuntimeConfig};
use cucc::exec::Arg;
use cucc::ir::LaunchConfig;
use proptest::prelude::*;

const SAXPY: &str = "__global__ void f(float* x, float* y, float a, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) y[id] = a * x[id] + y[id];
}";

fn setup(
    nodes: u32,
    n: usize,
    faults: FaultPlan,
) -> (CuccCluster, CompiledKernel, Vec<Arg>, LaunchConfig) {
    let ck = compile_source(SAXPY).unwrap();
    let mut cl = CuccCluster::with_options(
        ClusterSpec::simd_focused().with_nodes(nodes),
        RuntimeConfig::builder().faults(faults).build(),
    );
    let x = cl.alloc(n * 4);
    let y = cl.alloc(n * 4);
    let xs: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
    cl.upload::<f32>(x, &xs).unwrap();
    cl.upload::<f32>(y, &xs).unwrap();
    let args = vec![
        Arg::Buffer(x),
        Arg::Buffer(y),
        Arg::float(2.0),
        Arg::int(n as i64),
    ];
    (cl, ck, args, LaunchConfig::cover1(n as u64, 128))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cold and warm plans are indistinguishable, and the warm one really
    /// came from the cache.
    #[test]
    fn warm_plans_equal_cold_plans(
        n in 256usize..4000,
        nodes in 1u32..6,
    ) {
        let (mut cl, ck, args, launch) = setup(nodes, n, FaultPlan::none());
        let cold = cl.plan_cached(&ck, launch, &args).unwrap();
        let warm = cl.plan_cached(&ck, launch, &args).unwrap();
        prop_assert_eq!(cl.schedule_cache().hits(), 1);
        prop_assert_eq!(cl.schedule_cache().misses(), 1);
        prop_assert_eq!(&warm, &cold, "cached schedule differs from fresh plan");
        // The cache never changes what a plain plan would produce.
        let fresh = cl.plan(&ck, launch, &args).unwrap();
        prop_assert_eq!(&fresh, &cold);
    }

    /// A node death between two lookups changes the membership shape: the
    /// second lookup must miss and replan for the smaller communicator —
    /// but the entry planned for the original shape stays cached, and a
    /// join back to that exact shape warm-hits it.
    #[test]
    fn cached_schedules_never_survive_shape_changes(
        n in 512usize..4000,
        nodes in 3u32..6,
        victim in 0u32..8,
    ) {
        let victim = victim % nodes;
        // The kill fires during the first launch's collective. The join is
        // ripe immediately, but a node that died *this* launch only
        // rejoins at the next launch boundary.
        let (mut cl, ck, args, launch) = setup(
            nodes,
            n,
            FaultPlan::none().kill(victim, 0.0).join(victim, 0.0),
        );
        let epoch0 = cl.epoch();
        let before = cl.plan_cached(&ck, launch, &args).unwrap();
        prop_assert_eq!(cl.schedule_cache().len(), 1);

        // The launch triggers the scripted kill; recovery marks the victim
        // dead, which bumps the epoch and changes the shape id.
        let report = cl.launch(&ck, launch, &args).unwrap();
        prop_assert!(report.faults.failures > 0); // kill at t=0 always fires
        prop_assert!(!cl.is_alive(victim as usize));
        prop_assert_eq!(cl.epoch(), epoch0 + 1, "death must advance the epoch");

        // Replan: a fresh miss, keyed against the survivors' shape. The
        // original shape's entry is retained, not evicted.
        let after = cl.plan_cached(&ck, launch, &args).unwrap();
        prop_assert_eq!(cl.schedule_cache().misses(), 2, "post-death lookup must miss");
        prop_assert_eq!(cl.schedule_cache().hits(), 0);
        prop_assert_eq!(cl.schedule_cache().len(), 2, "shape-keyed entries coexist");
        prop_assert_eq!(cl.schedule_cache().evictions(), 0, "death must not evict");
        // The surviving communicator is smaller, so the three-phase
        // partition cannot be the one planned for the full cluster.
        prop_assert!(after != before, "stale schedule reused across shape change");

        // The next launch boundary admits the victim back: the cluster
        // returns to its original shape, and the lookup planned for that
        // shape is warm again.
        cl.launch(&ck, launch, &args).unwrap();
        let hits0 = cl.schedule_cache().hits();
        let back = cl.plan_cached(&ck, launch, &args).unwrap();
        prop_assert!(cl.is_alive(victim as usize), "join must revive the victim");
        prop_assert_eq!(cl.epoch(), epoch0 + 2, "join must advance the epoch");
        prop_assert_eq!(
            cl.schedule_cache().hits(),
            hits0 + 1,
            "return to the original shape must warm-hit"
        );
        prop_assert_eq!(&back, &before, "warm hit must return the original plan");
    }
}
