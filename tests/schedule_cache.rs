//! The schedule cache's two load-bearing properties (ISSUE 6):
//!
//! 1. a warm (cached) plan is `PartialEq`-identical to the cold plan it
//!    memoized — caching never changes what executes;
//! 2. a cached schedule is **never** reused across a cluster-shape change:
//!    a node death evicts the whole cache and the next lookup replans
//!    against the surviving communicator.

use cucc::cluster::ClusterSpec;
use cucc::core::{compile_source, CompiledKernel, CuccCluster, FaultPlan, RuntimeConfig};
use cucc::exec::Arg;
use cucc::ir::LaunchConfig;
use proptest::prelude::*;

const SAXPY: &str = "__global__ void f(float* x, float* y, float a, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) y[id] = a * x[id] + y[id];
}";

fn setup(
    nodes: u32,
    n: usize,
    faults: FaultPlan,
) -> (CuccCluster, CompiledKernel, Vec<Arg>, LaunchConfig) {
    let ck = compile_source(SAXPY).unwrap();
    let mut cl = CuccCluster::new(
        ClusterSpec::simd_focused().with_nodes(nodes),
        RuntimeConfig::builder().faults(faults).build(),
    );
    let x = cl.alloc(n * 4);
    let y = cl.alloc(n * 4);
    let xs: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
    cl.upload::<f32>(x, &xs).unwrap();
    cl.upload::<f32>(y, &xs).unwrap();
    let args = vec![
        Arg::Buffer(x),
        Arg::Buffer(y),
        Arg::float(2.0),
        Arg::int(n as i64),
    ];
    (cl, ck, args, LaunchConfig::cover1(n as u64, 128))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cold and warm plans are indistinguishable, and the warm one really
    /// came from the cache.
    #[test]
    fn warm_plans_equal_cold_plans(
        n in 256usize..4000,
        nodes in 1u32..6,
    ) {
        let (mut cl, ck, args, launch) = setup(nodes, n, FaultPlan::none());
        let cold = cl.plan_cached(&ck, launch, &args).unwrap();
        let warm = cl.plan_cached(&ck, launch, &args).unwrap();
        prop_assert_eq!(cl.schedule_cache().hits(), 1);
        prop_assert_eq!(cl.schedule_cache().misses(), 1);
        prop_assert_eq!(&warm, &cold, "cached schedule differs from fresh plan");
        // The cache never changes what a plain plan would produce.
        let fresh = cl.plan(&ck, launch, &args).unwrap();
        prop_assert_eq!(&fresh, &cold);
    }

    /// A node death between two lookups must evict the cache: the second
    /// lookup misses and replans for the smaller communicator.
    #[test]
    fn cached_schedules_never_survive_shape_changes(
        n in 512usize..4000,
        nodes in 3u32..6,
        victim in 0u32..8,
    ) {
        let victim = victim % nodes;
        let (mut cl, ck, args, launch) =
            setup(nodes, n, FaultPlan::none().kill(victim, 0.0));
        let before = cl.plan_cached(&ck, launch, &args).unwrap();
        prop_assert_eq!(cl.schedule_cache().len(), 1);

        // The launch triggers the scripted kill; recovery marks the victim
        // dead and must invalidate every cached schedule.
        let report = cl.launch(&ck, launch, &args).unwrap();
        prop_assert!(report.faults.failures > 0); // kill at t=0 always fires
        prop_assert!(!cl.is_alive(victim as usize));
        prop_assert_eq!(cl.schedule_cache().len(), 0, "death must evict the cache");
        prop_assert!(cl.schedule_cache().evictions() >= 1);
        prop_assert!(
            cl.schedule_cache().last_invalidation().is_some(),
            "invalidation reason must be recorded"
        );

        // Replan: a fresh miss, keyed against the survivors.
        let after = cl.plan_cached(&ck, launch, &args).unwrap();
        prop_assert_eq!(cl.schedule_cache().misses(), 2, "post-death lookup must miss");
        prop_assert_eq!(cl.schedule_cache().hits(), 0);
        // The surviving communicator is smaller, so the three-phase
        // partition cannot be the one planned for the full cluster.
        prop_assert!(after != before, "stale schedule reused across shape change");
    }
}
