//! Property tests of the elastic cluster state (ISSUE 8): checkpoint →
//! restore → continue is bit-identical to the uninterrupted run, kill +
//! join sequences recover memory bit-identical to the fault-free run, and
//! a checkpoint restores into a *different* node count with the same
//! bytes a fresh run at that shape produces.

use cucc::cluster::ClusterSpec;
use cucc::core::{
    compile_source, Checkpoint, CompiledKernel, CuccCluster, FaultPlan, GraphCapture, RuntimeConfig,
};
use cucc::exec::Arg;
use cucc::ir::LaunchConfig;
use proptest::prelude::*;

const SAXPY: &str = "__global__ void f(float* x, float* y, float a, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) y[id] = a * x[id] + y[id];
}";

fn seeded(seed: u64, n: usize) -> (Vec<f32>, Vec<f32>) {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let xs = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
    let ys = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
    (xs, ys)
}

fn cluster(nodes: u32, faults: FaultPlan) -> CuccCluster {
    CuccCluster::with_options(
        ClusterSpec::simd_focused().with_nodes(nodes),
        RuntimeConfig::builder().faults(faults).build(),
    )
}

fn saxpy_args(x: cucc::exec::BufferId, y: cucc::exec::BufferId, n: usize) -> Vec<Arg> {
    vec![
        Arg::Buffer(x),
        Arg::Buffer(y),
        Arg::float(1.5),
        Arg::int(n as i64),
    ]
}

/// Upload `xs`/`ys` into a fresh cluster and return it with the handles.
fn loaded(
    nodes: u32,
    faults: FaultPlan,
    xs: &[f32],
    ys: &[f32],
) -> (CuccCluster, cucc::exec::BufferId, cucc::exec::BufferId) {
    let mut cl = cluster(nodes, faults);
    let x = cl.alloc(xs.len() * 4);
    let y = cl.alloc(ys.len() * 4);
    cl.upload::<f32>(x, xs).unwrap();
    cl.upload::<f32>(y, ys).unwrap();
    (cl, x, y)
}

fn launch_twice_reference(
    ck: &CompiledKernel,
    nodes: u32,
    launch: LaunchConfig,
    xs: &[f32],
    ys: &[f32],
    n: usize,
) -> (Vec<u8>, f64) {
    let (mut cl, x, y) = loaded(nodes, FaultPlan::none(), xs, ys);
    let args = saxpy_args(x, y, n);
    cl.launch(ck, launch, &args).unwrap();
    // Mirror the checkpointed run's quiesce barrier so the clocks of the
    // two histories stay comparable bit-for-bit.
    cl.synchronize().unwrap();
    cl.launch(ck, launch, &args).unwrap();
    (cl.download::<u8>(y).unwrap(), cl.clock())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Checkpoint → serialize → decode → restore → continue reproduces the
    /// uninterrupted run bit-for-bit: same memory, same simulated clock.
    #[test]
    fn checkpoint_restore_continue_is_bit_identical(
        n in 256usize..4000,
        nodes in 1u32..6,
        block in prop::sample::select(vec![64u32, 128, 256]),
        seed in any::<u64>(),
    ) {
        let ck = compile_source(SAXPY).unwrap();
        let (xs, ys) = seeded(seed, n);
        let launch = LaunchConfig::cover1(n as u64, block);
        let (reference, ref_clock) =
            launch_twice_reference(&ck, nodes, launch, &xs, &ys, n);

        let (mut cl, x, y) = loaded(nodes, FaultPlan::none(), &xs, &ys);
        let args = saxpy_args(x, y, n);
        cl.launch(&ck, launch, &args).unwrap();
        // Round-trip through the on-disk byte format, not just the struct.
        let image = cl.checkpoint().unwrap().encode();
        drop(cl); // the original process is gone
        let ckpt = Checkpoint::decode(&image).unwrap();
        let mut restored = CuccCluster::restore(
            ClusterSpec::simd_focused().with_nodes(nodes),
            RuntimeConfig::default(),
            &ckpt,
        ).unwrap();
        restored.launch(&ck, launch, &args).unwrap();
        prop_assert_eq!(restored.download::<u8>(y).unwrap(), reference,
            "restored continuation diverged from the uninterrupted run");
        prop_assert_eq!(restored.clock().to_bits(), ref_clock.to_bits(),
            "restored clock diverged from the uninterrupted run");
    }

    /// A kill followed by a rejoin of the same node recovers memory
    /// bit-identical to the fault-free run, and the cluster returns to its
    /// original shape (every node alive, epoch advanced twice).
    #[test]
    fn kill_then_join_recovers_bit_identical_memory(
        n in 256usize..4000,
        nodes in 2u32..6,
        block in prop::sample::select(vec![64u32, 128, 256]),
        victim in 0u32..8,
        kill_t in prop::sample::select(vec![0.0f64, 1e-7, 1e-5]),
        seed in any::<u64>(),
    ) {
        let victim = victim % nodes;
        let ck = compile_source(SAXPY).unwrap();
        let (xs, ys) = seeded(seed, n);
        let launch = LaunchConfig::cover1(n as u64, block);

        let (mut clean, cx, cy) = loaded(nodes, FaultPlan::none(), &xs, &ys);
        let clean_args = saxpy_args(cx, cy, n);
        clean.launch(&ck, launch, &clean_args).unwrap();
        clean.launch(&ck, launch, &clean_args).unwrap();
        let reference = clean.download::<u8>(cy).unwrap();

        let plan = FaultPlan::none().kill(victim, kill_t).join(victim, kill_t);
        let (mut cl, x, y) = loaded(nodes, plan, &xs, &ys);
        let args = saxpy_args(x, y, n);
        cl.launch(&ck, launch, &args).unwrap();
        // The second launch boundary readmits the victim (a node that died
        // mid-launch rejoins at the next boundary).
        cl.launch(&ck, launch, &args).unwrap();
        prop_assert!(cl.is_alive(victim as usize), "join must revive the victim");
        prop_assert_eq!(cl.active_nodes(), nodes as usize);
        prop_assert_eq!(cl.download::<u8>(y).unwrap(), reference,
            "kill+join run diverged from the fault-free run");
    }

    /// A checkpoint restores into a *different* node count and the
    /// continued run matches a fresh run at that shape bit-for-bit.
    #[test]
    fn restore_into_different_shape_matches_fresh_run(
        n in 256usize..4000,
        from in 1u32..6,
        to in 1u32..6,
        block in prop::sample::select(vec![64u32, 128, 256]),
        seed in any::<u64>(),
    ) {
        let ck = compile_source(SAXPY).unwrap();
        let (xs, ys) = seeded(seed, n);
        let launch = LaunchConfig::cover1(n as u64, block);

        // Fresh reference at the target shape: the paper's bit-identity
        // guarantee makes results shape-independent, so launch 1 runs at
        // `to` nodes here and at `from` nodes below.
        let (mut fresh, fx, fy) = loaded(to, FaultPlan::none(), &xs, &ys);
        let fresh_args = saxpy_args(fx, fy, n);
        fresh.launch(&ck, launch, &fresh_args).unwrap();
        fresh.launch(&ck, launch, &fresh_args).unwrap();
        let reference = fresh.download::<u8>(fy).unwrap();

        let (mut cl, x, y) = loaded(from, FaultPlan::none(), &xs, &ys);
        let args = saxpy_args(x, y, n);
        cl.launch(&ck, launch, &args).unwrap();
        let ckpt = cl.checkpoint().unwrap();
        let mut migrated = CuccCluster::restore(
            ClusterSpec::simd_focused().with_nodes(to),
            RuntimeConfig::default(),
            &ckpt,
        ).unwrap();
        prop_assert_eq!(migrated.num_nodes(), to as usize);
        prop_assert_eq!(migrated.active_nodes(), to as usize,
            "a cross-shape restore starts every node alive");
        migrated.launch(&ck, launch, &args).unwrap();
        prop_assert_eq!(migrated.download::<u8>(y).unwrap(), reference,
            "migrated run diverged from the fresh run at the target shape");
    }
}

/// The ISSUE's acceptance scenario, end to end: a workload is killed at
/// node 3, a fresh node joins (cluster growth 4 → 5), the job is
/// checkpointed to disk, restored into a new process, and run to
/// completion — memory must be bit-identical to the uninterrupted healthy
/// run.
#[test]
fn kill_join_checkpoint_restore_completes_bit_identical() {
    let n = 13 * 128;
    let ck = compile_source(SAXPY).unwrap();
    let (xs, ys) = seeded(42, n);
    let launch = LaunchConfig::cover1(n as u64, 128);

    // Uninterrupted healthy reference at the original shape.
    let (mut clean, cx, cy) = loaded(4, FaultPlan::none(), &xs, &ys);
    let clean_args = saxpy_args(cx, cy, n);
    clean.launch(&ck, launch, &clean_args).unwrap();
    clean.launch(&ck, launch, &clean_args).unwrap();
    let reference = clean.download::<u8>(cy).unwrap();

    // Faulty run: node 3 dies during the first launch; a fresh node (id 4
    // — one past the current size, so the cluster grows) joins at the next
    // boundary, reached by the checkpoint's quiesce barrier.
    let plan = FaultPlan::none()
        .with_spec("kill:node=3@t=0")
        .unwrap()
        .with_spec("join:node=4@t=0")
        .unwrap();
    let (mut cl, x, y) = loaded(4, plan.clone(), &xs, &ys);
    let args = saxpy_args(x, y, n);
    let report = cl.launch(&ck, launch, &args).unwrap();
    assert_eq!(report.faults.failures, 1, "the kill must fire");
    assert!(!cl.is_alive(3));

    let path = std::env::temp_dir().join(format!("cucc-elastic-{}.ckpt", std::process::id()));
    let size = cl.checkpoint_to(&path).unwrap();
    assert!(size > 0);
    assert_eq!(cl.num_nodes(), 5, "the growth join lands at the barrier");
    assert!(cl.is_alive(4));
    let epoch = cl.epoch();
    drop(cl); // the original process is gone

    // New process: restore from disk into the grown 5-node shape (same
    // count as the image, so liveness and epoch survive).
    let mut restored = CuccCluster::restore_from(
        ClusterSpec::simd_focused().with_nodes(5),
        RuntimeConfig::builder().faults(plan).build(),
        &path,
    )
    .unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(restored.epoch(), epoch);
    assert!(!restored.is_alive(3), "liveness must survive the restore");
    assert_eq!(restored.active_nodes(), 4);
    restored.launch(&ck, launch, &args).unwrap();
    assert_eq!(
        restored.download::<u8>(y).unwrap(),
        reference,
        "the killed+joined+restored run diverged from the healthy run"
    );
}

/// Satellite 2: a checkpoint taken while a replayed graph left gathers
/// pending must flush them first — the image holds globally consistent
/// bytes, never per-node slices.
#[test]
fn checkpoint_flushes_pending_gathers() {
    const ELEMS: usize = 1024;
    let prod = compile_source(
        "__global__ void prod(float* x) {
            int id = blockIdx.x * blockDim.x + threadIdx.x;
            x[id] = x[id] * 3.0f + 1.0f;
        }",
    )
    .unwrap();
    let launch = LaunchConfig::cover1(ELEMS as u64, 64);
    let (xs, _) = seeded(7, ELEMS);

    let mut cl = cluster(4, FaultPlan::none());
    let x = cl.alloc(ELEMS * 4);
    let mut cap = GraphCapture::new();
    cap.upload(x, <f32 as cucc::core::HostScalar>::encode(&xs).into_owned());
    cap.launch(&prod, launch, &[Arg::Buffer(x)]);
    cap.launch(&prod, launch, &[Arg::Buffer(x)]);
    let graph = cap.finish();
    cl.graph_replay(&graph).unwrap();
    assert_eq!(
        cl.pending_gathers(),
        vec![x],
        "the replay must leave x pending for this test to bite"
    );

    let ckpt = cl.checkpoint().unwrap();
    assert!(
        cl.pending_gathers().is_empty(),
        "checkpoint must flush pending gathers"
    );

    // The image's bytes must match the uncaptured run, proving the flush
    // gathered every node's slice before serializing.
    let mut restored = CuccCluster::restore(
        ClusterSpec::simd_focused().with_nodes(4),
        RuntimeConfig::default(),
        &ckpt,
    )
    .unwrap();
    let mut b = cluster(4, FaultPlan::none());
    let xb = b.alloc(ELEMS * 4);
    b.upload::<f32>(xb, &xs).unwrap();
    b.launch(&prod, launch, &[Arg::Buffer(xb)]).unwrap();
    b.launch(&prod, launch, &[Arg::Buffer(xb)]).unwrap();
    assert_eq!(
        restored.download::<u8>(x).unwrap(),
        b.download::<u8>(xb).unwrap(),
        "checkpointed pending buffer diverged from the uncaptured run"
    );
}

/// Restore rejects images whose execution fidelity or fault session does
/// not match the target configuration.
#[test]
fn restore_rejects_mismatched_configurations() {
    let mut cl = cluster(3, FaultPlan::none().kill(1, 1e9));
    let x = cl.alloc(64);
    cl.upload::<f32>(x, &[1.0; 16]).unwrap();
    let ckpt = cl.checkpoint().unwrap();
    assert!(ckpt.fault_cursor.is_some());

    // The image carries a fault cursor; restoring without a plan fails.
    let err = CuccCluster::restore(
        ClusterSpec::simd_focused().with_nodes(3),
        RuntimeConfig::default(),
        &ckpt,
    )
    .unwrap_err();
    assert!(err.to_string().contains("fault"), "unexpected error: {err}");

    // Fidelity must match the image.
    let err = CuccCluster::restore(
        ClusterSpec::simd_focused().with_nodes(3),
        RuntimeConfig::builder()
            .fidelity(cucc::core::ExecutionFidelity::Modeled)
            .build(),
        &ckpt,
    )
    .unwrap_err();
    assert!(
        err.to_string().contains("fidelity"),
        "unexpected error: {err}"
    );
}
