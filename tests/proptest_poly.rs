//! Property tests for the symbolic polynomial ring (`cucc::analysis::Poly`):
//! ring axioms and evaluation homomorphism. The Allgather-distributable
//! analysis depends on canonical-form equality being semantic equality.

use cucc::analysis::{Poly, Sym};
use cucc::ir::{Axis, ParamId};
use proptest::prelude::*;

/// A random polynomial built from symbols, constants and ring operations.
#[derive(Debug, Clone)]
enum PolyRecipe {
    Const(i64),
    Sym(u8),
    Add(Box<PolyRecipe>, Box<PolyRecipe>),
    Sub(Box<PolyRecipe>, Box<PolyRecipe>),
    Mul(Box<PolyRecipe>, Box<PolyRecipe>),
    Scale(Box<PolyRecipe>, i64),
}

fn syms() -> [Sym; 4] {
    [
        Sym::Param(ParamId(0)),
        Sym::Param(ParamId(1)),
        Sym::BlockDim(Axis::X),
        Sym::GridDim(Axis::Y),
    ]
}

fn recipe() -> impl Strategy<Value = PolyRecipe> {
    let leaf = prop_oneof![
        (-9i64..10).prop_map(PolyRecipe::Const),
        (0u8..4).prop_map(PolyRecipe::Sym),
    ];
    leaf.prop_recursive(3, 20, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| PolyRecipe::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| PolyRecipe::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| PolyRecipe::Mul(Box::new(a), Box::new(b))),
            (inner, -5i64..6).prop_map(|(a, k)| PolyRecipe::Scale(Box::new(a), k)),
        ]
    })
}

fn build(r: &PolyRecipe) -> Poly {
    match r {
        PolyRecipe::Const(v) => Poly::constant(*v as i128),
        PolyRecipe::Sym(i) => Poly::sym(syms()[*i as usize % 4]),
        PolyRecipe::Add(a, b) => build(a).add(&build(b)),
        PolyRecipe::Sub(a, b) => build(a).sub(&build(b)),
        PolyRecipe::Mul(a, b) => build(a).mul(&build(b)),
        PolyRecipe::Scale(a, k) => build(a).scale(*k as i128),
    }
}

/// Direct (big-integer) evaluation of the recipe, bypassing Poly.
fn eval_recipe(r: &PolyRecipe, env: &[i128; 4]) -> i128 {
    match r {
        PolyRecipe::Const(v) => *v as i128,
        PolyRecipe::Sym(i) => env[*i as usize % 4],
        PolyRecipe::Add(a, b) => eval_recipe(a, env) + eval_recipe(b, env),
        PolyRecipe::Sub(a, b) => eval_recipe(a, env) - eval_recipe(b, env),
        PolyRecipe::Mul(a, b) => eval_recipe(a, env) * eval_recipe(b, env),
        PolyRecipe::Scale(a, k) => eval_recipe(a, env) * *k as i128,
    }
}

fn env_fn(env: [i128; 4]) -> impl Fn(Sym) -> Option<i128> {
    move |s| {
        let idx = syms().iter().position(|x| *x == s)?;
        Some(env[idx])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Canonical-form evaluation equals direct evaluation (homomorphism).
    #[test]
    fn eval_is_homomorphic(r in recipe(), a in -7i128..8, b in -7i128..8, c in 1i128..9, d in 1i128..9) {
        let env = [a, b, c, d];
        let p = build(&r);
        prop_assert_eq!(p.eval(&env_fn(env)), Some(eval_recipe(&r, &env)));
    }

    /// Ring axioms hold in canonical form (structural equality).
    #[test]
    fn ring_axioms(x in recipe(), y in recipe(), z in recipe()) {
        let (p, q, r) = (build(&x), build(&y), build(&z));
        // commutativity
        prop_assert_eq!(p.add(&q), q.add(&p));
        prop_assert_eq!(p.mul(&q), q.mul(&p));
        // associativity
        prop_assert_eq!(p.add(&q).add(&r), p.add(&q.add(&r)));
        prop_assert_eq!(p.mul(&q).mul(&r), p.mul(&q.mul(&r)));
        // distributivity
        prop_assert_eq!(p.mul(&q.add(&r)), p.mul(&q).add(&p.mul(&r)));
        // additive inverse / identity
        prop_assert!(p.sub(&p).is_zero());
        prop_assert_eq!(p.add(&Poly::zero()), p.clone());
        prop_assert_eq!(p.mul(&Poly::constant(1)), p.clone());
        prop_assert!(p.mul(&Poly::zero()).is_zero());
    }

    /// Structural equality is semantic: two recipes whose canonical forms
    /// match evaluate identically everywhere (spot-checked on a grid).
    #[test]
    fn canonical_equality_implies_semantic(x in recipe(), y in recipe()) {
        let (p, q) = (build(&x), build(&y));
        if p == q {
            for a in [-3i128, 0, 2] {
                for b in [-1i128, 5] {
                    let env = [a, b, a + b, 3];
                    prop_assert_eq!(p.eval(&env_fn(env)), q.eval(&env_fn(env)));
                }
            }
        }
    }
}
