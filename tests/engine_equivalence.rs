//! Differential property tests: the bytecode engine (`cucc::exec::bytecode`
//! plus `engine`) and the vectorized lane-array engine (`cucc::exec::lane`)
//! must match the tree-walk oracle **bit-for-bit** — identical `BlockStats`
//! counters, identical final memory, identical runtime errors — on randomly
//! generated kernels and launch shapes.
//!
//! Three kernel families target the engine's distinct code paths:
//!
//! 1. **General serial kernels** — nested `if`/`for`, assignments, global +
//!    local-array traffic, unmasked `/`/`%` (so `DivByZero` errors must
//!    agree too), global atomics, early `return`, odd launch shapes (tail
//!    blocks), and partial block ranges (the cluster's per-node slices).
//! 2. **Barrier kernels** — shared-memory staging with `__syncthreads()` in
//!    uniform control flow, exercising the precomputed phase tree
//!    (`Seg`/`Barrier`/`UniformFor`/`UniformIf`).
//! 3. **Elementwise kernels** — each block writes a disjoint slice, so the
//!    intra-node parallel path (`run_range_parallel`) must also reproduce
//!    oracle memory and stats exactly, for any worker count.

use cucc::exec::{
    execute_block_range, execute_launch, execute_launch_bytecode, execute_launch_simd, run_range,
    run_range_parallel, run_range_parallel_simd, run_range_simd, Arg, MemPool, Program,
};
use cucc::ir::{
    validate, AtomicOp, Axis, Expr, Intrinsic, Kernel, KernelBuilder, LaunchConfig, MemRef, Scalar,
    VarId,
};
use proptest::prelude::*;

const OUT_LEN: i64 = 128;
const F_LEN: i64 = 32;
const SH_LEN: i64 = 16;

/// Deterministically seeded argument pool: one i64 output buffer and one
/// f32 buffer, plus the scalar params every generated kernel declares.
fn seed_pool() -> (MemPool, Vec<Arg>) {
    let mut pool = MemPool::new();
    let out = pool.alloc_elems(Scalar::I64, OUT_LEN as usize);
    let fbuf = pool.alloc_elems(Scalar::F32, F_LEN as usize);
    let out_bytes: Vec<u8> = (0..OUT_LEN)
        .flat_map(|i| (i * 7 - 40).to_le_bytes())
        .collect();
    let f_bytes: Vec<u8> = (0..F_LEN)
        .flat_map(|i| (i as f32 * 0.5 - 3.0).to_le_bytes())
        .collect();
    pool.write_all(out, &out_bytes);
    pool.write_all(fbuf, &f_bytes);
    let args = vec![
        Arg::Buffer(out),
        Arg::Buffer(fbuf),
        Arg::int(5),
        Arg::float(1.5),
    ];
    (pool, args)
}

/// Run both executors from identical pools and assert stats, memory and
/// errors all agree.
fn assert_equiv(k: &Kernel, launch: LaunchConfig) {
    validate(k).expect("generated kernels are valid");
    let (mut pool_a, args) = seed_pool();
    let mut pool_b = pool_a.clone();
    let ra = execute_launch(k, launch, &args, &mut pool_a);
    let rb = execute_launch_bytecode(k, launch, &args, &mut pool_b);
    match (&ra, &rb) {
        (Ok(sa), Ok(sb)) => {
            assert_eq!(sa, sb, "BlockStats diverged");
            for id in 0..pool_a.len() {
                let id = cucc::exec::BufferId(id as u32);
                assert_eq!(pool_a.bytes(id), pool_b.bytes(id), "memory diverged");
            }
        }
        (Err(ea), Err(eb)) => assert_eq!(ea, eb, "errors diverged"),
        _ => panic!("result kind diverged: oracle={ra:?} bytecode={rb:?}"),
    }
    // Vectorized lane-array tier: chunk-major execution with superinstruction
    // fusion must still be observationally identical to the oracle.
    let (mut pool_c, cargs) = seed_pool();
    let rc = execute_launch_simd(k, launch, &cargs, &mut pool_c);
    match (&ra, &rc) {
        (Ok(sa), Ok(sc)) => {
            assert_eq!(sa, sc, "simd BlockStats diverged");
            for id in 0..pool_a.len() {
                let id = cucc::exec::BufferId(id as u32);
                assert_eq!(pool_a.bytes(id), pool_c.bytes(id), "simd memory diverged");
            }
        }
        (Err(ea), Err(ec)) => assert_eq!(ea, ec, "simd errors diverged"),
        _ => panic!("result kind diverged: oracle={ra:?} simd={rc:?}"),
    }
    // Partial block ranges (how cluster nodes drive the engine): the serial
    // engine over a sub-range must match the oracle over the same sub-range.
    let n = launch.num_blocks();
    if ra.is_ok() && n >= 4 {
        let range = (n / 4)..(n - n / 4);
        let (mut pa, args) = seed_pool();
        let mut pb = pa.clone();
        let mut pc = pa.clone();
        let sa = execute_block_range(k, launch, range.clone(), &args, &mut pa).unwrap();
        let prog = Program::compile(k, launch, &args).unwrap();
        let sb = run_range(&prog, &mut pb, range.clone()).unwrap();
        assert_eq!(sa, sb, "sub-range BlockStats diverged");
        let sc = run_range_simd(&prog, &mut pc, range).unwrap();
        assert_eq!(sa, sc, "sub-range simd BlockStats diverged");
        for id in 0..pa.len() {
            let id = cucc::exec::BufferId(id as u32);
            assert_eq!(pa.bytes(id), pb.bytes(id), "sub-range memory diverged");
            assert_eq!(pa.bytes(id), pc.bytes(id), "sub-range simd memory diverged");
        }
    }
}

// ---------------------------------------------------------------------------
// Family 1: general serial kernels (errors, atomics, early return, tails).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum ER {
    Const(i64),
    FConst(i32),
    Tid,
    Bid,
    P,
    Q,
    Var(u8),
    LoadOut(Box<ER>),
    LoadF(Box<ER>),
    Add(Box<ER>, Box<ER>),
    Sub(Box<ER>, Box<ER>),
    Mul(Box<ER>, Box<ER>),
    Div(Box<ER>, Box<ER>),
    Rem(Box<ER>, Box<ER>),
    Lt(Box<ER>, Box<ER>),
    And(Box<ER>, Box<ER>),
    Select(Box<ER>, Box<ER>, Box<ER>),
    CastI32(Box<ER>),
    Min(Box<ER>, Box<ER>),
}

fn er() -> impl Strategy<Value = ER> {
    let leaf = prop_oneof![
        (-9i64..10).prop_map(ER::Const),
        (-4i32..5).prop_map(ER::FConst),
        Just(ER::Tid),
        Just(ER::Bid),
        Just(ER::P),
        Just(ER::Q),
        (0u8..4).prop_map(ER::Var),
    ];
    leaf.prop_recursive(3, 20, 2, |i| {
        prop_oneof![
            i.clone().prop_map(|a| ER::LoadOut(Box::new(a))),
            i.clone().prop_map(|a| ER::LoadF(Box::new(a))),
            (i.clone(), i.clone()).prop_map(|(a, b)| ER::Add(Box::new(a), Box::new(b))),
            (i.clone(), i.clone()).prop_map(|(a, b)| ER::Sub(Box::new(a), Box::new(b))),
            (i.clone(), i.clone()).prop_map(|(a, b)| ER::Mul(Box::new(a), Box::new(b))),
            (i.clone(), i.clone()).prop_map(|(a, b)| ER::Div(Box::new(a), Box::new(b))),
            (i.clone(), i.clone()).prop_map(|(a, b)| ER::Rem(Box::new(a), Box::new(b))),
            (i.clone(), i.clone()).prop_map(|(a, b)| ER::Lt(Box::new(a), Box::new(b))),
            (i.clone(), i.clone()).prop_map(|(a, b)| ER::And(Box::new(a), Box::new(b))),
            (i.clone(), i.clone(), i.clone()).prop_map(|(c, a, b)| ER::Select(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
            i.clone().prop_map(|a| ER::CastI32(Box::new(a))),
            (i.clone(), i).prop_map(|(a, b)| ER::Min(Box::new(a), Box::new(b))),
        ]
    })
}

#[derive(Debug, Clone)]
enum SR {
    Let(ER),
    Assign(u8, ER),
    StoreOut(ER, ER),
    StoreF(ER, ER),
    StoreLocal(ER, ER),
    LetLocal(ER),
    Atomic(u8, ER, ER),
    If(ER, Vec<SR>),
    IfElse(ER, Vec<SR>, Vec<SR>),
    For(u8, Vec<SR>),
    ForStep(i8, u8, u8, Vec<SR>),
    RetIf(ER),
}

fn sr() -> impl Strategy<Value = SR> {
    let leaf = prop_oneof![
        er().prop_map(SR::Let),
        (0u8..4, er()).prop_map(|(v, e)| SR::Assign(v, e)),
        (er(), er()).prop_map(|(i, v)| SR::StoreOut(i, v)),
        (er(), er()).prop_map(|(i, v)| SR::StoreF(i, v)),
        (er(), er()).prop_map(|(i, v)| SR::StoreLocal(i, v)),
        er().prop_map(SR::LetLocal),
        (0u8..3, er(), er()).prop_map(|(op, i, v)| SR::Atomic(op, i, v)),
        er().prop_map(SR::RetIf),
    ];
    leaf.prop_recursive(2, 14, 3, |i| {
        prop_oneof![
            (er(), prop::collection::vec(i.clone(), 1..3)).prop_map(|(c, b)| SR::If(c, b)),
            (
                er(),
                prop::collection::vec(i.clone(), 1..3),
                prop::collection::vec(i.clone(), 1..3)
            )
                .prop_map(|(c, t, e)| SR::IfElse(c, t, e)),
            (1u8..4, prop::collection::vec(i.clone(), 1..3)).prop_map(|(n, b)| SR::For(n, b)),
            (
                (-2i8..3),
                (1u8..7),
                (1u8..3),
                prop::collection::vec(i, 1..3)
            )
                .prop_map(|(s, e, st, b)| SR::ForStep(s, e, st, b)),
        ]
    })
}

/// Mask an arbitrary expression into `[0, len)`. `%` is int-only in the
/// front-end, so possibly-float inputs are squashed through a cast first.
fn mask(raw: Expr, len: i64) -> Expr {
    Expr::cast(Scalar::I64, raw)
        .rem(Expr::int(len))
        .add(Expr::int(len))
        .rem(Expr::int(len))
}

struct Ctx {
    out: MemRef,
    fbuf: MemRef,
    lcl: MemRef,
    p: Expr,
    q: Expr,
    vars: Vec<VarId>,
}

fn build_expr(r: &ER, c: &Ctx) -> Expr {
    match r {
        ER::Const(v) => Expr::int(*v),
        ER::FConst(v) => Expr::float(*v as f64 * 0.25),
        ER::Tid => Expr::ThreadIdx(Axis::X),
        ER::Bid => Expr::BlockIdx(Axis::X),
        ER::P => c.p.clone(),
        ER::Q => c.q.clone(),
        ER::Var(i) => Expr::Var(c.vars[*i as usize % c.vars.len()]),
        ER::LoadOut(i) => Expr::load(c.out, mask(build_expr(i, c), OUT_LEN)),
        ER::LoadF(i) => Expr::load(c.fbuf, mask(build_expr(i, c), F_LEN)),
        ER::Add(a, b) => build_expr(a, c).add(build_expr(b, c)),
        ER::Sub(a, b) => build_expr(a, c).sub(build_expr(b, c)),
        ER::Mul(a, b) => build_expr(a, c).mul(build_expr(b, c)),
        ER::Div(a, b) => build_expr(a, c).div(build_expr(b, c)),
        ER::Rem(a, b) => {
            Expr::cast(Scalar::I64, build_expr(a, c)).rem(Expr::cast(Scalar::I64, build_expr(b, c)))
        }
        ER::Lt(a, b) => build_expr(a, c).lt(build_expr(b, c)),
        ER::And(a, b) => build_expr(a, c).land(build_expr(b, c)),
        ER::Select(cd, a, b) => Expr::Select {
            cond: Box::new(build_expr(cd, c)),
            then_value: Box::new(build_expr(a, c)),
            else_value: Box::new(build_expr(b, c)),
        },
        ER::CastI32(a) => Expr::cast(Scalar::I32, build_expr(a, c)),
        ER::Min(a, b) => Expr::Call {
            f: Intrinsic::Min,
            args: vec![
                // min/max are int-only; squash possibly-float operands.
                Expr::cast(Scalar::I64, build_expr(a, c)),
                Expr::cast(Scalar::I64, build_expr(b, c)),
            ],
        },
    }
}

fn emit(b: &mut KernelBuilder, stmts: &[SR], c: &Ctx, fresh: &mut u32) {
    for s in stmts {
        match s {
            SR::Let(e) => {
                let name = format!("t{}", *fresh);
                *fresh += 1;
                b.let_(name, build_expr(e, c));
            }
            SR::Assign(v, e) => {
                let var = c.vars[*v as usize % c.vars.len()];
                b.assign(var, Expr::cast(Scalar::I64, build_expr(e, c)));
            }
            SR::StoreOut(i, v) => b.store(
                c.out,
                mask(build_expr(i, c), OUT_LEN),
                Expr::cast(Scalar::I64, build_expr(v, c)),
            ),
            SR::StoreF(i, v) => b.store(
                c.fbuf,
                mask(build_expr(i, c), F_LEN),
                Expr::cast(Scalar::F32, build_expr(v, c)),
            ),
            SR::StoreLocal(i, v) => b.store(
                c.lcl,
                mask(build_expr(i, c), 8),
                Expr::cast(Scalar::I64, build_expr(v, c)),
            ),
            SR::LetLocal(i) => {
                let name = format!("t{}", *fresh);
                *fresh += 1;
                b.let_(name, Expr::load(c.lcl, mask(build_expr(i, c), 8)));
            }
            SR::Atomic(op, i, v) => {
                let op = [AtomicOp::Add, AtomicOp::Min, AtomicOp::Max][*op as usize % 3];
                b.atomic(
                    op,
                    c.out,
                    mask(build_expr(i, c), OUT_LEN),
                    Expr::cast(Scalar::I64, build_expr(v, c)),
                );
            }
            SR::If(cond, body) => {
                let cond = build_expr(cond, c);
                b.if_then(cond, |b| emit(b, body, c, fresh));
            }
            SR::IfElse(cond, t, e) => {
                let cond = build_expr(cond, c);
                let fresh_cell = std::cell::Cell::new(*fresh);
                b.if_else(
                    cond,
                    |b| {
                        let mut f = fresh_cell.get();
                        emit(b, t, c, &mut f);
                        fresh_cell.set(f);
                    },
                    |b| {
                        let mut f = fresh_cell.get();
                        emit(b, e, c, &mut f);
                        fresh_cell.set(f);
                    },
                );
                *fresh = fresh_cell.get();
            }
            SR::For(n, body) => {
                let name = format!("i{}", *fresh);
                *fresh += 1;
                b.for_range(name, Expr::int(*n as i64), |b, _| emit(b, body, c, fresh));
            }
            SR::ForStep(start, end, step, body) => {
                let name = format!("i{}", *fresh);
                *fresh += 1;
                b.for_(
                    name,
                    Expr::int(*start as i64),
                    Expr::int(*end as i64),
                    Expr::int(*step as i64),
                    |b, _| emit(b, body, c, fresh),
                );
            }
            SR::RetIf(cond) => {
                let cond = build_expr(cond, c);
                b.if_then(cond, |b| b.ret());
            }
        }
    }
}

fn build_general(stmts: &[SR], with_return: bool) -> Kernel {
    let mut b = KernelBuilder::new("rnd_general");
    let out = b.buffer("out", Scalar::I64);
    let fbuf = b.buffer("fbuf", Scalar::F32);
    let p = b.scalar("p", Scalar::I32);
    let q = b.scalar("q", Scalar::F32);
    let lcl = b.local_array("scratch", Scalar::I64, 8);
    let vars: Vec<VarId> = (0..4)
        .map(|i| b.let_(format!("v{i}"), Expr::int(i as i64 - 1)))
        .collect();
    let c = Ctx {
        out,
        fbuf,
        lcl,
        p,
        q,
        vars,
    };
    let mut fresh = 0;
    if with_return {
        // Odd threads of odd blocks bail out early.
        let cond = Expr::ThreadIdx(Axis::X)
            .add(Expr::BlockIdx(Axis::X))
            .rem(Expr::int(2))
            .eq_(Expr::int(1));
        b.if_then(cond, |b| b.ret());
    }
    emit(&mut b, stmts, &c, &mut fresh);
    b.finish()
}

// ---------------------------------------------------------------------------
// Family 2: barrier kernels (phase tree: Seg / Barrier / UniformFor / If).
// ---------------------------------------------------------------------------

/// Statement inside a barrier-free segment; indices masked to shared len.
#[derive(Debug, Clone)]
enum SegR {
    StoreShared(ER, ER),
    LetShared(ER),
    StoreOut(ER, ER),
}

/// Uniform-control-flow phase structure around the segments.
#[derive(Debug, Clone)]
enum PhR {
    Seg(Vec<SegR>),
    Barrier,
    UniformFor(u8, Vec<PhR>),
    UniformIf(bool, Vec<PhR>),
}

fn seg_r() -> impl Strategy<Value = SegR> {
    prop_oneof![
        (er(), er()).prop_map(|(i, v)| SegR::StoreShared(i, v)),
        er().prop_map(SegR::LetShared),
        (er(), er()).prop_map(|(i, v)| SegR::StoreOut(i, v)),
    ]
}

fn ph_r() -> impl Strategy<Value = PhR> {
    let leaf = prop_oneof![
        prop::collection::vec(seg_r(), 1..3).prop_map(PhR::Seg),
        Just(PhR::Barrier),
    ];
    leaf.prop_recursive(2, 10, 3, |i| {
        prop_oneof![
            (1u8..3, prop::collection::vec(i.clone(), 1..3))
                .prop_map(|(n, b)| PhR::UniformFor(n, b)),
            (any::<bool>(), prop::collection::vec(i, 1..3))
                .prop_map(|(on_p, b)| PhR::UniformIf(on_p, b)),
        ]
    })
}

fn emit_seg(b: &mut KernelBuilder, stmts: &[SegR], sh: MemRef, c: &Ctx, fresh: &mut u32) {
    for s in stmts {
        match s {
            SegR::StoreShared(i, v) => b.store(
                sh,
                mask(build_expr(i, c), SH_LEN),
                Expr::cast(Scalar::I64, build_expr(v, c)),
            ),
            SegR::LetShared(i) => {
                let name = format!("s{}", *fresh);
                *fresh += 1;
                b.let_(name, Expr::load(sh, mask(build_expr(i, c), SH_LEN)));
            }
            SegR::StoreOut(i, v) => b.store(
                c.out,
                mask(build_expr(i, c), OUT_LEN),
                Expr::cast(Scalar::I64, build_expr(v, c)),
            ),
        }
    }
}

fn emit_phases(b: &mut KernelBuilder, phs: &[PhR], sh: MemRef, c: &Ctx, fresh: &mut u32) {
    for ph in phs {
        match ph {
            PhR::Seg(stmts) => emit_seg(b, stmts, sh, c, fresh),
            PhR::Barrier => b.sync_threads(),
            PhR::UniformFor(n, body) => {
                let name = format!("u{}", *fresh);
                *fresh += 1;
                // Thread-invariant bounds (consts + param) keep the loop
                // uniform, so a barrier inside it passes validation.
                b.for_(
                    name,
                    Expr::int(0),
                    Expr::int(*n as i64).add(c.p.clone().rem(Expr::int(2))),
                    Expr::int(1),
                    |b, _| emit_phases(b, body, sh, c, fresh),
                );
            }
            PhR::UniformIf(on_p, body) => {
                let cond = if *on_p {
                    c.p.clone().gt(Expr::int(0))
                } else {
                    Expr::BlockIdx(Axis::X).rem(Expr::int(2)).eq_(Expr::int(0))
                };
                b.if_then(cond, |b| emit_phases(b, body, sh, c, fresh));
            }
        }
    }
}

fn build_barrier(phs: &[PhR]) -> Kernel {
    let mut b = KernelBuilder::new("rnd_barrier");
    let out = b.buffer("out", Scalar::I64);
    let fbuf = b.buffer("fbuf", Scalar::F32);
    let p = b.scalar("p", Scalar::I32);
    let q = b.scalar("q", Scalar::F32);
    let lcl = b.local_array("scratch", Scalar::I64, 8);
    let sh = b.shared("tile", Scalar::I64, SH_LEN as usize);
    let vars: Vec<VarId> = (0..4)
        .map(|i| b.let_(format!("v{i}"), Expr::int(i as i64 + 1)))
        .collect();
    let c = Ctx {
        out,
        fbuf,
        lcl,
        p,
        q,
        vars,
    };
    let mut fresh = 0;
    // Stage: every thread seeds the tile, then a guaranteed barrier, then
    // the random phase structure, then a final barrier + drain to out.
    b.store(
        sh,
        Expr::ThreadIdx(Axis::X).rem(Expr::int(SH_LEN)),
        Expr::ThreadIdx(Axis::X)
            .mul(Expr::int(3))
            .add(Expr::BlockIdx(Axis::X)),
    );
    b.sync_threads();
    emit_phases(&mut b, phs, sh, &c, &mut fresh);
    b.sync_threads();
    b.store(
        c.out,
        mask(
            Expr::ThreadIdx(Axis::X).add(Expr::BlockIdx(Axis::X).mul(Expr::int(7))),
            OUT_LEN,
        ),
        Expr::load(sh, Expr::ThreadIdx(Axis::X).rem(Expr::int(SH_LEN))),
    );
    b.finish()
}

// ---------------------------------------------------------------------------
// Family 3: elementwise kernels (disjoint writes → parallel workers legal).
// ---------------------------------------------------------------------------

/// Rewrite every `out` read into an `fbuf` read. Family 3 writes `out` from
/// concurrent workers: a load of `out` at an arbitrary masked index could
/// observe another block's write (or not) depending on scheduling, so the
/// oracle and the parallel path would legitimately diverge. `fbuf` is never
/// written by this family, so reads from it are race-free.
fn strip_out_reads(r: &ER) -> ER {
    match r {
        ER::LoadOut(i) => ER::LoadF(Box::new(strip_out_reads(i))),
        ER::LoadF(i) => ER::LoadF(Box::new(strip_out_reads(i))),
        ER::Add(a, b) => ER::Add(Box::new(strip_out_reads(a)), Box::new(strip_out_reads(b))),
        ER::Sub(a, b) => ER::Sub(Box::new(strip_out_reads(a)), Box::new(strip_out_reads(b))),
        ER::Mul(a, b) => ER::Mul(Box::new(strip_out_reads(a)), Box::new(strip_out_reads(b))),
        ER::Div(a, b) => ER::Div(Box::new(strip_out_reads(a)), Box::new(strip_out_reads(b))),
        ER::Rem(a, b) => ER::Rem(Box::new(strip_out_reads(a)), Box::new(strip_out_reads(b))),
        ER::Lt(a, b) => ER::Lt(Box::new(strip_out_reads(a)), Box::new(strip_out_reads(b))),
        ER::And(a, b) => ER::And(Box::new(strip_out_reads(a)), Box::new(strip_out_reads(b))),
        ER::Select(c, a, b) => ER::Select(
            Box::new(strip_out_reads(c)),
            Box::new(strip_out_reads(a)),
            Box::new(strip_out_reads(b)),
        ),
        ER::CastI32(a) => ER::CastI32(Box::new(strip_out_reads(a))),
        ER::Min(a, b) => ER::Min(Box::new(strip_out_reads(a)), Box::new(strip_out_reads(b))),
        other => other.clone(),
    }
}

fn build_elementwise(val: &ER, guard: bool) -> Kernel {
    let val = strip_out_reads(val);
    let val = &val;
    let mut b = KernelBuilder::new("rnd_elementwise");
    let out = b.buffer("out", Scalar::I64);
    let fbuf = b.buffer("fbuf", Scalar::F32);
    let p = b.scalar("p", Scalar::I32);
    let q = b.scalar("q", Scalar::F32);
    let lcl = b.local_array("scratch", Scalar::I64, 8);
    let g = b.let_(
        "g",
        Expr::BlockIdx(Axis::X)
            .mul(Expr::BlockDim(Axis::X))
            .add(Expr::ThreadIdx(Axis::X)),
    );
    let vars = vec![g, g, g, g];
    let c = Ctx {
        out,
        fbuf,
        lcl,
        p,
        q,
        vars,
    };
    let store = |b: &mut KernelBuilder, c: &Ctx| {
        b.store(
            c.out,
            Expr::Var(g),
            Expr::cast(Scalar::I64, build_expr(val, c)),
        );
    };
    if guard {
        b.if_then(Expr::Var(g).lt(Expr::int(OUT_LEN)), |b| store(b, &c));
    } else {
        store(&mut b, &c);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Family 1: serial engine ≡ oracle on arbitrary control flow,
    /// atomics, unmasked division, early return, odd launch shapes.
    #[test]
    fn general_kernels_match_oracle(
        recipes in prop::collection::vec(sr(), 1..6),
        with_return in any::<bool>(),
        grid in 1u32..6,
        block in 1u32..10,
    ) {
        let k = build_general(&recipes, with_return);
        assert_equiv(&k, LaunchConfig::new(grid, block));
    }

    /// Family 2: barrier kernels exercise the compiled phase tree.
    #[test]
    fn barrier_kernels_match_oracle(
        phases in prop::collection::vec(ph_r(), 1..4),
        grid in 1u32..5,
        block in 1u32..17,
    ) {
        let k = build_barrier(&phases);
        assert_equiv(&k, LaunchConfig::new(grid, block));
    }

    /// Family 3: disjoint-write kernels match the oracle under the
    /// intra-node parallel path for any worker count (memory AND stats).
    #[test]
    fn elementwise_kernels_match_oracle_in_parallel(
        val in er(),
        workers in 2usize..6,
        grid in 2u32..9,
    ) {
        let k = build_elementwise(&val, true);
        validate(&k).expect("generated kernels are valid");
        let launch = LaunchConfig::new(grid, 16u32);
        let (mut pool_a, args) = seed_pool();
        let mut pool_b = pool_a.clone();
        let mut pool_c = pool_a.clone();
        let ra = execute_launch(&k, launch, &args, &mut pool_a);
        let prog = Program::compile(&k, launch, &args).unwrap();
        let rb = run_range_parallel(&prog, &mut pool_b, 0..launch.num_blocks(), workers);
        let rc = run_range_parallel_simd(&prog, &mut pool_c, 0..launch.num_blocks(), workers);
        match (&ra, &rb) {
            (Ok(sa), Ok(sb)) => {
                prop_assert_eq!(sa, sb, "BlockStats diverged under {} workers", workers);
                for id in 0..pool_a.len() {
                    let id = cucc::exec::BufferId(id as u32);
                    prop_assert_eq!(pool_a.bytes(id), pool_b.bytes(id), "memory diverged");
                }
            }
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
            _ => prop_assert!(false, "result kind diverged: {:?} vs {:?}", ra, rb),
        }
        match (&ra, &rc) {
            (Ok(sa), Ok(sc)) => {
                prop_assert_eq!(sa, sc, "simd BlockStats diverged under {} workers", workers);
                for id in 0..pool_a.len() {
                    let id = cucc::exec::BufferId(id as u32);
                    prop_assert_eq!(pool_a.bytes(id), pool_c.bytes(id), "simd memory diverged");
                }
            }
            (Err(ea), Err(ec)) => prop_assert_eq!(ea, ec),
            _ => prop_assert!(false, "simd result kind diverged: {:?} vs {:?}", ra, rc),
        }
    }
}

/// Global atomics force the parallel path into its serial fallback; the
/// result must still match the oracle exactly.
#[test]
fn atomic_kernel_parallel_fallback_matches_oracle() {
    let mut b = KernelBuilder::new("hist");
    let out = b.buffer("out", Scalar::I64);
    let g = b.let_(
        "g",
        Expr::BlockIdx(Axis::X)
            .mul(Expr::BlockDim(Axis::X))
            .add(Expr::ThreadIdx(Axis::X)),
    );
    b.atomic(
        AtomicOp::Add,
        out,
        Expr::Var(g).rem(Expr::int(8)),
        Expr::Var(g).rem(Expr::int(5)).add(Expr::int(1)),
    );
    let k = b.finish();
    validate(&k).unwrap();
    let launch = LaunchConfig::new(7u32, 32u32);

    let mut pool_a = MemPool::new();
    let out_a = pool_a.alloc_elems(Scalar::I64, 8);
    let args = vec![Arg::Buffer(out_a)];
    let mut pool_b = pool_a.clone();

    let mut pool_c = pool_b.clone();
    let sa = execute_launch(&k, launch, &args, &mut pool_a).unwrap();
    let prog = Program::compile(&k, launch, &args).unwrap();
    assert!(
        prog.serial_only(),
        "global atomics must force serial fallback"
    );
    let sb = run_range_parallel(&prog, &mut pool_b, 0..launch.num_blocks(), 4).unwrap();
    assert_eq!(sa, sb);
    assert_eq!(pool_a.bytes(out_a), pool_b.bytes(out_a));
    // The vectorized tier takes the same serial fallback; the interleaved
    // read-modify-writes must still match the oracle exactly.
    let sc = run_range_parallel_simd(&prog, &mut pool_c, 0..launch.num_blocks(), 4).unwrap();
    assert_eq!(sa, sc);
    assert_eq!(pool_a.bytes(out_a), pool_c.bytes(out_a));
}

/// Divergent per-lane masks: an early `return` retires some lanes and a
/// data-dependent guard predicates the store. The segment must batch as
/// `pred` and the vectorized tier must match the oracle bit-for-bit,
/// serially and under parallel workers.
#[test]
fn divergent_mask_kernel_matches_oracle_simd() {
    let mut b = KernelBuilder::new("divergent");
    let out = b.buffer("out", Scalar::I64);
    let fbuf = b.buffer("fbuf", Scalar::F32);
    let g = b.let_(
        "g",
        Expr::BlockIdx(Axis::X)
            .mul(Expr::BlockDim(Axis::X))
            .add(Expr::ThreadIdx(Axis::X)),
    );
    b.if_then(Expr::Var(g).rem(Expr::int(4)).eq_(Expr::int(0)), |b| {
        b.ret()
    });
    let v = b.let_("v", Expr::load(fbuf, Expr::Var(g).rem(Expr::int(F_LEN))));
    b.if_then(Expr::Var(v).lt(Expr::float(0.5)), |b| {
        b.store(
            out,
            Expr::Var(g),
            Expr::cast(Scalar::I64, Expr::Var(v).mul(Expr::float(3.0))),
        );
    });
    let k = b.finish();
    validate(&k).unwrap();
    let launch = LaunchConfig::new(6u32, 20u32);

    let mut pool_a = MemPool::new();
    let out_id = pool_a.alloc_elems(Scalar::I64, OUT_LEN as usize);
    let fb = pool_a.alloc_elems(Scalar::F32, F_LEN as usize);
    let f_bytes: Vec<u8> = (0..F_LEN)
        .flat_map(|i| (i as f32 * 0.37 - 2.5).to_le_bytes())
        .collect();
    pool_a.write_all(fb, &f_bytes);
    let args = vec![Arg::Buffer(out_id), Arg::Buffer(fb)];
    let mut pool_b = pool_a.clone();
    let mut pool_c = pool_a.clone();

    let sa = execute_launch(&k, launch, &args, &mut pool_a).unwrap();
    let prog = Program::compile(&k, launch, &args).unwrap();
    assert!(
        prog.phase_summary().contains("pred["),
        "divergent kernel should batch predicated: {}",
        prog.phase_summary()
    );
    let sb = run_range_simd(&prog, &mut pool_b, 0..launch.num_blocks()).unwrap();
    assert_eq!(sa, sb);
    assert_eq!(pool_a.bytes(out_id), pool_b.bytes(out_id));
    let sc = run_range_parallel_simd(&prog, &mut pool_c, 0..launch.num_blocks(), 3).unwrap();
    assert_eq!(sa, sc);
    assert_eq!(pool_a.bytes(out_id), pool_c.bytes(out_id));
}

/// Multiple lanes of one chunk fault on an out-of-bounds store: the
/// vectorized tier must report the *lowest* faulting thread's error,
/// exactly as the serial oracle does — both in dense full-mode and under a
/// divergent mask.
#[test]
fn faulting_lanes_report_lowest_thread_simd() {
    for guarded in [false, true] {
        let mut b = KernelBuilder::new("oob");
        let out = b.buffer("out", Scalar::I64);
        let idx = Expr::ThreadIdx(Axis::X)
            .mul(Expr::int(17))
            .rem(Expr::int(256));
        let val = Expr::cast(Scalar::I64, Expr::ThreadIdx(Axis::X));
        if guarded {
            let cond = Expr::ThreadIdx(Axis::X).rem(Expr::int(2)).eq_(Expr::int(0));
            let (idx, val) = (idx.clone(), val.clone());
            b.if_then(cond, move |b| b.store(out, idx, val));
        } else {
            b.store(out, idx, val);
        }
        let k = b.finish();
        validate(&k).unwrap();
        let launch = LaunchConfig::new(2u32, 32u32);

        let mut pool_a = MemPool::new();
        let out_id = pool_a.alloc_elems(Scalar::I64, OUT_LEN as usize);
        let args = vec![Arg::Buffer(out_id)];
        let mut pool_b = pool_a.clone();
        let mut pool_c = pool_a.clone();

        let ra = execute_launch(&k, launch, &args, &mut pool_a);
        let ea = ra.expect_err("threads with tid*17 % 256 >= OUT_LEN must fault");
        let prog = Program::compile(&k, launch, &args).unwrap();
        let want = if guarded { "pred[" } else { "dense[" };
        assert!(
            prog.phase_summary().contains(want),
            "guarded={guarded}: {}",
            prog.phase_summary()
        );
        let eb = run_range_simd(&prog, &mut pool_b, 0..launch.num_blocks())
            .expect_err("simd must fault too");
        assert_eq!(ea, eb, "guarded={guarded}: simd fault diverged from oracle");
        let ec = run_range_parallel_simd(&prog, &mut pool_c, 0..launch.num_blocks(), 4)
            .expect_err("parallel simd must fault too");
        assert_eq!(ea, ec, "guarded={guarded}: parallel simd fault diverged");
    }
}

/// Intrinsic calls (weighted float ops) must count identically.
#[test]
fn intrinsic_kernel_matches_oracle() {
    let mut b = KernelBuilder::new("mathy");
    let fbuf = b.buffer("fbuf", Scalar::F32);
    let g = b.let_(
        "g",
        Expr::BlockIdx(Axis::X)
            .mul(Expr::BlockDim(Axis::X))
            .add(Expr::ThreadIdx(Axis::X)),
    );
    let idx = Expr::Var(g).rem(Expr::int(F_LEN));
    let x = b.let_("x", Expr::load(fbuf, idx.clone()));
    let y = b.let_(
        "y",
        Expr::Call {
            f: Intrinsic::Sqrt,
            args: vec![Expr::Call {
                f: Intrinsic::Fabs,
                args: vec![Expr::Var(x)],
            }],
        },
    );
    let z = b.let_(
        "z",
        Expr::Call {
            f: Intrinsic::Fmax,
            args: vec![
                Expr::Call {
                    f: Intrinsic::Sin,
                    args: vec![Expr::Var(y)],
                },
                Expr::Call {
                    f: Intrinsic::Exp,
                    args: vec![Expr::Var(x)],
                },
            ],
        },
    );
    b.store(fbuf, idx, Expr::cast(Scalar::F32, Expr::Var(z)));
    let k = b.finish();
    validate(&k).unwrap();

    let launch = LaunchConfig::new(3u32, 16u32);
    let mut pool_a = MemPool::new();
    let fb = pool_a.alloc_elems(Scalar::F32, F_LEN as usize);
    let f_bytes: Vec<u8> = (0..F_LEN)
        .flat_map(|i| (i as f32 * 0.3 - 2.0).to_le_bytes())
        .collect();
    pool_a.write_all(fb, &f_bytes);
    let args = vec![Arg::Buffer(fb)];
    let mut pool_b = pool_a.clone();

    let sa = execute_launch(&k, launch, &args, &mut pool_a).unwrap();
    let sb = execute_launch_bytecode(&k, launch, &args, &mut pool_b).unwrap();
    assert_eq!(sa, sb);
    assert_eq!(pool_a.bytes(fb), pool_b.bytes(fb));
    assert!(sa.float_ops > 0);
}

/// The zero-iteration / tail-heavy corner: a launch whose guard disables
/// every thread of the last block entirely.
#[test]
fn all_tail_threads_guarded_off() {
    let mut b = KernelBuilder::new("tail");
    let out = b.buffer("out", Scalar::I64);
    let n = b.scalar("n", Scalar::I32);
    let g = b.let_(
        "g",
        Expr::BlockIdx(Axis::X)
            .mul(Expr::BlockDim(Axis::X))
            .add(Expr::ThreadIdx(Axis::X)),
    );
    b.if_then(Expr::Var(g).lt(n), |b| {
        b.store(out, Expr::Var(g), Expr::Var(g).mul(Expr::int(2)));
    });
    let k = b.finish();
    validate(&k).unwrap();

    // 3 blocks × 8 threads = 24 lanes but n = 9: block 1 is partial, block
    // 2 entirely masked off.
    let launch = LaunchConfig::new(3u32, 8u32);
    let mut pool_a = MemPool::new();
    let out_a = pool_a.alloc_elems(Scalar::I64, 24);
    let args = vec![Arg::Buffer(out_a), Arg::int(9)];
    let mut pool_b = pool_a.clone();

    let sa = execute_launch(&k, launch, &args, &mut pool_a).unwrap();
    let sb = execute_launch_bytecode(&k, launch, &args, &mut pool_b).unwrap();
    assert_eq!(sa, sb);
    assert_eq!(pool_a.bytes(out_a), pool_b.bytes(out_a));
}
