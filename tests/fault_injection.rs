//! Failure-injection tests: the runtime's invariant checks must actually
//! fire when the invariants are broken.

use cucc::cluster::ClusterSpec;
use cucc::core::{compile_source, CuccCluster, MigrateError, RuntimeConfig};
use cucc::exec::Arg;
use cucc::ir::LaunchConfig;

const SAXPY: &str = "__global__ void saxpy(float* x, float* y, float a, int n) {
    int id = blockIdx.x * blockDim.x + threadIdx.x;
    if (id < n) y[id] = a * x[id] + y[id];
}";

#[test]
fn consistency_checker_catches_divergent_callback_inputs() {
    // Corruption inside the *gathered* region heals (each slice is
    // recomputed by exactly one owner and broadcast — that is why the
    // workflow is correct; see the benign-corruption test below).
    // Divergence survives only where every node computes independently:
    // the callback blocks. Corrupt one node's copy of the *input* in the
    // tail region — each node's callback then writes a different value,
    // and the post-launch consistency check must fire.
    let ck = compile_source(SAXPY).unwrap();
    let n = 1200usize; // 5 blocks of 256: block 4 is the tail callback
    let launch = LaunchConfig::cover1(n as u64, 256);
    let mut cl = CuccCluster::with_options(
        ClusterSpec::simd_focused().with_nodes(2),
        RuntimeConfig::default(),
    );
    let x = cl.alloc(n * 4);
    let y = cl.alloc(n * 4);
    cl.upload(x, &vec![1.0f32; n]).unwrap();
    cl.upload(y, &vec![2.0f32; n]).unwrap();
    let args = [
        Arg::Buffer(x),
        Arg::Buffer(y),
        Arg::float(0.5),
        Arg::int(n as i64),
    ];

    // Healthy launch: fine.
    cl.launch(&ck, launch, &args).unwrap();

    // Fault: node 1's copy of x diverges at element 1100 (tail region,
    // executed by the callback block on every node).
    cl.sim_mut().node_mut(1).bytes_mut(x)[1100 * 4] ^= 0xFF;

    let err = cl.launch(&ck, launch, &args);
    match err {
        Err(MigrateError::Launch(msg)) => {
            assert!(msg.contains("consistency violation"), "{msg}");
            assert!(msg.contains('y'), "{msg}");
        }
        other => panic!("expected consistency violation, got {other:?}"),
    }
}

#[test]
fn corruption_in_gathered_region_heals() {
    // The dual of the test above: corrupting one node's copy of the
    // *output* inside the gathered region is healed by the Allgather —
    // every slice is recomputed by its owner and re-broadcast.
    let ck = compile_source(SAXPY).unwrap();
    let n = 2048usize;
    let launch = LaunchConfig::cover1(n as u64, 256);
    let mut cl = CuccCluster::with_options(
        ClusterSpec::simd_focused().with_nodes(4),
        RuntimeConfig::default(),
    );
    let x = cl.alloc(n * 4);
    let y = cl.alloc(n * 4);
    cl.upload(x, &vec![1.0f32; n]).unwrap();
    cl.upload(y, &vec![2.0f32; n]).unwrap();
    let args = [
        Arg::Buffer(x),
        Arg::Buffer(y),
        Arg::float(0.5),
        Arg::int(n as i64),
    ];
    cl.sim_mut().node_mut(2).bytes_mut(y)[(2 * (n / 4) + 3) * 4] ^= 0xFF;
    // Every element of y is recomputed from (consistent) x, so the launch
    // succeeds and all nodes agree. Note the *values* differ from the
    // uncorrupted case only if the kernel had read the corrupted y — it
    // does (y appears on the right-hand side), so the corrupted input
    // propagates into one consistent slice: consistency ≠ correctness, and
    // the checker's job is only the former.
    cl.launch(&ck, launch, &args).unwrap();
    assert!(cl.sim().consistent(y));
}

#[test]
fn corruption_outside_written_region_is_benign_after_gather() {
    // Corrupting a node's copy of a *read-only* buffer region that the
    // node never reads for its own slice does not corrupt outputs of other
    // nodes — but the written buffer's consistency must still hold because
    // every element is recomputed and gathered.
    let ck = compile_source(
        "__global__ void fill(float* out, int n) {
            int id = blockIdx.x * blockDim.x + threadIdx.x;
            if (id < n) out[id] = (float)(id);
        }",
    )
    .unwrap();
    let n = 1024usize;
    let launch = LaunchConfig::cover1(n as u64, 256);
    let mut cl = CuccCluster::with_options(
        ClusterSpec::simd_focused().with_nodes(4),
        RuntimeConfig::default(),
    );
    let out = cl.alloc(n * 4);
    // Pre-corrupt node 3's output buffer: the kernel overwrites every
    // element, and the gather redistributes the fresh values, so the final
    // state is consistent and correct.
    cl.sim_mut().node_mut(3).bytes_mut(out)[0] = 0x5A;
    cl.launch(&ck, launch, &[Arg::Buffer(out), Arg::int(n as i64)])
        .unwrap();
    let got = cl.download::<f32>(out).unwrap();
    let want: Vec<f32> = (0..n).map(|i| i as f32).collect();
    assert_eq!(got, want);
    assert!(cl.sim().fully_consistent());
}

#[test]
fn disabling_verification_skips_the_check() {
    let ck = compile_source(SAXPY).unwrap();
    let n = 1024usize;
    let launch = LaunchConfig::cover1(n as u64, 256);
    let cfg = RuntimeConfig {
        verify_consistency: false,
        ..Default::default()
    };
    let mut cl = CuccCluster::with_options(ClusterSpec::simd_focused().with_nodes(2), cfg);
    let x = cl.alloc(n * 4);
    let y = cl.alloc(n * 4);
    cl.upload(x, &vec![1.0f32; n]).unwrap();
    // Corrupt node 1's copy of y inside its own slice.
    cl.sim_mut().node_mut(1).bytes_mut(y)[(n / 2 + 1) * 4] = 0x77;
    // With verification off, the launch "succeeds" silently — documenting
    // exactly what the flag trades away.
    cl.launch(
        &ck,
        launch,
        &[
            Arg::Buffer(x),
            Arg::Buffer(y),
            Arg::float(2.0),
            Arg::int(n as i64),
        ],
    )
    .unwrap();
}

#[test]
fn oob_kernel_reports_not_corrupts() {
    // A kernel writing out of bounds must fail the launch cleanly, not
    // scribble over other allocations.
    let ck = compile_source(
        "__global__ void bad(float* out) {
            out[blockIdx.x * blockDim.x + threadIdx.x + 1000000] = 1.0f;
        }",
    )
    .unwrap();
    let mut cl = CuccCluster::with_options(
        ClusterSpec::simd_focused().with_nodes(2),
        RuntimeConfig::default(),
    );
    let sentinel = cl.alloc(64);
    cl.upload(sentinel, &[0xABu8; 64]).unwrap();
    let out = cl.alloc(256);
    let err = cl.launch(&ck, LaunchConfig::new(2u32, 32u32), &[Arg::Buffer(out)]);
    assert!(err.is_err(), "OOB launch must fail");
    assert_eq!(
        cl.download::<u8>(sentinel).unwrap(),
        vec![0xAB; 64],
        "other memory untouched"
    );
}
