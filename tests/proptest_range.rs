//! Two-sided soundness corpus for the range abstract interpreter
//! (`cucc-analysis::range`) and the engines' certified unchecked fast
//! paths:
//!
//! 1. **Certificates are sound** — on random kernels, launches, and
//!    (possibly undersized) allocations, forcing `CertMode::Validate`
//!    re-checks every certified access at runtime; a certified access
//!    that faults is `ExecError::CertificateViolation`, which must never
//!    occur. Uncertified accesses may still trap — imprecision is
//!    allowed, unsoundness is not. When the analysis certifies *every*
//!    access, the dynamic sanitizer must observe zero OOB.
//!
//! 2. **Elision is invisible** — with certificates attached in
//!    `CertMode::Elide`, final memory and `BlockStats` must be
//!    bit-identical to the checked path on all three engine tiers
//!    (tree-walk oracle, bytecode, simd lane-array).

use cucc::analysis::{analyze_ranges, certify_program, global_extents};
use cucc::exec::{
    cross_validate_certs, execute_launch, run_range, run_range_simd, sanitize_launch, Arg,
    BufferId, CertMode, ExecError, MemPool, Program,
};
use cucc::ir::{parse_kernel, validate, LaunchConfig, Scalar};
use proptest::prelude::*;

/// One random subject: an access shape, a launch geometry, and an
/// allocation shortfall (elements removed from the exact footprint — 0
/// means certified shapes stay certified, >0 forces uncertified or
/// faulting accesses the analysis must *not* have certified).
#[derive(Debug, Clone)]
struct Subject {
    shape: Shape,
    blocks: u32,
    threads: u32,
    shortfall: u64,
}

#[derive(Debug, Clone)]
enum Shape {
    /// `out[id]` — certified iff the buffer covers the grid.
    Plain,
    /// `if (id < n) out[id]` — guard certifies against extent `n`.
    Guarded { quarters: i64 },
    /// `out[id % m]` — rem transfer certifies against extent `m`.
    Modulo { m: i64 },
    /// `out[id] = x[id] + x[id / 2]` — two read sites, one certified-width.
    ReadPair,
    /// Loop accumulation with a local array staged in between.
    LoopLocal { iters: i64 },
}

impl Subject {
    fn total(&self) -> i64 {
        self.blocks as i64 * self.threads as i64
    }

    fn source(&self) -> String {
        let body = match &self.shape {
            Shape::Plain => "int id = blockIdx.x * blockDim.x + threadIdx.x;
                 out[id] = id;"
                .to_string(),
            Shape::Guarded { .. } => "int id = blockIdx.x * blockDim.x + threadIdx.x;
                 if (id < n) out[id] = 2 * id;"
                .to_string(),
            Shape::Modulo { m } => format!(
                "int id = blockIdx.x * blockDim.x + threadIdx.x;
                 out[id % {m}] = id;"
            ),
            Shape::ReadPair => "int id = blockIdx.x * blockDim.x + threadIdx.x;
                 out[id] = x[id] + x[id / 2];"
                .to_string(),
            Shape::LoopLocal { iters } => format!(
                "int id = blockIdx.x * blockDim.x + threadIdx.x;
                 int acc[4];
                 acc[0] = 0;
                 for (int i = 0; i < {iters}; i++) {{
                     acc[i % 4] = id + i;
                 }}
                 out[id] = acc[0];"
            ),
        };
        let params = match self.shape {
            Shape::Guarded { .. } => "int* out, int n",
            Shape::ReadPair => "int* out, int* x",
            _ => "int* out",
        };
        format!("__global__ void k({params}) {{ {body} }}")
    }

    /// Exact element footprint of `out` (before the shortfall).
    fn exact_extent(&self) -> i64 {
        match &self.shape {
            Shape::Guarded { quarters } => (self.total() * quarters / 4).max(1),
            Shape::Modulo { m } => *m,
            _ => self.total(),
        }
    }

    /// Build the argument pool at the (possibly shortened) extent.
    fn build(&self) -> (MemPool, Vec<Arg>, u64) {
        let extent = (self.exact_extent() as u64)
            .saturating_sub(self.shortfall)
            .max(1);
        let mut pool = MemPool::new();
        let out = pool.alloc_elems(Scalar::I32, extent as usize);
        let mut args = vec![Arg::Buffer(out)];
        match self.shape {
            Shape::Guarded { .. } => args.push(Arg::int(self.exact_extent())),
            Shape::ReadPair => {
                // `x` always covers the grid, so only `out` can fault.
                let x = pool.alloc_elems(Scalar::I32, self.total() as usize);
                args.push(Arg::Buffer(x));
            }
            _ => {}
        }
        (pool, args, extent)
    }
}

fn subject() -> impl Strategy<Value = Subject> {
    let shape = prop_oneof![
        Just(Shape::Plain),
        (1i64..=4).prop_map(|quarters| Shape::Guarded { quarters }),
        (1i64..24).prop_map(|m| Shape::Modulo { m }),
        Just(Shape::ReadPair),
        (1i64..6).prop_map(|iters| Shape::LoopLocal { iters }),
    ];
    (
        shape,
        1u32..6,
        prop::sample::select(vec![2u32, 4, 8, 16]),
        0u64..3,
    )
        .prop_map(|(shape, blocks, threads, shortfall)| Subject {
            shape,
            blocks,
            threads,
            shortfall,
        })
}

/// Compile and certify against the pool's real allocation sizes.
fn certified_program(s: &Subject) -> (Program, MemPool, Vec<Arg>, (usize, usize)) {
    let kernel = parse_kernel(&s.source()).unwrap();
    validate(&kernel).unwrap();
    let launch = LaunchConfig::new(s.blocks, s.threads);
    let (pool, args, _) = s.build();
    let mut prog = Program::compile(&kernel, launch, &args).unwrap();
    let exts = global_extents(&prog, |b| (b.index() < pool.len()).then(|| pool.size_of(b)));
    let stats = certify_program(&mut prog, &exts, CertMode::Elide).stats();
    (prog, pool, args, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Side 1 — soundness: no certificate is ever contradicted at runtime.
    #[test]
    fn certified_accesses_never_trap(s in subject()) {
        let (prog, pool, args, (certified, total)) = certified_program(&s);
        // Validate mode re-checks every certified access on both bytecode
        // tiers; a cert-violating fault is CertificateViolation.
        match cross_validate_certs(&prog, &pool) {
            Ok(()) => {}
            Err(ExecError::CertificateViolation { .. }) => {
                prop_assert!(false, "certificate contradicted at runtime on {s:?}");
            }
            Err(_) => {} // an *uncertified* access faulted: imprecision, fine
        }
        // Fully certified ⇒ the sanitizer observes zero OOB.
        if certified == total {
            let kernel = parse_kernel(&s.source()).unwrap();
            let launch = LaunchConfig::new(s.blocks, s.threads);
            let report = sanitize_launch(&kernel, launch, &args, &pool);
            prop_assert!(
                report.oob.is_empty(),
                "fully certified but sanitizer trapped on {s:?}: {:?}",
                report.oob
            );
        }
    }

    /// Side 1b — precision floor: with exact extents, every corpus shape is
    /// fully certified (the fast path actually engages).
    #[test]
    fn exact_extents_fully_certify(s in subject()) {
        let s = Subject { shortfall: 0, ..s };
        let (_, _, _, (certified, total)) = certified_program(&s);
        prop_assert!(total > 0);
        prop_assert_eq!(certified, total, "uncertified access at exact extent on {:?}", s);
    }

    /// Side 2 — transparency: the certified unchecked path is bit-identical
    /// to the checked path (memory and BlockStats) on all three tiers.
    #[test]
    fn elision_is_bit_identical(s in subject()) {
        let s = Subject { shortfall: 0, ..s };
        let kernel = parse_kernel(&s.source()).unwrap();
        validate(&kernel).unwrap();
        let launch = LaunchConfig::new(s.blocks, s.threads);
        let blocks = launch.num_blocks();

        // Tree-walk oracle (no cert machinery at all).
        let (mut pool_tree, args, _) = s.build();
        let st_tree = execute_launch(&kernel, launch, &args, &mut pool_tree).unwrap();

        // Checked bytecode/simd: plain program, no certs attached.
        let plain = Program::compile(&kernel, launch, &args).unwrap();
        let (mut pool_b, _, _) = s.build();
        let st_b = run_range(&plain, &mut pool_b, 0..blocks).unwrap();
        let (mut pool_s, _, _) = s.build();
        let st_s = run_range_simd(&plain, &mut pool_s, 0..blocks).unwrap();

        // Unchecked: certificates attached in Elide mode.
        let (prog, _, _, _) = certified_program(&s);
        let (mut pool_bu, _, _) = s.build();
        let st_bu = run_range(&prog, &mut pool_bu, 0..blocks).unwrap();
        let (mut pool_su, _, _) = s.build();
        let st_su = run_range_simd(&prog, &mut pool_su, 0..blocks).unwrap();

        prop_assert_eq!(&st_tree, &st_b, "checked bytecode stats diverged from oracle");
        prop_assert_eq!(&st_b, &st_bu, "unchecked bytecode stats diverged");
        prop_assert_eq!(&st_tree, &st_s, "checked simd stats diverged from oracle");
        prop_assert_eq!(&st_s, &st_su, "unchecked simd stats diverged");
        for i in 0..pool_tree.len() {
            let id = BufferId(i as u32);
            prop_assert_eq!(pool_tree.bytes(id), pool_b.bytes(id), "checked bytecode memory");
            prop_assert_eq!(pool_tree.bytes(id), pool_bu.bytes(id), "unchecked bytecode memory");
            prop_assert_eq!(pool_tree.bytes(id), pool_s.bytes(id), "checked simd memory");
            prop_assert_eq!(pool_tree.bytes(id), pool_su.bytes(id), "unchecked simd memory");
        }
    }

    /// The cert table itself is honest: `stats()` counts match the
    /// per-access table, and certified slots imply certified accesses.
    #[test]
    fn cert_table_is_consistent(s in subject()) {
        let kernel = parse_kernel(&s.source()).unwrap();
        let launch = LaunchConfig::new(s.blocks, s.threads);
        let (pool, args, _) = s.build();
        let prog = Program::compile(&kernel, launch, &args).unwrap();
        let exts = global_extents(&prog, |b| {
            (b.index() < pool.len()).then(|| pool.size_of(b))
        });
        let ra = analyze_ranges(&prog, &exts);
        let (certified, total) = ra.stats();
        prop_assert!(certified <= total);
        let from_table = ra.certs.iter().filter(|c| c.certified).count();
        prop_assert_eq!(certified, from_table);
        for (slot, all_ok) in ra.certified_slots() {
            if all_ok {
                prop_assert!(ra
                    .certs
                    .iter()
                    .filter(|c| c.slot == slot)
                    .all(|c| c.certified));
            }
        }
    }
}
