//! Whole-program migration tests: multi-kernel applications run through the
//! `GpuProgram` layer on all three backends (GPU reference, CuCC cluster,
//! PGAS baseline) and must produce identical outputs.

use cucc::cluster::ClusterSpec;
use cucc::core::{compile, split_blocks, ArgSpec, CuccCluster, GpuProgram, RuntimeConfig};
use cucc::gpu_model::{GpuDevice, GpuSpec};
use cucc::ir::{parse_kernel, LaunchConfig};
use cucc::pgas::{PgasCluster, PgasConfig};
use cucc::workloads::{GpuBackend, PgasBackend};

/// A three-stage image-ish pipeline: brighten → blur(1D) → threshold count
/// per block. Exercises distributed buffers flowing between kernels.
fn pipeline(n: usize) -> GpuProgram {
    let data: Vec<u8> = (0..n).map(|i| ((i * 37) % 251) as u8).collect();
    GpuProgram::builder("image_pipeline")
        .kernel_source(
            "__global__ void brighten(uchar* in, uchar* out, int n, int add) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n)
                    out[id] = min(in[id] + add, 255);
            }",
        )
        .unwrap()
        .kernel_source(
            "__global__ void blur(uchar* in, uchar* out, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id > 0 && id < n - 1)
                    out[id] = (in[id - 1] + in[id] + in[id + 1]) / 3;
            }",
        )
        .unwrap()
        .kernel_source(
            "__global__ void count_bright(uchar* img, int* counts, int n, int thr) {
                __shared__ int partial[256];
                int tid = threadIdx.x;
                int id = blockIdx.x * blockDim.x + tid;
                int is = 0;
                if (id < n && img[id] > thr)
                    is = 1;
                partial[tid] = is;
                __syncthreads();
                if (tid == 0) {
                    int total = 0;
                    for (int t = 0; t < blockDim.x; t++)
                        total += partial[t];
                    counts[blockIdx.x] = total;
                }
            }",
        )
        .unwrap()
        .alloc("raw", n)
        .alloc("bright", n)
        .alloc("smooth", n)
        .alloc("counts", n.div_ceil(256) * 4)
        .h2d("raw", data)
        .launch(
            "brighten",
            LaunchConfig::cover1(n as u64, 256),
            vec![
                ArgSpec::Buffer("raw".into()),
                ArgSpec::Buffer("bright".into()),
                ArgSpec::Int(n as i64),
                ArgSpec::Int(40),
            ],
        )
        .launch(
            "blur",
            LaunchConfig::cover1(n as u64, 256),
            vec![
                ArgSpec::Buffer("bright".into()),
                ArgSpec::Buffer("smooth".into()),
                ArgSpec::Int(n as i64),
            ],
        )
        .launch(
            "count_bright",
            LaunchConfig::cover1(n as u64, 256),
            vec![
                ArgSpec::Buffer("smooth".into()),
                ArgSpec::Buffer("counts".into()),
                ArgSpec::Int(n as i64),
                ArgSpec::Int(128),
            ],
        )
        .d2h("smooth")
        .d2h("counts")
        .build()
}

#[test]
fn pipeline_identical_on_all_backends() {
    let prog = pipeline(4000);

    let mut gpu = GpuBackend(GpuDevice::new(GpuSpec::a100()));
    let gres = prog.run_with(&mut gpu).unwrap();
    assert_eq!(gres.launches, 3);

    for nodes in [1u32, 2, 4, 6] {
        let mut cucc = CuccCluster::with_options(
            ClusterSpec::simd_focused().with_nodes(nodes),
            RuntimeConfig::default(),
        );
        let cres = prog.run_with(&mut cucc).unwrap();
        assert_eq!(cres.outputs, gres.outputs, "CuCC {nodes} nodes");

        let mut pgas = PgasBackend(PgasCluster::new(
            ClusterSpec::simd_focused().with_nodes(nodes),
            PgasConfig::default(),
        ));
        let pres = prog.run_with(&mut pgas).unwrap();
        assert_eq!(pres.outputs, gres.outputs, "PGAS {nodes} nodes");
    }
}

#[test]
fn blur_kernel_replicates_but_pipeline_stays_correct() {
    // `blur` is guarded by `id > 0 && id < n-1`: the leading conjunct is a
    // head-divergent condition, so the analysis rejects it (VariantGuard)
    // and the runtime must take the replicated path — transparently.
    let ck = cucc::core::compile_source(
        "__global__ void blur(uchar* in, uchar* out, int n) {
            int id = blockIdx.x * blockDim.x + threadIdx.x;
            if (id > 0 && id < n - 1)
                out[id] = (in[id - 1] + in[id] + in[id + 1]) / 3;
        }",
    )
    .unwrap();
    assert!(!ck.is_distributable());
}

#[test]
fn transpose_twice_is_identity_distributed() {
    let src = "__global__ void transpose(float* in, float* out, int n) {
        __shared__ float tile[1024];
        tile[threadIdx.y * 32 + threadIdx.x]
            = in[(blockIdx.x * 32 + threadIdx.y) * n + blockIdx.y * 32 + threadIdx.x];
        __syncthreads();
        out[(blockIdx.y * 32 + threadIdx.y) * n + blockIdx.x * 32 + threadIdx.x]
            = tile[threadIdx.x * 32 + threadIdx.y];
    }";
    let n = 128u32;
    let img: Vec<u8> = (0..(n * n * 4) as usize).map(|i| (i % 239) as u8).collect();
    let launch = LaunchConfig::new((n / 32, n / 32), (32u32, 32u32));
    let prog = GpuProgram::builder("double_transpose")
        .kernel_source(src)
        .unwrap()
        .alloc("a", img.len())
        .alloc("b", img.len())
        .alloc("c", img.len())
        .h2d("a", img.clone())
        .launch(
            "transpose",
            launch,
            vec![
                ArgSpec::Buffer("a".into()),
                ArgSpec::Buffer("b".into()),
                ArgSpec::Int(n as i64),
            ],
        )
        .launch(
            "transpose",
            launch,
            vec![
                ArgSpec::Buffer("b".into()),
                ArgSpec::Buffer("c".into()),
                ArgSpec::Int(n as i64),
            ],
        )
        .d2h("c")
        .build();
    let mut cl = CuccCluster::with_options(
        ClusterSpec::thread_focused().with_nodes(4),
        RuntimeConfig::default(),
    );
    let res = prog.run_with(&mut cl).unwrap();
    assert_eq!(res.outputs["c"], img, "(Mᵀ)ᵀ = M across a 4-node cluster");
}

#[test]
fn split_kernel_runs_distributed_and_matches() {
    // §8.3 block resizing, end-to-end: the split variant of saxpy runs the
    // three-phase workflow and matches the unsplit GPU result.
    let src = "__global__ void saxpy(float* x, float* y, float a, int n) {
        int id = blockIdx.x * blockDim.x + threadIdx.x;
        if (id < n) y[id] = a * x[id] + y[id];
    }";
    let n = 5000usize;
    let base_launch = LaunchConfig::cover1(n as u64, 256);
    let kernel = parse_kernel(src).unwrap();
    let (split, split_launch) = split_blocks(&kernel, base_launch, 4).unwrap();
    let ck_base = compile(kernel).unwrap();
    let ck_split = compile(split).unwrap();
    assert!(ck_split.is_distributable());

    let xs: Vec<f32> = (0..n).map(|i| i as f32 * 0.125).collect();
    let ys: Vec<f32> = (0..n).map(|i| (i % 97) as f32).collect();
    let args = |x, y| {
        use cucc::exec::Arg;
        [
            Arg::Buffer(x),
            Arg::Buffer(y),
            Arg::float(2.5),
            Arg::int(n as i64),
        ]
    };

    let mut gpu = GpuDevice::new(GpuSpec::v100());
    let gx = gpu.alloc(n * 4);
    let gy = gpu.alloc(n * 4);
    gpu.pool_mut().write_f32(gx, &xs);
    gpu.pool_mut().write_f32(gy, &ys);
    gpu.launch(&ck_base.kernel, base_launch, &args(gx, gy))
        .unwrap();
    let want = gpu.d2h(gy);

    let mut cl = CuccCluster::with_options(
        ClusterSpec::simd_focused().with_nodes(8),
        RuntimeConfig::default(),
    );
    let cx = cl.alloc(n * 4);
    let cy = cl.alloc(n * 4);
    cl.upload(cx, &xs).unwrap();
    cl.upload(cy, &ys).unwrap();
    let report = cl.launch(&ck_split, split_launch, &args(cx, cy)).unwrap();
    assert!(report.mode.is_three_phase());
    assert_eq!(cl.download::<u8>(cy).unwrap(), want);
}
