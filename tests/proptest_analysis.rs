//! Property tests for the compiler analyses.
//!
//! The central property is **soundness of the Allgather distributable
//! analysis**: whenever the static analysis plus launch-time planner
//! produce a three-phase plan for a kernel, the dynamic write-interval
//! oracle (which traces *every* block) confirms the plan — equal-length,
//! disjoint, gapless chunk footprints (§6.1's definition). False negatives
//! are allowed; false positives would corrupt results and must not exist.

use cucc::analysis::{analyze_kernel, plan_launch, verify_plan, Plan};
use cucc::exec::{Arg, MemPool};
use cucc::ir::{parse_kernel, validate, LaunchConfig};
use proptest::prelude::*;

/// A random affine-ish kernel: `out[a·id + b + (guarded?)] = f(id)` with a
/// random scale/offset, optional tail guard, optional per-thread inner loop
/// writing `w` consecutive elements.
#[derive(Debug, Clone)]
struct RandomKernel {
    scale: i64,
    offset: i64,
    width: i64,
    guard: bool,
    blocks: u32,
    threads: u32,
    n: i64,
}

impl RandomKernel {
    fn source(&self) -> String {
        let idx = if self.width > 1 {
            format!(
                "(id * {s} + {o}) * {w} + i",
                s = self.scale,
                o = self.offset,
                w = self.width
            )
        } else {
            format!("id * {s} + {o}", s = self.scale, o = self.offset)
        };
        let body = if self.width > 1 {
            format!(
                "for (int i = 0; i < {w}; i++) out[{idx}] = id + i;",
                w = self.width,
                idx = idx
            )
        } else {
            format!("out[{idx}] = id;", idx = idx)
        };
        let guarded = if self.guard {
            format!("if (id < n) {{ {body} }}")
        } else {
            body
        };
        format!(
            "__global__ void k(int* out, int n) {{
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                {guarded}
            }}"
        )
    }

    fn launch(&self) -> LaunchConfig {
        LaunchConfig::new(self.blocks, self.threads)
    }

    fn out_elems(&self) -> usize {
        let total = self.blocks as i64 * self.threads as i64;
        ((total * self.scale.max(1) + self.offset) * self.width.max(1) + self.width + 64) as usize
    }
}

fn random_kernel() -> impl Strategy<Value = RandomKernel> {
    (
        1i64..4,  // scale
        0i64..32, // offset
        1i64..4,  // width
        any::<bool>(),
        1u32..12, // blocks
        prop::sample::select(vec![1u32, 2, 8, 32]),
    )
        .prop_flat_map(|(scale, offset, width, guard, blocks, threads)| {
            let total = blocks as i64 * threads as i64;
            (
                Just((scale, offset, width, guard, blocks, threads)),
                1i64..=total,
            )
        })
        .prop_map(
            |((scale, offset, width, guard, blocks, threads), n)| RandomKernel {
                scale,
                offset,
                width,
                guard,
                blocks,
                threads,
                n,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness: a three-phase plan is always confirmed by the oracle.
    #[test]
    fn static_analysis_is_sound(rk in random_kernel(), nodes in 1u64..6) {
        let kernel = parse_kernel(&rk.source()).unwrap();
        validate(&kernel).unwrap();
        let verdict = analyze_kernel(&kernel);
        let mut pool = MemPool::new();
        let out = pool.alloc(rk.out_elems() * 4);
        let args = vec![Arg::Buffer(out), Arg::int(rk.n)];
        if let Plan::ThreePhase(tp) = plan_launch(&kernel, &verdict, rk.launch(), &args, &pool) {
            let report = verify_plan(&kernel, rk.launch(), &args, &pool, &tp).unwrap();
            prop_assert!(report.ok(), "oracle violations: {:?}", report.violations);
            // Partition invariants for every node count.
            let part = tp.partition(nodes);
            prop_assert_eq!(
                part.partial_blocks_per_node * nodes + part.callback_blocks,
                tp.num_blocks
            );
            prop_assert!(part.callback_start <= tp.num_blocks);
        }
    }

    /// Scaled writes (`out[2·id]`) leave gaps: the planner must reject them
    /// rather than produce a gappy gather region.
    #[test]
    fn gappy_writes_never_planned(blocks in 1u32..8, threads in prop::sample::select(vec![2u32, 4, 16])) {
        let src = "__global__ void k(int* out, int n) {
            int id = blockIdx.x * blockDim.x + threadIdx.x;
            out[id * 2] = id;
        }";
        let kernel = parse_kernel(src).unwrap();
        let verdict = analyze_kernel(&kernel);
        let mut pool = MemPool::new();
        let total = blocks as usize * threads as usize;
        let out = pool.alloc(total * 2 * 4 + 64);
        let args = vec![Arg::Buffer(out), Arg::int(total as i64)];
        let launch = LaunchConfig::new(blocks, threads);
        let plan = plan_launch(&kernel, &verdict, launch, &args, &pool);
        prop_assert!(plan.three_phase().is_none(), "gappy plan accepted: {plan:?}");
    }
}

mod tail_guard_properties {
    use super::*;
    use cucc::analysis::{full_blocks_under_guard, GuardClass, Verdict};
    use cucc::ir::{Axis, LaunchConfig};

    /// Brute force: a block is "full" iff the guard holds for every thread.
    fn brute_force_full_blocks(
        scale: i64,
        offset: i64,
        bound: i64,
        blocks: u32,
        threads: u32,
    ) -> u64 {
        let mut full = 0u64;
        for b in 0..blocks as i64 {
            let all =
                (0..threads as i64).all(|t| (b * threads as i64 + t) * scale + offset < bound);
            if all && full == b as u64 {
                full += 1;
            } else if !all {
                break;
            }
        }
        full
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The symbolic tail-guard resolver computes exactly the number of
        /// blocks whose `affine(id) < n` guard holds for all threads.
        #[test]
        fn guard_resolver_matches_brute_force(
            scale in 1i64..5,
            offset in -10i64..10,
            bound in -50i64..5000,
            blocks in 1u32..20,
            threads in prop::sample::select(vec![1u32, 3, 8, 32]),
        ) {
            let src = format!(
                "__global__ void k(int* out, int n) {{
                    int id = blockIdx.x * blockDim.x + threadIdx.x;
                    if (id * {scale} + {offset} < n)
                        out[id] = 1;
                }}"
            );
            let kernel = parse_kernel(&src).unwrap();
            let verdict = analyze_kernel(&kernel);
            let Verdict::Distributable(meta) = &verdict else {
                panic!("guarded affine kernel must be distributable");
            };
            let tail: Vec<_> = meta
                .sites
                .iter()
                .flat_map(|s| s.guards.iter())
                .filter_map(|g| match g {
                    GuardClass::Tail(t) => Some(t.clone()),
                    _ => None,
                })
                .collect();
            prop_assert_eq!(tail.len(), 1, "exactly one tail guard");
            let launch = LaunchConfig::new(blocks, threads);
            let args = vec![Arg::int(0) /* placeholder for out */, Arg::int(bound)];
            // full_blocks_under_guard reads scalar params only; buffer slots
            // just need to exist positionally — pass an int placeholder.
            let got = full_blocks_under_guard(&tail[0], launch, &args)
                .expect("resolvable guard");
            let want = brute_force_full_blocks(scale, offset, bound, blocks, threads);
            prop_assert_eq!(got, want, "scale={} offset={} bound={} g={}x{}",
                scale, offset, bound, blocks, threads);
            let _ = Axis::X;
        }
    }
}

mod partition_properties {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The paper's partition arithmetic conserves blocks and keeps the
        /// callback range a suffix, for arbitrary geometry.
        #[test]
        fn partition_conserves_blocks(
            full in 0u64..5000,
            extra in 0u64..5,
            chunk in 1u64..8,
            nodes in 1u64..64,
        ) {
            let tp = cucc::analysis::ThreePhasePlan {
                num_blocks: full * chunk + extra,
                chunk_blocks: chunk,
                full_chunks: full,
                buffers: vec![],
            };
            let p = tp.partition(nodes);
            prop_assert_eq!(
                p.partial_blocks_per_node * nodes + p.callback_blocks,
                tp.num_blocks
            );
            prop_assert_eq!(p.callback_start, p.partial_blocks_per_node * nodes);
            // More nodes never increases per-node partial work.
            if nodes > 1 {
                let p1 = tp.partition(nodes - 1);
                prop_assert!(p.partial_blocks_per_node <= p1.partial_blocks_per_node);
            }
        }
    }
}

mod allgather_properties {
    use cucc::net::{allgather, AllgatherAlgo, AllgatherPlacement, NetModel};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// All Allgather algorithms produce identical, correct buffers for
        /// arbitrary node counts and payloads.
        #[test]
        fn algorithms_agree(
            n in 1usize..12,
            unit in 1usize..64,
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let total = n * unit;
            let reference: Vec<u8> = (0..total).map(|_| rng.gen()).collect();
            let model = NetModel::infiniband_100g();
            for algo in [
                AllgatherAlgo::Ring,
                AllgatherAlgo::RecursiveDoubling,
                AllgatherAlgo::Bruck,
            ] {
                let mut regions: Vec<Vec<u8>> = (0..n)
                    .map(|i| {
                        let mut r = vec![0u8; total];
                        r[i * unit..(i + 1) * unit]
                            .copy_from_slice(&reference[i * unit..(i + 1) * unit]);
                        r
                    })
                    .collect();
                let mut views: Vec<&mut [u8]> =
                    regions.iter_mut().map(|r| r.as_mut_slice()).collect();
                let cost = allgather(
                    &mut views,
                    &vec![unit as u64; n],
                    &model,
                    algo,
                    AllgatherPlacement::InPlace,
                );
                for (i, r) in regions.iter().enumerate() {
                    prop_assert_eq!(r, &reference, "algo {:?} node {}", algo, i);
                }
                // Cost sanity: wire traffic is exactly (n−1)·total for ring,
                // and at least total·(n-1)/n for the log algorithms.
                if n > 1 {
                    prop_assert!(cost.time > 0.0);
                    prop_assert!(cost.wire_bytes >= (total * (n - 1) / n) as u64);
                }
            }
        }
    }
}

mod simd_properties {
    use cucc::analysis::{analyze_simd, SimdClass};
    use cucc::ir::parse_kernel;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Adding an inner recurrence to any straight-line kernel can only
        /// downgrade the SIMD class, never upgrade it.
        #[test]
        fn recurrence_only_downgrades(iters in 1i64..64) {
            let plain = parse_kernel(
                "__global__ void k(float* a, float* out, int n) {
                    int id = blockIdx.x * blockDim.x + threadIdx.x;
                    if (id < n) out[id] = a[id] * 2.0f;
                }",
            ).unwrap();
            let with_loop = parse_kernel(&format!(
                "__global__ void k(float* a, float* out, int n) {{
                    int id = blockIdx.x * blockDim.x + threadIdx.x;
                    float acc = 0.0f;
                    for (int i = 0; i < {iters}; i++)
                        acc += a[id + i];
                    if (id < n) out[id] = acc;
                }}"
            )).unwrap();
            let p = analyze_simd(&plain);
            let l = analyze_simd(&with_loop);
            prop_assert_eq!(p.class, SimdClass::Full);
            prop_assert_eq!(l.class, SimdClass::Scalar);
            prop_assert!(l.efficiency <= p.efficiency);
        }
    }
}
