//! Property tests of the trace timeline: the span record is not a side
//! channel — it IS the time accounting. Re-deriving `PhaseTimes` and wire
//! traffic from raw spans must reproduce the runtime's reported numbers
//! bit-for-bit, and the Chrome JSON export must round-trip through the
//! parser.

use cucc::cluster::ClusterSpec;
use cucc::core::{compile_source, CuccCluster, ExecMode, RuntimeConfig};
use cucc::exec::Arg;
use cucc::ir::LaunchConfig;
use cucc::net::{allgather_cost, balanced_steps, AllgatherAlgo, AllgatherPlacement, NetModel};
use cucc::trace::{json, Category, Timeline, Track, WIRE_BYTES};
use proptest::prelude::*;

/// Re-derive a phase duration from the raw span list exactly the way the
/// legacy accounting accumulated it: per-track in-order sum of depth-0
/// spans of the category, then max over tracks.
fn max_track_sum(tl: &Timeline, cat: Category) -> f64 {
    let mut best = 0.0f64;
    for track in tl.tracks() {
        let sum: f64 = tl
            .spans()
            .iter()
            .filter(|s| s.depth == 0 && s.category == cat && s.track == track)
            .fold(0.0, |acc, s| acc + s.dur);
        if sum > best {
            best = sum;
        }
    }
    best
}

/// In-order sum over every track (the order spans were recorded).
fn ordered_sum(tl: &Timeline, cat: Category) -> f64 {
    tl.spans()
        .iter()
        .filter(|s| s.depth == 0 && s.category == cat)
        .fold(0.0, |acc, s| acc + s.dur)
}

fn wire_counter_sum(tl: &Timeline) -> u64 {
    tl.counters()
        .iter()
        .filter(|c| c.name == WIRE_BYTES)
        .map(|c| c.value)
        .sum()
}

const TEMPLATES: [&str; 3] = [
    // saxpy: distributable, tail-divergent.
    "__global__ void k(float* x, float* y, float a, int n) {
        int id = blockIdx.x * blockDim.x + threadIdx.x;
        if (id < n) y[id] = a * x[id] + y[id];
    }",
    // copy: distributable, memory-bound.
    "__global__ void k(char* src, char* dst, int n) {
        int id = blockDim.x * blockIdx.x + threadIdx.x;
        if (id < n) dst[id] = src[id];
    }",
    // block-local reduction: one scalar store per block.
    "__global__ void k(float* out, int iters) {
        float acc = 0.0f;
        for (int i = 0; i < iters; i++)
            acc += 0.25f;
        if (threadIdx.x == 0)
            out[blockIdx.x] = acc;
    }",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Timeline-derived phase times and wire bytes equal the launch report
    /// (which in turn equals the legacy closed-form accounting) bit-for-bit.
    #[test]
    fn spans_rederive_launch_report(
        template in 0usize..3,
        elems in 256usize..8192,
        block in prop::sample::select(vec![64u32, 128, 256]),
        nodes in 1u32..9,
    ) {
        let ck = compile_source(TEMPLATES[template]).unwrap();
        let mut cl = CuccCluster::with_options(
            ClusterSpec::simd_focused().with_nodes(nodes),
            RuntimeConfig::modeled(),
        );
        let (launch, args) = match template {
            2 => {
                let blocks = (elems as u64).div_ceil(u64::from(block)).max(1) as u32;
                let out = cl.alloc(blocks as usize * 4);
                (LaunchConfig::new(blocks, block), vec![Arg::Buffer(out), Arg::int(50)])
            }
            1 => {
                let a = cl.alloc(elems);
                let b = cl.alloc(elems);
                (
                    LaunchConfig::cover1(elems as u64, block),
                    vec![Arg::Buffer(a), Arg::Buffer(b), Arg::int(elems as i64)],
                )
            }
            _ => {
                let a = cl.alloc(elems * 4);
                let b = cl.alloc(elems * 4);
                (
                    LaunchConfig::cover1(elems as u64, block),
                    vec![Arg::Buffer(a), Arg::Buffer(b), Arg::float(1.5), Arg::int(elems as i64)],
                )
            }
        };
        // Isolate the launch on the timeline (drop h2d setup spans).
        cl.reset_clock();
        let report = cl.launch(&ck, launch, &args).unwrap();

        let tl = cl.timeline();
        let partial = max_track_sum(tl, Category::Partial);
        let allgather = ordered_sum(tl, Category::Allgather);
        let callback = max_track_sum(tl, Category::Callback);
        let broadcast = ordered_sum(tl, Category::Broadcast);

        prop_assert_eq!(partial.to_bits(), report.times.partial.to_bits());
        prop_assert_eq!(allgather.to_bits(), report.times.allgather.to_bits());
        prop_assert_eq!(callback.to_bits(), report.times.callback.to_bits());
        prop_assert_eq!(broadcast.to_bits(), 0.0f64.to_bits());
        let total = partial + allgather + callback + broadcast;
        prop_assert_eq!(total.to_bits(), report.times.total().to_bits());
        // The clock is a derived view too: reset to 0, one launch → total.
        prop_assert_eq!(cl.clock().to_bits(), report.time().to_bits());

        prop_assert_eq!(wire_counter_sum(tl), report.wire_bytes);
        if let ExecMode::ThreePhase { nodes, .. } = report.mode {
            if nodes > 1 && report.wire_bytes > 0 {
                // Every allgather span sits on the network track; every
                // node sees exactly one partial and one callback span.
                let net_ag = tl.spans().iter().filter(|s| {
                    s.depth == 0 && s.category == Category::Allgather
                }).all(|s| s.track == Track::Network);
                prop_assert!(net_ag);
            }
            for i in 0..nodes {
                for cat in [Category::Partial, Category::Callback] {
                    let count = tl.spans().iter().filter(|s| {
                        s.depth == 0 && s.category == cat && s.track == Track::Node(i as u32)
                    }).count();
                    prop_assert_eq!(count, 1);
                }
            }
        }
    }

    /// The per-step span decomposition of a balanced Allgather reproduces
    /// the closed-form `allgather_cost` wire traffic exactly, and the sum
    /// of step times is within float-accumulation distance of the total.
    #[test]
    fn balanced_steps_match_closed_form(
        n in 1usize..33,
        unit in 1u64..(1u64 << 20),
        algo in prop::sample::select(vec![
            AllgatherAlgo::Ring,
            AllgatherAlgo::RecursiveDoubling,
            AllgatherAlgo::Bruck,
        ]),
    ) {
        let model = NetModel::infiniband_100g();
        let cost = allgather_cost(n, unit, &model, algo, AllgatherPlacement::InPlace);
        let steps = balanced_steps(n, unit, &model, algo);
        let wire: u64 = steps.iter().map(|s| s.wire_bytes).sum();
        prop_assert_eq!(wire, cost.wire_bytes);
        let t: f64 = steps.iter().map(|s| s.time).sum();
        prop_assert!((t - cost.time).abs() <= 1e-9 * cost.time.max(1.0),
            "steps {} vs closed form {}", t, cost.time);
    }

    /// Chrome JSON export round-trips through the parser: every span and
    /// counter is present with exact timestamps (ts/dur in microseconds).
    #[test]
    fn chrome_export_roundtrips(
        spans in prop::collection::vec(
            (0u32..5, 0usize..8, 0.0f64..10.0, 0.0f64..2.0),
            1..20,
        ),
        counters in prop::collection::vec((0.0f64..10.0, 1u64..1_000_000), 0..8),
    ) {
        let mut tl = Timeline::new();
        for (i, &(node, cat, start, dur)) in spans.iter().enumerate() {
            let track = match node {
                0 => Track::Network,
                1 => Track::Host,
                k => Track::Node(k - 2),
            };
            tl.span(format!("span{i}"), track, Category::ALL[cat], start, dur);
        }
        for &(t, v) in &counters {
            tl.counter(WIRE_BYTES, Track::Network, t, v);
        }

        let v = json::parse(&tl.to_chrome_json()).unwrap();
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        let xs: Vec<_> = events.iter().filter(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("X")
        }).collect();
        prop_assert_eq!(xs.len(), spans.len());
        for (i, &(_, _, start, dur)) in spans.iter().enumerate() {
            let ev = xs.iter().find(|e| {
                e.get("name").and_then(|n| n.as_str()) == Some(&format!("span{i}"))
            }).unwrap();
            // `{:?}` float formatting round-trips exactly through the parser.
            prop_assert_eq!(
                ev.get("ts").and_then(|t| t.as_f64()).unwrap().to_bits(),
                (start * 1e6).to_bits()
            );
            prop_assert_eq!(
                ev.get("dur").and_then(|t| t.as_f64()).unwrap().to_bits(),
                (dur * 1e6).to_bits()
            );
        }
        let cs = events.iter().filter(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("C")
        }).count();
        prop_assert_eq!(cs, counters.len());
        // Counter samples export as running totals; the last one is the sum.
        if !counters.is_empty() {
            let want: u64 = counters.iter().map(|&(_, v)| v).sum();
            let last = events.iter().rev().find(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("C")
            }).unwrap();
            let got = last
                .get("args")
                .and_then(|a| a.get(WIRE_BYTES))
                .and_then(|x| x.as_f64())
                .unwrap();
            prop_assert_eq!(got as u64, want);
        }
    }
}
