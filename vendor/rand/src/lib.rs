//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment cannot reach crates.io, so this crate reimplements
//! exactly the API surface the workspace uses: [`rngs::StdRng`] seeded with
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool`. The generator is xoshiro256**
//! (public domain algorithm by Blackman & Vigna) seeded through SplitMix64
//! — deterministic across platforms, which is all the simulator needs
//! (reproducible workload data, not cryptographic quality).

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, 0.8-style.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, u128, i128);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform-in-range sampler. The single generic
/// [`SampleRange`] impl below routes through this trait, which is what
/// lets type inference connect a range literal's element type to
/// `gen_range`'s return type (mirroring real rand's `SampleUniform`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// 128-bit integers cannot route through the i128 intermediate above, so
// they get dedicated impls built on a full 128-bit draw.
fn next_u128<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
    ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
}

macro_rules! impl_uniform_int128 {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = hi.wrapping_sub(lo) as u128;
                let v = next_u128(rng) % span;
                lo.wrapping_add(v as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = hi.wrapping_sub(lo) as u128;
                if span == u128::MAX {
                    return next_u128(rng) as $t;
                }
                let v = next_u128(rng) % (span + 1);
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}
impl_uniform_int128!(u128, i128);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let unit: $t = Standard::sample(rng);
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let unit: $t = Standard::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in a range (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = Standard::sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed, as rand does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-100i32..100);
            assert!((-100..100).contains(&i));
            let u = rng.gen_range(1u64..=8);
            assert!((1..=8).contains(&u));
            let b: u8 = rng.gen();
            let _ = b;
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
