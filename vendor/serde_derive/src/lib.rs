//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the real serde
//! derive macros (and their `syn`/`quote` dependency tree) cannot be
//! fetched. Nothing in this workspace actually serializes through serde —
//! the derives exist so hardware-description types stay annotated for a
//! future online build — so the derive macros here expand to nothing.

use proc_macro::TokenStream;

/// `#[derive(Serialize)]` — expands to no items.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// `#[derive(Deserialize)]` — expands to no items.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
