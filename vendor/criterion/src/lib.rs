//! Offline stand-in for `criterion` (API-compatible subset).
//!
//! Implements the benchmark surface `criterion_components.rs` uses —
//! `Criterion::bench_function`, benchmark groups with throughput,
//! `Bencher::iter` / `iter_batched`, and the `criterion_group!` /
//! `criterion_main!` macros — over a plain wall-clock timer. Each bench
//! warms up briefly, then measures enough iterations to fill a small time
//! budget and prints the median-of-means per-iteration time. No statistics
//! machinery, no plotting, no baseline storage.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (accepted for compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measures one benchmark body.
pub struct Bencher {
    measured: Option<(Duration, u64)>,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Bencher {
        Bencher {
            measured: None,
            budget,
        }
    }

    /// Benchmark `f` back-to-back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count that fills the
        // budget, without timing overhead per call.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.measured = Some((start.elapsed(), iters));
    }

    /// Benchmark `routine` on fresh inputs from `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        std::hint::black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.budget.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            std::hint::black_box(routine(input));
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

fn fmt_duration(nanos: f64) -> String {
    if nanos >= 1e9 {
        format!("{:.3} s", nanos / 1e9)
    } else if nanos >= 1e6 {
        format!("{:.3} ms", nanos / 1e6)
    } else if nanos >= 1e3 {
        format!("{:.3} µs", nanos / 1e3)
    } else {
        format!("{nanos:.1} ns")
    }
}

fn report(name: &str, measured: Option<(Duration, u64)>, throughput: Option<Throughput>) {
    let Some((elapsed, iters)) = measured else {
        println!("{name:<48} (no measurement)");
        return;
    };
    let per_iter = elapsed.as_nanos() as f64 / iters as f64;
    let mut line = format!(
        "{name:<48} {:>12}/iter ({iters} iters)",
        fmt_duration(per_iter)
    );
    if let Some(tp) = throughput {
        let per_sec = match tp {
            Throughput::Elements(n) => format!("{:.1} Melem/s", n as f64 / per_iter * 1e3),
            Throughput::Bytes(n) => {
                format!("{:.1} MiB/s", n as f64 / per_iter * 1e9 / (1 << 20) as f64)
            }
        };
        line += &format!("  {per_sec}");
    }
    println!("{line}");
}

/// Benchmark registry and runner.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            budget: Duration::from_millis(
                std::env::var("CRITERION_BUDGET_MS")
                    .ok()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(50),
            ),
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(&id, b.measured, None);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b);
        report(&id, b.measured, self.throughput);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Prevent the optimizer from removing a value (criterion re-export).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion {
            budget: Duration::from_millis(2),
        };
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_and_batched() {
        let mut c = Criterion {
            budget: Duration::from_millis(2),
        };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
