//! Offline stand-in for `proptest` (API-compatible subset).
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of proptest the workspace's property tests actually use:
//! range/`any`/`Just`/`select`/`collection::vec` strategies, tuple
//! composition, `prop_map` / `prop_flat_map` / `prop_recursive`,
//! `prop_oneof!`, and the `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! macros. Cases are generated from a deterministic per-test RNG
//! (seeded from the test name and case index) so failures are reproducible.
//! There is **no shrinking** — a failing case reports its inputs via the
//! values' `Debug` form in the panic message context.

use std::fmt::Debug;
use std::rc::Rc;

pub mod test_runner {
    //! Deterministic case RNG and failure plumbing.

    pub use rand::rngs::StdRng as TestRngInner;
    use rand::SeedableRng;

    /// Per-case RNG: seeded from the test name and case index.
    #[derive(Debug, Clone)]
    pub struct TestRng(pub TestRngInner);

    impl TestRng {
        /// Deterministic RNG for `(test, case)`.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            let mut h = 0xcbf29ce484222325u64;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(TestRngInner::seed_from_u64(
                h ^ ((case as u64) << 32 | 0x9e37),
            ))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// A failed property (from `prop_assert!`-family macros).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

use test_runner::TestRng;

/// Runner configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

// ------------------------------------------------------------- strategy --

/// A generator of values of `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate, then use the value to pick a second strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `f` receives the previous depth level and
    /// returns the next. `depth` levels are stacked on top of `self`
    /// (the leaf). `desired_size`/`expected_branch_size` are accepted for
    /// API compatibility and ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut level = self.boxed();
        for _ in 0..depth {
            level = f(level).boxed();
        }
        level
    }

    /// Type-erase into a clonable, shareable strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// Type-erased strategy (clonable).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_flat_map` adapter.
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between alternatives (built by `prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Uniform union of the given strategies.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

// Integer and float ranges are strategies, as in proptest. One generic
// impl per range shape (routed through the rand stub's `SampleUniform`)
// keeps type inference able to link a range literal's element type to the
// generated value's type.
impl<T: rand::SampleUniform> Strategy for core::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

// Tuples of strategies generate tuples of values.
macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(S0 / 0);
impl_tuple_strategy!(S0 / 0, S1 / 1);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);
impl_tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5, S6 / 6);
impl_tuple_strategy!(
    S0 / 0,
    S1 / 1,
    S2 / 2,
    S3 / 3,
    S4 / 4,
    S5 / 5,
    S6 / 6,
    S7 / 7
);

// ------------------------------------------------------------ arbitrary --

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Default)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngCore;
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> AnyStrategy<$t> {
                AnyStrategy(std::marker::PhantomData)
            }
        }
    )*};
}
impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, u128, i128);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        use rand::RngCore;
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;
    fn arbitrary() -> AnyStrategy<bool> {
        AnyStrategy(std::marker::PhantomData)
    }
}

/// The canonical strategy for `A` (`any::<u64>()` etc.).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

// -------------------------------------------------------------- modules --

pub mod sample {
    //! Sampling from explicit collections.

    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed vector.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            use rand::Rng;
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }

    /// Pick one of `items` uniformly.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select over empty vec");
        Select(items)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Strategy for vectors with lengths drawn from a range.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `len ∈ size` elements of `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }
}

pub mod prop {
    //! The `prop::` path alias used by `proptest::prelude`.
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    //! Everything the property tests import.
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// --------------------------------------------------------------- macros --

/// Uniform choice between strategies with one common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert inside a `proptest!` body; failure aborts only the current case
/// with a descriptive message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!` for equality with `Debug` output of both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?}` == `{:?}`: {}",
            lhs,
            rhs,
            format!($($fmt)*)
        );
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(*lhs != *rhs, "assertion failed: `{:?}` != `{:?}`", lhs, rhs);
    }};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("property `{}` case {}/{} failed: {}",
                           stringify!($name), case + 1, config.cases, e);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in -5i64..5, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec(0u8..10, 1..5),
            pick in prop::sample::select(vec![2u32, 4, 8]),
            s in (0u8..3).prop_map(|b| b.to_string()),
            any_u in any::<u64>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|&b| b < 10));
            prop_assert!([2u32, 4, 8].contains(&pick));
            prop_assert!(s.len() == 1);
            let _ = any_u;
        }
    }

    #[test]
    fn oneof_and_recursive_generate() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = (-9i64..10).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 16, 2, |inner| {
            prop_oneof![
                inner.clone(),
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
            ]
        });
        let mut rng = crate::test_runner::TestRng::for_case("oneof_and_recursive", 0);
        let mut saw_node = false;
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3);
            saw_node |= matches!(t, Tree::Node(..));
        }
        assert!(saw_node, "recursion never produced an inner node");
    }

    #[test]
    fn deterministic_per_case() {
        let strat = prop::collection::vec(any::<u64>(), 2..6);
        let mut a = crate::test_runner::TestRng::for_case("det", 7);
        let mut b = crate::test_runner::TestRng::for_case("det", 7);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        let mut c = crate::test_runner::TestRng::for_case("det", 8);
        assert_ne!(strat.generate(&mut a), strat.generate(&mut c));
    }
}
