//! Offline stand-in for `serde`.
//!
//! Provides just enough surface for `use serde::{Deserialize, Serialize}`
//! and `#[derive(Serialize, Deserialize)]` to compile without network
//! access. The derive macros expand to nothing and the traits are empty
//! markers; no code in this workspace performs serde-based serialization
//! (the trace exporter writes JSON by hand — see `cucc-trace`).

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
