//! IR optimization passes: constant folding, algebraic simplification and
//! dead-branch elimination.
//!
//! The paper's pipeline lowers CUDA through LLVM, which canonicalizes the
//! IR before the Allgather-distributable analysis runs. This pass plays
//! that role here: it folds constant subexpressions and normalizes trivial
//! algebra so that the affine analysis sees `id` instead of
//! `id * 1 + 0`, and eliminates statically-false branches. Semantics are
//! preserved exactly (integer ops use the interpreter's wrapping rules; no
//! floating-point reassociation is performed).

use crate::expr::{BinOp, Expr, UnOp};
use crate::kernel::Kernel;
use crate::stmt::Stmt;

/// Optimize a kernel in place; returns the number of rewrites applied.
pub fn optimize(kernel: &mut Kernel) -> usize {
    let mut count = 0;
    let body = std::mem::take(&mut kernel.body);
    kernel.body = opt_block(body, &mut count);
    count
}

fn opt_block(stmts: Vec<Stmt>, count: &mut usize) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::Assign { var, value } => out.push(Stmt::Assign {
                var,
                value: opt_expr(value, count),
            }),
            Stmt::Store { mem, index, value } => out.push(Stmt::Store {
                mem,
                index: opt_expr(index, count),
                value: opt_expr(value, count),
            }),
            Stmt::AtomicRmw {
                op,
                mem,
                index,
                value,
            } => out.push(Stmt::AtomicRmw {
                op,
                mem,
                index: opt_expr(index, count),
                value: opt_expr(value, count),
            }),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let cond = opt_expr(cond, count);
                let then_body = opt_block(then_body, count);
                let else_body = opt_block(else_body, count);
                match const_truth(&cond) {
                    // Statically decided branch: splice the taken side.
                    Some(true) => {
                        *count += 1;
                        out.extend(then_body);
                    }
                    Some(false) => {
                        *count += 1;
                        out.extend(else_body);
                    }
                    None => {
                        if then_body.is_empty() && else_body.is_empty() {
                            // Side-effect-free condition: drop entirely
                            // (conditions cannot have side effects in this IR).
                            *count += 1;
                        } else {
                            out.push(Stmt::If {
                                cond,
                                then_body,
                                else_body,
                            });
                        }
                    }
                }
            }
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
            } => {
                let start = opt_expr(start, count);
                let end = opt_expr(end, count);
                let step = opt_expr(step, count);
                let body = opt_block(body, count);
                // Zero-trip loops still define the induction variable, so
                // keep the loop header (the interpreter assigns `var =
                // start` even when the body never runs) unless the body is
                // empty AND the variable is obviously unused — too fragile
                // to prove here, so we only drop statically-empty bodies
                // with constant zero-trip bounds.
                if let (Some(s0), Some(e0), Some(st)) =
                    (const_int(&start), const_int(&end), const_int(&step))
                {
                    let never_runs = (st > 0 && s0 >= e0) || (st < 0 && s0 <= e0);
                    if never_runs {
                        *count += 1;
                        // Keep the induction-variable definition.
                        out.push(Stmt::Assign {
                            var,
                            value: Expr::IntConst(s0),
                        });
                        continue;
                    }
                }
                out.push(Stmt::For {
                    var,
                    start,
                    end,
                    step,
                    body,
                });
            }
            other => out.push(other),
        }
    }
    out
}

fn const_int(e: &Expr) -> Option<i64> {
    match e {
        Expr::IntConst(v) => Some(*v),
        _ => None,
    }
}

fn const_truth(e: &Expr) -> Option<bool> {
    match e {
        Expr::IntConst(v) => Some(*v != 0),
        Expr::FloatConst(v) => Some(*v != 0.0),
        _ => None,
    }
}

/// Fold and simplify one expression tree (bottom-up).
pub fn opt_expr(e: Expr, count: &mut usize) -> Expr {
    match e {
        Expr::Unary { op, arg } => {
            let arg = opt_expr(*arg, count);
            match (&op, &arg) {
                (UnOp::Neg, Expr::IntConst(v)) => {
                    *count += 1;
                    Expr::IntConst(v.wrapping_neg())
                }
                (UnOp::Neg, Expr::FloatConst(v)) => {
                    *count += 1;
                    Expr::FloatConst(-v)
                }
                (UnOp::Not, Expr::IntConst(v)) => {
                    *count += 1;
                    Expr::IntConst(i64::from(*v == 0))
                }
                (UnOp::BitNot, Expr::IntConst(v)) => {
                    *count += 1;
                    Expr::IntConst(!v)
                }
                // --x == x
                (
                    UnOp::Neg,
                    Expr::Unary {
                        op: UnOp::Neg,
                        arg: inner,
                    },
                ) => {
                    *count += 1;
                    (**inner).clone()
                }
                _ => Expr::Unary {
                    op,
                    arg: Box::new(arg),
                },
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            let lhs = opt_expr(*lhs, count);
            let rhs = opt_expr(*rhs, count);
            simplify_binary(op, lhs, rhs, count)
        }
        Expr::Select {
            cond,
            then_value,
            else_value,
        } => {
            let cond = opt_expr(*cond, count);
            let then_value = opt_expr(*then_value, count);
            let else_value = opt_expr(*else_value, count);
            match const_truth(&cond) {
                Some(true) => {
                    *count += 1;
                    then_value
                }
                Some(false) => {
                    *count += 1;
                    else_value
                }
                None => Expr::Select {
                    cond: Box::new(cond),
                    then_value: Box::new(then_value),
                    else_value: Box::new(else_value),
                },
            }
        }
        Expr::Cast { ty, arg } => {
            let arg = opt_expr(*arg, count);
            if let Expr::IntConst(v) = arg {
                if ty.kind() == crate::types::ValueKind::Int {
                    *count += 1;
                    return Expr::IntConst(crate::types::Value::I64(v).convert_to(ty).as_i64());
                }
            }
            Expr::Cast {
                ty,
                arg: Box::new(arg),
            }
        }
        Expr::Load { mem, index } => Expr::Load {
            mem,
            index: Box::new(opt_expr(*index, count)),
        },
        Expr::Call { f, args } => Expr::Call {
            f,
            args: args.into_iter().map(|a| opt_expr(a, count)).collect(),
        },
        leaf => leaf,
    }
}

fn simplify_binary(op: BinOp, lhs: Expr, rhs: Expr, count: &mut usize) -> Expr {
    use BinOp::*;
    // Integer constant folding with the interpreter's exact wrapping
    // semantics (division by zero is left for the runtime to report).
    if let (Expr::IntConst(a), Expr::IntConst(b)) = (&lhs, &rhs) {
        let (a, b) = (*a, *b);
        let folded = match op {
            Add => Some(a.wrapping_add(b)),
            Sub => Some(a.wrapping_sub(b)),
            Mul => Some(a.wrapping_mul(b)),
            Div if b != 0 => Some(a.wrapping_div(b)),
            Rem if b != 0 => Some(a.wrapping_rem(b)),
            And => Some(a & b),
            Or => Some(a | b),
            Xor => Some(a ^ b),
            Shl => Some(a.wrapping_shl(b as u32 & 63)),
            Shr => Some(a.wrapping_shr(b as u32 & 63)),
            Lt => Some(i64::from(a < b)),
            Le => Some(i64::from(a <= b)),
            Gt => Some(i64::from(a > b)),
            Ge => Some(i64::from(a >= b)),
            Eq => Some(i64::from(a == b)),
            Ne => Some(i64::from(a != b)),
            LAnd => Some(i64::from(a != 0 && b != 0)),
            LOr => Some(i64::from(a != 0 || b != 0)),
            _ => None,
        };
        if let Some(v) = folded {
            *count += 1;
            return Expr::IntConst(v);
        }
    }
    // Div/mod recomposition: `(x / c)·c + x % c == x` holds for ALL
    // integers under C (truncated) division semantics — the pattern Triton
    // and hand-written kernels use to decompose a linear index into
    // (row, col), which would otherwise defeat the affine analysis.
    if op == Add {
        if let Some(x) = recompose_divmod(&lhs, &rhs).or_else(|| recompose_divmod(&rhs, &lhs)) {
            *count += 1;
            return x;
        }
    }
    // Algebraic identities — integer-safe only (no float reassociation;
    // x*0 → 0 is also float-unsafe because of NaN, so it is int-only).
    match (&op, &lhs, &rhs) {
        // x + 0, 0 + x, x - 0
        (Add, e, Expr::IntConst(0)) | (Sub, e, Expr::IntConst(0)) => {
            *count += 1;
            return e.clone();
        }
        (Add, Expr::IntConst(0), e) => {
            *count += 1;
            return e.clone();
        }
        // x * 1, 1 * x, x / 1
        (Mul, e, Expr::IntConst(1)) | (Div, e, Expr::IntConst(1)) => {
            *count += 1;
            return e.clone();
        }
        (Mul, Expr::IntConst(1), e) => {
            *count += 1;
            return e.clone();
        }
        // x * 0 / 0 * x (integer only: the operand may still have been
        // evaluated for side effects, but expressions are effect-free here).
        (Mul, _, Expr::IntConst(0)) | (Mul, Expr::IntConst(0), _)
            if expr_is_int(&lhs) && expr_is_int(&rhs) =>
        {
            *count += 1;
            return Expr::IntConst(0);
        }
        // x << 0, x >> 0
        (Shl, e, Expr::IntConst(0)) | (Shr, e, Expr::IntConst(0)) => {
            *count += 1;
            return e.clone();
        }
        // 1 && x → (x != 0); 0 && x → 0; symmetrics
        (LAnd, Expr::IntConst(c), _e) => {
            *count += 1;
            return if *c != 0 {
                truthy(rhs)
            } else {
                Expr::IntConst(0)
            };
        }
        (LOr, Expr::IntConst(c), _e) => {
            *count += 1;
            return if *c != 0 {
                Expr::IntConst(1)
            } else {
                truthy(rhs)
            };
        }
        _ => {}
    }
    Expr::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

/// Match `(x / c) * c` + `x % c` (either operand order inside the
/// multiplication) and return `x`.
fn recompose_divmod(mul_side: &Expr, rem_side: &Expr) -> Option<Expr> {
    let Expr::Binary {
        op: BinOp::Rem,
        lhs: rem_x,
        rhs: rem_c,
    } = rem_side
    else {
        return None;
    };
    let Expr::Binary {
        op: BinOp::Mul,
        lhs: mul_a,
        rhs: mul_b,
    } = mul_side
    else {
        return None;
    };
    // Identify which multiplication operand is the division.
    for (div, c) in [(mul_a, mul_b), (mul_b, mul_a)] {
        if let Expr::Binary {
            op: BinOp::Div,
            lhs: div_x,
            rhs: div_c,
        } = &**div
        {
            if **c == **div_c && **div_c == **rem_c && **div_x == **rem_x {
                return Some((**div_x).clone());
            }
        }
    }
    None
}

/// Normalize a value to 0/1 truthiness (used when collapsing `1 && x`).
fn truthy(e: Expr) -> Expr {
    match &e {
        Expr::Binary { op, .. } if op.is_comparison() || matches!(op, BinOp::LAnd | BinOp::LOr) => {
            e
        }
        Expr::IntConst(v) => Expr::IntConst(i64::from(*v != 0)),
        _ => Expr::bin(BinOp::Ne, e, Expr::IntConst(0)),
    }
}

/// Conservative integer-domain check for leaf-ish expressions (used to
/// justify `x·0 → 0`, which is invalid for floats because of NaN/Inf).
fn expr_is_int(e: &Expr) -> bool {
    match e {
        Expr::IntConst(_)
        | Expr::ThreadIdx(_)
        | Expr::BlockIdx(_)
        | Expr::BlockDim(_)
        | Expr::GridDim(_) => true,
        Expr::Unary { op: UnOp::Neg, arg } => expr_is_int(arg),
        Expr::Binary { op, lhs, rhs } => {
            op.is_comparison()
                || matches!(
                    op,
                    BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr | BinOp::Rem
                )
                || (matches!(op, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div)
                    && expr_is_int(lhs)
                    && expr_is_int(rhs))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::KernelBuilder;
    use crate::types::{Axis, Scalar};

    fn fold(e: Expr) -> Expr {
        let mut n = 0;
        opt_expr(e, &mut n)
    }

    #[test]
    fn constant_arithmetic_folds() {
        assert_eq!(fold(Expr::int(2).add(Expr::int(3))), Expr::IntConst(5));
        assert_eq!(fold(Expr::int(7).mul(Expr::int(-2))), Expr::IntConst(-14));
        assert_eq!(fold(Expr::int(7).rem(Expr::int(3))), Expr::IntConst(1));
        assert_eq!(fold(Expr::int(2).lt(Expr::int(3))), Expr::IntConst(1));
        // Division by zero is NOT folded — the runtime must report it.
        assert!(matches!(
            fold(Expr::int(1).div(Expr::int(0))),
            Expr::Binary { .. }
        ));
    }

    #[test]
    fn identities_simplify() {
        let tid = Expr::ThreadIdx(Axis::X);
        assert_eq!(fold(tid.clone().add(Expr::int(0))), tid);
        assert_eq!(fold(tid.clone().mul(Expr::int(1))), tid);
        assert_eq!(fold(Expr::int(0).add(tid.clone())), tid);
        assert_eq!(fold(tid.clone().mul(Expr::int(0))), Expr::IntConst(0));
        assert_eq!(fold(tid.clone().sub(Expr::int(0))), tid);
    }

    #[test]
    fn float_zero_mul_not_rewritten() {
        // 0.0 * x must stay (NaN propagation).
        let e = Expr::float(0.0).mul(Expr::FloatConst(f64::NAN));
        assert!(matches!(fold(e), Expr::Binary { .. }));
        // Param-typed operands are unknown-domain: keep.
        let p = Expr::Param(crate::kernel::ParamId(0));
        assert!(matches!(fold(p.mul(Expr::int(0))), Expr::Binary { .. }));
    }

    #[test]
    fn nested_folding_cascades() {
        // (2 + 3) * (4 - 4) = 0
        let e = Expr::int(2)
            .add(Expr::int(3))
            .mul(Expr::int(4).sub(Expr::int(4)));
        assert_eq!(fold(e), Expr::IntConst(0));
    }

    #[test]
    fn select_and_logic_collapse() {
        let tid = Expr::ThreadIdx(Axis::X);
        let sel = Expr::Select {
            cond: Box::new(Expr::int(1)),
            then_value: Box::new(tid.clone()),
            else_value: Box::new(Expr::int(9)),
        };
        assert_eq!(fold(sel), tid);
        assert_eq!(
            fold(Expr::int(0).land(Expr::ThreadIdx(Axis::X))),
            Expr::IntConst(0)
        );
        let t = fold(Expr::int(1).land(Expr::ThreadIdx(Axis::X).lt(Expr::int(3))));
        assert_eq!(t, Expr::ThreadIdx(Axis::X).lt(Expr::int(3)));
    }

    #[test]
    fn dead_branches_eliminated() {
        let mut b = KernelBuilder::new("k");
        let buf = b.buffer("out", Scalar::I32);
        b.if_then(Expr::int(1).lt(Expr::int(2)), |b| {
            b.store(buf, Expr::int(0), Expr::int(7));
        });
        b.if_then(Expr::int(5).lt(Expr::int(2)), |b| {
            b.store(buf, Expr::int(1), Expr::int(8));
        });
        let mut k = b.finish();
        let n = optimize(&mut k);
        assert!(n >= 2);
        // First if spliced to a bare store; second removed entirely.
        assert_eq!(k.body.len(), 1);
        assert!(matches!(&k.body[0], Stmt::Store { .. }));
    }

    #[test]
    fn zero_trip_loop_removed_but_var_defined() {
        let mut b = KernelBuilder::new("k");
        let buf = b.buffer("out", Scalar::I32);
        let i = b.for_("i", Expr::int(5), Expr::int(5), Expr::int(1), |_b, _i| {});
        b.store(buf, Expr::int(0), Expr::Var(i));
        let mut k = b.finish();
        optimize(&mut k);
        // Loop gone, but `i = 5` kept so the later use still validates.
        assert!(matches!(
            &k.body[0],
            Stmt::Assign {
                value: Expr::IntConst(5),
                ..
            }
        ));
        crate::validate::validate(&k).unwrap();
    }

    #[test]
    fn cast_of_int_constant_folds() {
        let e = Expr::cast(Scalar::U8, Expr::int(300));
        assert_eq!(fold(e), Expr::IntConst(44));
        // Float casts are not folded (value kind changes).
        let e = Expr::cast(Scalar::F32, Expr::int(3));
        assert!(matches!(fold(e), Expr::Cast { .. }));
    }

    #[test]
    fn divmod_recomposition() {
        use crate::types::Axis;
        let x = Expr::ThreadIdx(Axis::X).add(Expr::int(7));
        let c = Expr::int(32);
        // (x / 32) * 32 + x % 32  →  x
        let e = x
            .clone()
            .div(c.clone())
            .mul(c.clone())
            .add(x.clone().rem(c.clone()));
        assert_eq!(fold(e), x);
        // Commuted forms.
        let e = x
            .clone()
            .rem(c.clone())
            .add(c.clone().mul(x.clone().div(c.clone())));
        assert_eq!(fold(e), x);
        // Mismatched constants must NOT fold.
        let e = x
            .clone()
            .div(Expr::int(32))
            .mul(Expr::int(32))
            .add(x.clone().rem(Expr::int(16)));
        assert!(matches!(fold(e), Expr::Binary { .. }));
    }

    #[test]
    fn optimize_helps_affine_analysis() {
        // `id * 1 + 0` should analyze like `id` after optimization.
        let src = "__global__ void k(int* out) {
            int id = (blockIdx.x * blockDim.x + threadIdx.x) * 1 + 0;
            out[id * (2 - 1)] = 1;
        }";
        let mut k = crate::parse::parse_kernel(src).unwrap();
        let n = optimize(&mut k);
        assert!(n >= 3, "rewrites applied: {n}");
        let printed = crate::printer::print_kernel(&k);
        assert!(printed.contains("out[id] = 1;"), "{printed}");
    }
}
