//! # cucc-ir — kernel intermediate representation for CuCC
//!
//! This crate defines the CUDA-like kernel IR that the whole CuCC pipeline
//! operates on. It plays the role that LLVM/NVVM IR plays in the paper
//! ("Scaling GPU-to-CPU Migration for Efficient Distributed Execution on CPU
//! Clusters", PPoPP '26): the *Allgather distributable analysis* (in
//! `cucc-analysis`) inspects the index expressions and control flow of this
//! IR, and the executors (in `cucc-exec`) give it semantics.
//!
//! The IR models the CUDA execution hierarchy faithfully:
//!
//! * a **kernel** is launched over a 3-D grid of blocks, each block a 3-D
//!   arrangement of threads (see [`LaunchConfig`]);
//! * threads read the built-in index registers `threadIdx` / `blockIdx` /
//!   `blockDim` / `gridDim` ([`Expr::ThreadIdx`] etc.);
//! * memory is partitioned into **global** (visible to every block — the only
//!   space that needs cross-node communication after migration), **shared**
//!   (per block) and **local** (per thread) spaces ([`MemSpace`]);
//! * `__syncthreads()` barriers ([`Stmt::SyncThreads`]) synchronize the
//!   threads of one block.
//!
//! Kernels can be constructed three ways:
//!
//! 1. programmatically with [`build::KernelBuilder`];
//! 2. by parsing a mini-CUDA source dialect with [`parse::parse_kernel`];
//! 3. directly as data structures.
//!
//! A structural [`validate::validate`] pass checks the invariants the rest of
//! the pipeline relies on (def-before-use, barrier placement, type kinds).

pub mod build;
pub mod expr;
pub mod kernel;
pub mod launch;
pub mod optimize;
pub mod parse;
pub mod printer;
pub mod stmt;
pub mod types;
pub mod validate;

pub use build::KernelBuilder;
pub use expr::{BinOp, Expr, Intrinsic, UnOp};
pub use kernel::{ArrayDecl, Kernel, MemRef, Param, ParamId, VarId};
pub use launch::{Dim3, LaunchConfig};
pub use optimize::optimize;
pub use parse::{parse_kernel, parse_kernel_with_map, ParseError, SourceMap};
pub use stmt::{AtomicOp, Stmt};
pub use types::{Axis, MemSpace, Scalar, Value, ValueKind};
pub use validate::{validate, ValidateError};
