//! Structural validation of kernels.
//!
//! The executors and analyses rely on invariants that the IR data types do
//! not express. [`validate`] checks them all and must pass before a kernel is
//! executed or migrated:
//!
//! * all ids ([`VarId`], [`crate::kernel::ParamId`], shared/local indices) are in range,
//!   and `MemRef::Global` refers to buffer (not scalar) parameters;
//! * every local variable is assigned before use on every path;
//! * variables keep a consistent value domain (int vs float) across
//!   assignments (implicit `int → float` promotion is allowed inside
//!   expressions, as in C, but a variable cannot alternate domains);
//! * integer-only operators (`% & | ^ << >> ~`) receive integer operands;
//! * intrinsic calls have the right arity;
//! * `__syncthreads()` appears only in *uniform* control flow — at the top
//!   level or inside loops whose bounds are thread-invariant — mirroring
//!   CUDA's requirement that all threads of a block reach the same barrier;
//! * `return` is absent from kernels that contain barriers.

use crate::expr::{BinOp, Expr, UnOp};
use crate::kernel::{Kernel, MemRef, Param, VarId};
use crate::stmt::Stmt;
use crate::types::ValueKind;
use std::fmt;

/// A validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A `VarId` is out of range.
    BadVarId(VarId),
    /// A `ParamId` or array index is out of range, or a `MemRef::Global`
    /// names a scalar parameter.
    BadMemRef(String),
    /// A variable may be read before any assignment dominates the read.
    UseBeforeDef { var: VarId, name: String },
    /// A variable is assigned both integer and float values.
    KindConflict { var: VarId, name: String },
    /// An integer-only operator received a float operand.
    IntOnlyOp(String),
    /// Wrong number of intrinsic arguments.
    BadArity { intrinsic: &'static str, got: usize },
    /// `__syncthreads()` in divergent (thread-variant) control flow.
    DivergentBarrier,
    /// `return` used in a kernel that also uses barriers.
    ReturnWithBarrier,
    /// A `for` step expression is the constant zero.
    ZeroStep,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::BadVarId(v) => write!(f, "variable id {v} out of range"),
            ValidateError::BadMemRef(m) => write!(f, "invalid memory reference: {m}"),
            ValidateError::UseBeforeDef { name, .. } => {
                write!(f, "variable `{name}` may be used before assignment")
            }
            ValidateError::KindConflict { name, .. } => {
                write!(f, "variable `{name}` is assigned both int and float values")
            }
            ValidateError::IntOnlyOp(op) => {
                write!(f, "operator `{op}` requires integer operands")
            }
            ValidateError::BadArity { intrinsic, got } => {
                write!(f, "intrinsic `{intrinsic}` called with {got} arguments")
            }
            ValidateError::DivergentBarrier => {
                write!(f, "__syncthreads() inside thread-divergent control flow")
            }
            ValidateError::ReturnWithBarrier => {
                write!(f, "return statement in a kernel that uses __syncthreads()")
            }
            ValidateError::ZeroStep => write!(f, "for-loop step is zero"),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Validate a kernel. See the module docs for the list of checks.
pub fn validate(kernel: &Kernel) -> Result<(), ValidateError> {
    check_refs(kernel)?;
    check_def_before_use(kernel)?;
    let kinds = infer_var_kinds(kernel)?;
    check_expr_kinds(kernel, &kinds)?;
    check_barriers(kernel)?;
    Ok(())
}

fn check_mem_ref(kernel: &Kernel, mem: MemRef) -> Result<(), ValidateError> {
    match mem {
        MemRef::Global(p) => match kernel.params.get(p.index()) {
            Some(Param::Buffer { .. }) => Ok(()),
            Some(Param::Scalar { name, .. }) => Err(ValidateError::BadMemRef(format!(
                "global reference to scalar parameter `{name}`"
            ))),
            None => Err(ValidateError::BadMemRef(format!(
                "parameter {p} out of range"
            ))),
        },
        MemRef::Shared(i) if (i as usize) < kernel.shared.len() => Ok(()),
        MemRef::Local(i) if (i as usize) < kernel.locals.len() => Ok(()),
        other => Err(ValidateError::BadMemRef(format!("{other:?} out of range"))),
    }
}

fn check_expr_refs(kernel: &Kernel, nv: u32, e: &Expr) -> Result<(), ValidateError> {
    let mut result = Ok(());
    e.visit(&mut |node| {
        if result.is_err() {
            return;
        }
        match node {
            Expr::Var(v) if v.0 >= nv => result = Err(ValidateError::BadVarId(*v)),
            Expr::Param(p) if p.index() >= kernel.params.len() => {
                result = Err(ValidateError::BadMemRef(format!(
                    "parameter {p} out of range"
                )))
            }
            Expr::Param(p) if kernel.params[p.index()].is_buffer() => {
                result = Err(ValidateError::BadMemRef(format!(
                    "scalar read of buffer parameter `{}`",
                    kernel.params[p.index()].name()
                )));
            }
            Expr::Load { mem, .. } => {
                if let Err(e) = check_mem_ref(kernel, *mem) {
                    result = Err(e);
                }
            }
            Expr::Call { f, args } if args.len() != f.arity() => {
                result = Err(ValidateError::BadArity {
                    intrinsic: f.c_name(),
                    got: args.len(),
                });
            }
            _ => {}
        }
    });
    result
}

fn check_refs(kernel: &Kernel) -> Result<(), ValidateError> {
    let nv = kernel.num_vars() as u32;
    let mut result = Ok(());
    kernel.visit_stmts(&mut |s| {
        if result.is_err() {
            return;
        }
        s.visit_exprs(&mut |e| {
            if result.is_ok() {
                result = check_expr_refs(kernel, nv, e);
            }
        });
        if result.is_err() {
            return;
        }
        match s {
            Stmt::Assign { var, .. } if var.0 >= nv => {
                result = Err(ValidateError::BadVarId(*var));
            }
            Stmt::For { var, step, .. } => {
                if var.0 >= nv {
                    result = Err(ValidateError::BadVarId(*var));
                } else if matches!(step, Expr::IntConst(0)) {
                    result = Err(ValidateError::ZeroStep);
                }
            }
            Stmt::Store { mem, .. } | Stmt::AtomicRmw { mem, .. } => {
                if let Err(e) = check_mem_ref(kernel, *mem) {
                    result = Err(e);
                }
            }
            _ => {}
        }
    });
    result
}

fn check_def_before_use(kernel: &Kernel) -> Result<(), ValidateError> {
    fn uses_ok(e: &Expr, defined: &[bool], kernel: &Kernel) -> Result<(), ValidateError> {
        let mut err = Ok(());
        e.visit(&mut |node| {
            if let Expr::Var(v) = node {
                if err.is_ok() && !defined[v.index()] {
                    err = Err(ValidateError::UseBeforeDef {
                        var: *v,
                        name: kernel.var_names[v.index()].clone(),
                    });
                }
            }
        });
        err
    }

    fn walk(stmts: &[Stmt], defined: &mut [bool], kernel: &Kernel) -> Result<(), ValidateError> {
        for s in stmts {
            let mut err = Ok(());
            s.visit_exprs(&mut |e| {
                if err.is_ok() {
                    err = uses_ok(e, defined, kernel);
                }
            });
            err?;
            match s {
                Stmt::Assign { var, .. } => defined[var.index()] = true,
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    let mut d1 = defined.to_vec();
                    walk(then_body, &mut d1, kernel)?;
                    let mut d2 = defined.to_vec();
                    walk(else_body, &mut d2, kernel)?;
                    // A variable is definitely assigned only if both branches
                    // assign it.
                    for i in 0..defined.len() {
                        defined[i] = defined[i] || (d1[i] && d2[i]);
                    }
                }
                Stmt::For { var, body, .. } => {
                    let mut d = defined.to_vec();
                    d[var.index()] = true;
                    walk(body, &mut d, kernel)?;
                    // The body may execute zero times: definitions inside do
                    // not escape. The induction variable itself holds its
                    // final value after the loop (C scoping in our dialect),
                    // so it counts as defined.
                    defined[var.index()] = true;
                }
                _ => {}
            }
        }
        Ok(())
    }

    let mut defined = vec![false; kernel.num_vars()];
    walk(&kernel.body, &mut defined, kernel)
}

/// Infer each variable's value domain from its assignments.
///
/// Returns one [`ValueKind`] per variable; unassigned variables default to
/// `Int` (they can never be read, per def-before-use).
pub fn infer_var_kinds(kernel: &Kernel) -> Result<Vec<ValueKind>, ValidateError> {
    let mut kinds: Vec<Option<ValueKind>> = vec![None; kernel.num_vars()];
    // Iterate to a fixed point: expression kinds depend on variable kinds
    // which depend on assignment expression kinds. `None` is treated as Int
    // during inference; a variable flipping Int -> Float re-runs the pass, a
    // flip Float -> Int is a conflict.
    for _round in 0..=kernel.num_vars() {
        let mut changed = false;
        let mut conflict: Option<VarId> = None;
        kernel.visit_stmts(&mut |s| {
            let (var, value) = match s {
                Stmt::Assign { var, value } => (*var, value),
                Stmt::For { var, start, .. } => (*var, start),
                _ => return,
            };
            let k = expr_kind(value, &kinds, kernel);
            match kinds[var.index()] {
                None => {
                    kinds[var.index()] = Some(k);
                    changed = true;
                }
                Some(prev) if prev == k => {}
                Some(ValueKind::Int) if k == ValueKind::Float => {
                    kinds[var.index()] = Some(ValueKind::Float);
                    changed = true;
                }
                Some(ValueKind::Float) if k == ValueKind::Int => {
                    // Assigning an int expression to a float variable is C
                    // implicit conversion; keep Float.
                }
                Some(_) => conflict = Some(var),
            }
        });
        if let Some(v) = conflict {
            return Err(ValidateError::KindConflict {
                var: v,
                name: kernel.var_names[v.index()].clone(),
            });
        }
        if !changed {
            break;
        }
    }
    Ok(kinds
        .into_iter()
        .map(|k| k.unwrap_or(ValueKind::Int))
        .collect())
}

/// Compute the value domain of an expression given variable kinds.
pub fn expr_kind(e: &Expr, kinds: &[Option<ValueKind>], kernel: &Kernel) -> ValueKind {
    match e {
        Expr::IntConst(_)
        | Expr::ThreadIdx(_)
        | Expr::BlockIdx(_)
        | Expr::BlockDim(_)
        | Expr::GridDim(_) => ValueKind::Int,
        Expr::FloatConst(_) => ValueKind::Float,
        Expr::Param(p) => kernel.params[p.index()].scalar().kind(),
        Expr::Var(v) => kinds[v.index()].unwrap_or(ValueKind::Int),
        Expr::Load { mem, .. } => kernel.elem_type(*mem).kind(),
        Expr::Unary { op, arg } => match op {
            UnOp::Neg => expr_kind(arg, kinds, kernel),
            UnOp::Not | UnOp::BitNot => ValueKind::Int,
        },
        Expr::Binary { op, lhs, rhs } => {
            if op.is_comparison()
                || matches!(
                    op,
                    BinOp::LAnd
                        | BinOp::LOr
                        | BinOp::Rem
                        | BinOp::And
                        | BinOp::Or
                        | BinOp::Xor
                        | BinOp::Shl
                        | BinOp::Shr
                )
            {
                ValueKind::Int
            } else {
                // Arithmetic promotes to float if either side is float.
                match (expr_kind(lhs, kinds, kernel), expr_kind(rhs, kinds, kernel)) {
                    (ValueKind::Int, ValueKind::Int) => ValueKind::Int,
                    _ => ValueKind::Float,
                }
            }
        }
        Expr::Select {
            then_value,
            else_value,
            ..
        } => match (
            expr_kind(then_value, kinds, kernel),
            expr_kind(else_value, kinds, kernel),
        ) {
            (ValueKind::Int, ValueKind::Int) => ValueKind::Int,
            _ => ValueKind::Float,
        },
        Expr::Cast { ty, .. } => ty.kind(),
        Expr::Call { f, args } => {
            use crate::expr::Intrinsic::*;
            match f {
                Min | Max | Abs => {
                    if args
                        .iter()
                        .all(|a| expr_kind(a, kinds, kernel) == ValueKind::Int)
                    {
                        ValueKind::Int
                    } else {
                        ValueKind::Float
                    }
                }
                _ => ValueKind::Float,
            }
        }
    }
}

fn check_expr_kinds(kernel: &Kernel, kinds: &[ValueKind]) -> Result<(), ValidateError> {
    let opt: Vec<Option<ValueKind>> = kinds.iter().copied().map(Some).collect();
    fn walk(e: &Expr, opt: &[Option<ValueKind>], kernel: &Kernel) -> Result<(), ValidateError> {
        match e {
            Expr::Binary { op, lhs, rhs } => {
                walk(lhs, opt, kernel)?;
                walk(rhs, opt, kernel)?;
                if matches!(
                    op,
                    BinOp::Rem | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr
                ) {
                    let lk = expr_kind(lhs, opt, kernel);
                    let rk = expr_kind(rhs, opt, kernel);
                    if lk != ValueKind::Int || rk != ValueKind::Int {
                        return Err(ValidateError::IntOnlyOp(op.symbol().to_string()));
                    }
                }
                Ok(())
            }
            Expr::Unary {
                op: UnOp::BitNot,
                arg,
            } => {
                walk(arg, opt, kernel)?;
                if expr_kind(arg, opt, kernel) != ValueKind::Int {
                    return Err(ValidateError::IntOnlyOp("~".into()));
                }
                Ok(())
            }
            Expr::Unary { arg, .. } | Expr::Cast { arg, .. } => walk(arg, opt, kernel),
            Expr::Load { index, .. } => walk(index, opt, kernel),
            Expr::Select {
                cond,
                then_value,
                else_value,
            } => {
                walk(cond, opt, kernel)?;
                walk(then_value, opt, kernel)?;
                walk(else_value, opt, kernel)
            }
            Expr::Call { args, .. } => {
                for a in args {
                    walk(a, opt, kernel)?;
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }
    let mut result = Ok(());
    kernel.visit_stmts(&mut |s| {
        s.visit_exprs(&mut |e| {
            if result.is_ok() {
                result = walk(e, &opt, kernel);
            }
        });
    });
    result
}

/// Compute which variables are *thread-variant*: their value can differ
/// between threads of the same block.
///
/// A variable is thread-variant if any of its assignments reads `threadIdx`,
/// loads from memory, or reads another thread-variant variable. Loop
/// induction variables are thread-variant if the loop bounds are. This is a
/// conservative taint analysis shared with the Allgather-distributable
/// analysis (paper §6.2, condition 2).
pub fn thread_variant_vars(kernel: &Kernel) -> Vec<bool> {
    let n = kernel.num_vars();
    let mut variant = vec![false; n];
    let expr_variant = |e: &Expr, variant: &[bool]| -> bool {
        let mut tainted = false;
        e.visit(&mut |node| match node {
            Expr::ThreadIdx(_) | Expr::Load { .. } => tainted = true,
            Expr::Var(v) if variant[v.index()] => tainted = true,
            _ => {}
        });
        tainted
    };
    // Iterate to a fixed point (taint can flow through reassignments in
    // loops, e.g. `x = x + threadIdx.x`).
    loop {
        let mut changed = false;
        kernel.visit_stmts(&mut |s| match s {
            Stmt::Assign { var, value }
                if !variant[var.index()] && expr_variant(value, &variant) =>
            {
                variant[var.index()] = true;
                changed = true;
            }
            Stmt::For {
                var,
                start,
                end,
                step,
                ..
            } if !variant[var.index()]
                && (expr_variant(start, &variant)
                    || expr_variant(end, &variant)
                    || expr_variant(step, &variant)) =>
            {
                variant[var.index()] = true;
                changed = true;
            }
            _ => {}
        });
        // Control-dependence taint: assignments under thread-variant
        // conditions are thread-variant too.
        fn control(
            stmts: &[Stmt],
            under_variant: bool,
            variant: &mut Vec<bool>,
            changed: &mut bool,
            expr_variant: &impl Fn(&Expr, &[bool]) -> bool,
        ) {
            for s in stmts {
                match s {
                    Stmt::Assign { var, .. } if under_variant && !variant[var.index()] => {
                        variant[var.index()] = true;
                        *changed = true;
                    }
                    Stmt::If {
                        cond,
                        then_body,
                        else_body,
                    } => {
                        let v = under_variant || expr_variant(cond, variant);
                        control(then_body, v, variant, changed, expr_variant);
                        control(else_body, v, variant, changed, expr_variant);
                    }
                    Stmt::For {
                        var,
                        start,
                        end,
                        step,
                        body,
                    } => {
                        let bounds_variant = expr_variant(start, variant)
                            || expr_variant(end, variant)
                            || expr_variant(step, variant);
                        let v = under_variant || bounds_variant;
                        if v && !variant[var.index()] {
                            variant[var.index()] = true;
                            *changed = true;
                        }
                        control(body, v, variant, changed, expr_variant);
                    }
                    _ => {}
                }
            }
        }
        control(
            &kernel.body,
            false,
            &mut variant,
            &mut changed,
            &expr_variant,
        );
        if !changed {
            break;
        }
    }
    variant
}

fn check_barriers(kernel: &Kernel) -> Result<(), ValidateError> {
    if !kernel.has_barrier() {
        return Ok(());
    }
    // No `return` may coexist with barriers.
    let mut has_return = false;
    kernel.visit_stmts(&mut |s| {
        if matches!(s, Stmt::Return) {
            has_return = true;
        }
    });
    if has_return {
        return Err(ValidateError::ReturnWithBarrier);
    }

    let variant = thread_variant_vars(kernel);
    let expr_variant = |e: &Expr| -> bool {
        let mut tainted = false;
        e.visit(&mut |node| match node {
            Expr::ThreadIdx(_) | Expr::Load { .. } => tainted = true,
            Expr::Var(v) if variant[v.index()] => tainted = true,
            _ => {}
        });
        tainted
    };

    fn walk(
        stmts: &[Stmt],
        uniform: bool,
        expr_variant: &impl Fn(&Expr) -> bool,
    ) -> Result<(), ValidateError> {
        for s in stmts {
            match s {
                Stmt::SyncThreads if !uniform => return Err(ValidateError::DivergentBarrier),
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let u = uniform && !expr_variant(cond);
                    walk(then_body, u, expr_variant)?;
                    walk(else_body, u, expr_variant)?;
                }
                Stmt::For {
                    start,
                    end,
                    step,
                    body,
                    ..
                } => {
                    let u = uniform
                        && !expr_variant(start)
                        && !expr_variant(end)
                        && !expr_variant(step);
                    walk(body, u, expr_variant)?;
                }
                _ => {}
            }
        }
        Ok(())
    }
    walk(&kernel.body, true, &expr_variant)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::KernelBuilder;
    use crate::expr::Expr;
    use crate::types::{Axis, Scalar};

    #[test]
    fn valid_copy_kernel_passes() {
        let mut b = KernelBuilder::new("copy");
        let src = b.buffer("src", Scalar::F32);
        let dst = b.buffer("dst", Scalar::F32);
        let n = b.scalar("n", Scalar::I32);
        let id = b.let_("id", Expr::global_tid_x());
        b.if_then(Expr::Var(id).lt(n), |b| {
            b.store(dst, Expr::Var(id), Expr::load(src, Expr::Var(id)));
        });
        validate(&b.finish()).unwrap();
    }

    #[test]
    fn use_before_def_caught() {
        let mut b = KernelBuilder::new("k");
        let buf = b.buffer("out", Scalar::I32);
        let x = b.var("x");
        b.store(buf, Expr::int(0), Expr::Var(x));
        let err = validate(&b.finish()).unwrap_err();
        assert!(matches!(err, ValidateError::UseBeforeDef { .. }));
    }

    #[test]
    fn def_in_single_branch_not_definite() {
        let mut b = KernelBuilder::new("k");
        let buf = b.buffer("out", Scalar::I32);
        let x = b.var("x");
        b.if_then(Expr::ThreadIdx(Axis::X).lt(Expr::int(1)), |b| {
            b.assign(x, Expr::int(1));
        });
        b.store(buf, Expr::int(0), Expr::Var(x));
        assert!(matches!(
            validate(&b.finish()),
            Err(ValidateError::UseBeforeDef { .. })
        ));
    }

    #[test]
    fn def_in_both_branches_is_definite() {
        let mut b = KernelBuilder::new("k");
        let buf = b.buffer("out", Scalar::I32);
        let x = b.var("x");
        b.if_else(
            Expr::ThreadIdx(Axis::X).lt(Expr::int(1)),
            |b| b.assign(x, Expr::int(1)),
            |b| b.assign(x, Expr::int(2)),
        );
        b.store(buf, Expr::int(0), Expr::Var(x));
        validate(&b.finish()).unwrap();
    }

    #[test]
    fn kind_conflict_caught() {
        let mut b = KernelBuilder::new("k");
        let _buf = b.buffer("out", Scalar::I32);
        let x = b.var("x");
        b.assign(x, Expr::float(1.5));
        b.assign(x, Expr::int(1)); // ok: int assigned to float var
        let k = b.finish();
        validate(&k).unwrap();
        let kinds = infer_var_kinds(&k).unwrap();
        assert_eq!(kinds[0], ValueKind::Float);
    }

    #[test]
    fn bitwise_on_float_rejected() {
        let mut b = KernelBuilder::new("k");
        let buf = b.buffer("out", Scalar::I32);
        b.store(
            buf,
            Expr::int(0),
            Expr::bin(BinOp::And, Expr::float(1.0), Expr::int(3)),
        );
        assert!(matches!(
            validate(&b.finish()),
            Err(ValidateError::IntOnlyOp(_))
        ));
    }

    #[test]
    fn divergent_barrier_rejected() {
        let mut b = KernelBuilder::new("k");
        let _buf = b.buffer("out", Scalar::I32);
        b.if_then(Expr::ThreadIdx(Axis::X).lt(Expr::int(16)), |b| {
            b.sync_threads();
        });
        assert_eq!(validate(&b.finish()), Err(ValidateError::DivergentBarrier));
    }

    #[test]
    fn uniform_barrier_in_loop_ok() {
        let mut b = KernelBuilder::new("k");
        let sh = b.shared("tile", Scalar::F32, 32);
        let n = b.scalar("n", Scalar::I32);
        b.for_range("i", n, |b, _i| {
            b.store(sh, Expr::ThreadIdx(Axis::X), Expr::float(0.0));
            b.sync_threads();
        });
        validate(&b.finish()).unwrap();
    }

    #[test]
    fn return_with_barrier_rejected() {
        let mut b = KernelBuilder::new("k");
        let _sh = b.shared("tile", Scalar::F32, 32);
        b.if_then(Expr::ThreadIdx(Axis::X).lt(Expr::int(1)), |b| b.ret());
        b.sync_threads();
        assert_eq!(validate(&b.finish()), Err(ValidateError::ReturnWithBarrier));
    }

    #[test]
    fn thread_variance_propagates_through_vars() {
        let mut b = KernelBuilder::new("k");
        let _buf = b.buffer("out", Scalar::I32);
        let a = b.let_("a", Expr::ThreadIdx(Axis::X));
        let c = b.let_("c", Expr::Var(a).add(Expr::int(1)));
        let d = b.let_("d", Expr::BlockIdx(Axis::X));
        let k = b.finish();
        let v = thread_variant_vars(&k);
        assert!(v[a.index()]);
        assert!(v[c.index()]);
        assert!(!v[d.index()]);
    }

    #[test]
    fn control_dependent_taint() {
        // x assigned under a thread-variant condition is thread-variant even
        // though the assigned value is uniform.
        let mut b = KernelBuilder::new("k");
        let _buf = b.buffer("out", Scalar::I32);
        let x = b.var("x");
        b.assign(x, Expr::int(0));
        b.if_then(Expr::ThreadIdx(Axis::X).lt(Expr::int(1)), |b| {
            b.assign(x, Expr::int(5));
        });
        let k = b.finish();
        assert!(thread_variant_vars(&k)[x.index()]);
    }

    #[test]
    fn bad_memref_to_scalar_param() {
        let mut b = KernelBuilder::new("k");
        let n = b.scalar("n", Scalar::I32);
        let Expr::Param(pid) = n else { unreachable!() };
        let mut k = b.finish();
        k.body.push(Stmt::Store {
            mem: MemRef::Global(pid),
            index: Expr::int(0),
            value: Expr::int(0),
        });
        assert!(matches!(validate(&k), Err(ValidateError::BadMemRef(_))));
    }

    #[test]
    fn zero_step_rejected() {
        let mut b = KernelBuilder::new("k");
        let _buf = b.buffer("out", Scalar::I32);
        b.for_("i", Expr::int(0), Expr::int(4), Expr::int(0), |_b, _i| {});
        assert_eq!(validate(&b.finish()), Err(ValidateError::ZeroStep));
    }

    #[test]
    fn loop_var_defined_after_loop() {
        let mut b = KernelBuilder::new("k");
        let buf = b.buffer("out", Scalar::I32);
        let i = b.for_range("i", Expr::int(4), |_b, _i| {});
        b.store(buf, Expr::int(0), Expr::Var(i));
        validate(&b.finish()).unwrap();
    }
}
