//! Statement nodes of the kernel IR.

use crate::expr::Expr;
use crate::kernel::{MemRef, VarId};
use serde::{Deserialize, Serialize};

/// Atomic read-modify-write operations on memory.
///
/// Kernels that update global memory with atomics have *overlapping write
/// intervals* in the paper's terminology, which makes them not Allgather
/// distributable (they land in the "overlap" bar of Figure 7). They still
/// execute correctly via the replicated fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AtomicOp {
    /// `atomicAdd`
    Add,
    /// `atomicMin`
    Min,
    /// `atomicMax`
    Max,
}

impl AtomicOp {
    /// CUDA spelling of the atomic function.
    pub const fn c_name(self) -> &'static str {
        match self {
            AtomicOp::Add => "atomicAdd",
            AtomicOp::Min => "atomicMin",
            AtomicOp::Max => "atomicMax",
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `var = value;` — also used for declarations (`int var = value;`);
    /// the validator enforces assignment-before-use.
    Assign { var: VarId, value: Expr },
    /// `mem[index] = value;`
    Store {
        mem: MemRef,
        index: Expr,
        value: Expr,
    },
    /// `atomicOp(&mem[index], value);`
    AtomicRmw {
        op: AtomicOp,
        mem: MemRef,
        index: Expr,
        value: Expr,
    },
    /// `if (cond) { … } else { … }`
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    /// `for (var = start; var < end; var += step) { … }`
    ///
    /// `step` must evaluate to a nonzero integer; a negative step flips the
    /// loop condition to `var > end` (C-style down-counting loops).
    For {
        var: VarId,
        start: Expr,
        end: Expr,
        step: Expr,
        body: Vec<Stmt>,
    },
    /// `__syncthreads();` — block-wide barrier. The validator restricts
    /// barriers to uniform control flow (top level or inside uniform loops),
    /// matching the CUDA requirement that all threads of a block reach the
    /// same barrier.
    SyncThreads,
    /// `return;` — terminates the calling thread. Disallowed in kernels with
    /// barriers (a returned thread could never reach the barrier).
    Return,
}

impl Stmt {
    /// `if (cond) { then_body }` without an else branch.
    pub fn if_then(cond: Expr, then_body: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then_body,
            else_body: Vec::new(),
        }
    }

    /// Canonical counting loop `for (var = 0; var < end; var += 1)`.
    pub fn for_range(var: VarId, end: Expr, body: Vec<Stmt>) -> Stmt {
        Stmt::For {
            var,
            start: Expr::IntConst(0),
            end,
            step: Expr::IntConst(1),
            body,
        }
    }

    /// Visit every expression appearing directly in this statement
    /// (not recursing into nested statements).
    pub fn visit_exprs<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        match self {
            Stmt::Assign { value, .. } => f(value),
            Stmt::Store { index, value, .. } => {
                f(index);
                f(value);
            }
            Stmt::AtomicRmw { index, value, .. } => {
                f(index);
                f(value);
            }
            Stmt::If { cond, .. } => f(cond),
            Stmt::For {
                start, end, step, ..
            } => {
                f(start);
                f(end);
                f(step);
            }
            Stmt::SyncThreads | Stmt::Return => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Axis;

    #[test]
    fn if_then_has_empty_else() {
        let s = Stmt::if_then(Expr::int(1), vec![Stmt::Return]);
        match s {
            Stmt::If { else_body, .. } => assert!(else_body.is_empty()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn for_range_shape() {
        let s = Stmt::for_range(VarId(0), Expr::int(8), vec![]);
        match s {
            Stmt::For {
                start, end, step, ..
            } => {
                assert_eq!(start, Expr::IntConst(0));
                assert_eq!(end, Expr::IntConst(8));
                assert_eq!(step, Expr::IntConst(1));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn visit_exprs_covers_store() {
        let s = Stmt::Store {
            mem: MemRef::Shared(0),
            index: Expr::ThreadIdx(Axis::X),
            value: Expr::int(7),
        };
        let mut n = 0;
        s.visit_exprs(&mut |_| n += 1);
        assert_eq!(n, 2);
    }
}
