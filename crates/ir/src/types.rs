//! Scalar element types, runtime values and memory spaces.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Element type of a memory buffer or the target of a cast.
///
/// Matches the C scalar types the mini-CUDA front-end accepts (`char`,
/// `unsigned char`, `int`, `unsigned int`, `long`, `float`, `double`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scalar {
    /// 8-bit unsigned integer (`unsigned char`).
    U8,
    /// 8-bit signed integer (`char`).
    I8,
    /// 32-bit signed integer (`int`).
    I32,
    /// 32-bit unsigned integer (`unsigned int`).
    U32,
    /// 64-bit signed integer (`long`).
    I64,
    /// 32-bit IEEE-754 float (`float`).
    F32,
    /// 64-bit IEEE-754 float (`double`).
    F64,
}

impl Scalar {
    /// Size of one element in bytes.
    #[inline]
    pub const fn size(self) -> usize {
        match self {
            Scalar::U8 | Scalar::I8 => 1,
            Scalar::I32 | Scalar::U32 | Scalar::F32 => 4,
            Scalar::I64 | Scalar::F64 => 8,
        }
    }

    /// Whether values of this type are represented as integers at runtime.
    #[inline]
    pub const fn kind(self) -> ValueKind {
        match self {
            Scalar::U8 | Scalar::I8 | Scalar::I32 | Scalar::U32 | Scalar::I64 => ValueKind::Int,
            Scalar::F32 | Scalar::F64 => ValueKind::Float,
        }
    }

    /// The C-dialect spelling used by the printer and parser.
    pub const fn c_name(self) -> &'static str {
        match self {
            Scalar::U8 => "uchar",
            Scalar::I8 => "char",
            Scalar::I32 => "int",
            Scalar::U32 => "uint",
            Scalar::I64 => "long",
            Scalar::F32 => "float",
            Scalar::F64 => "double",
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.c_name())
    }
}

/// Whether a runtime value is carried in the integer or floating domain.
///
/// The IR is dynamically typed at only this coarse granularity: every
/// expression evaluates to either an `i64` or an `f64`, and narrowing to the
/// destination [`Scalar`] happens at stores and explicit casts, mirroring C
/// integer conversion semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueKind {
    /// Integer domain (`i64` carrier).
    Int,
    /// Floating-point domain (`f64` carrier).
    Float,
}

/// A runtime value flowing through the interpreter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer value (all integer widths are carried as `i64`).
    I64(i64),
    /// Floating value (both `f32` and `f64` are carried as `f64`; `f32`
    /// rounding is applied at stores and casts).
    F64(f64),
}

impl Value {
    /// The domain this value lives in.
    #[inline]
    pub fn kind(self) -> ValueKind {
        match self {
            Value::I64(_) => ValueKind::Int,
            Value::F64(_) => ValueKind::Float,
        }
    }

    /// Interpret as an integer, converting (truncating) floats like a C cast.
    #[inline]
    pub fn as_i64(self) -> i64 {
        match self {
            Value::I64(v) => v,
            Value::F64(v) => v as i64,
        }
    }

    /// Interpret as a float, converting integers exactly where possible.
    #[inline]
    pub fn as_f64(self) -> f64 {
        match self {
            Value::I64(v) => v as f64,
            Value::F64(v) => v,
        }
    }

    /// True iff nonzero (C truthiness).
    #[inline]
    pub fn is_true(self) -> bool {
        match self {
            Value::I64(v) => v != 0,
            Value::F64(v) => v != 0.0,
        }
    }

    /// Convert to the representation a buffer of element type `ty` stores,
    /// then back to the runtime carrier. This applies C narrowing semantics
    /// (wrapping integer truncation, `f64`→`f32` rounding).
    pub fn convert_to(self, ty: Scalar) -> Value {
        match ty {
            Scalar::U8 => Value::I64((self.as_i64() as u8) as i64),
            Scalar::I8 => Value::I64((self.as_i64() as i8) as i64),
            Scalar::I32 => Value::I64((self.as_i64() as i32) as i64),
            Scalar::U32 => Value::I64((self.as_i64() as u32) as i64),
            Scalar::I64 => Value::I64(self.as_i64()),
            Scalar::F32 => Value::F64((self.as_f64() as f32) as f64),
            Scalar::F64 => Value::F64(self.as_f64()),
        }
    }
}

/// One axis of the 3-D thread/block index space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Axis {
    /// `.x`
    X,
    /// `.y`
    Y,
    /// `.z`
    Z,
}

impl Axis {
    /// All three axes, in `x`, `y`, `z` order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// The suffix used in source syntax (`x`/`y`/`z`).
    pub const fn name(self) -> &'static str {
        match self {
            Axis::X => "x",
            Axis::Y => "y",
            Axis::Z => "z",
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// CUDA memory spaces.
///
/// Only [`MemSpace::Global`] requires cross-node communication after
/// migration to a CPU cluster: shared and local memory are private to a
/// block/thread, and CuCC schedules every thread of a block onto the same
/// node (paper §2.2, footnote 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemSpace {
    /// Device global memory, visible to all blocks.
    Global,
    /// Per-block scratchpad (`__shared__`).
    Shared,
    /// Per-thread private array.
    Local,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MemSpace::Global => "global",
            MemSpace::Shared => "shared",
            MemSpace::Local => "local",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(Scalar::U8.size(), 1);
        assert_eq!(Scalar::I8.size(), 1);
        assert_eq!(Scalar::I32.size(), 4);
        assert_eq!(Scalar::U32.size(), 4);
        assert_eq!(Scalar::F32.size(), 4);
        assert_eq!(Scalar::I64.size(), 8);
        assert_eq!(Scalar::F64.size(), 8);
    }

    #[test]
    fn scalar_kinds() {
        assert_eq!(Scalar::F32.kind(), ValueKind::Float);
        assert_eq!(Scalar::F64.kind(), ValueKind::Float);
        assert_eq!(Scalar::I32.kind(), ValueKind::Int);
        assert_eq!(Scalar::U8.kind(), ValueKind::Int);
    }

    #[test]
    fn value_conversion_wraps_like_c() {
        assert_eq!(Value::I64(300).convert_to(Scalar::U8), Value::I64(44));
        assert_eq!(Value::I64(-1).convert_to(Scalar::U8), Value::I64(255));
        assert_eq!(
            Value::I64(-1).convert_to(Scalar::U32),
            Value::I64(u32::MAX as i64)
        );
        assert_eq!(
            Value::I64(i64::from(i32::MAX) + 1).convert_to(Scalar::I32),
            Value::I64(i64::from(i32::MIN))
        );
    }

    #[test]
    fn value_float_to_int_truncates() {
        assert_eq!(Value::F64(3.9).as_i64(), 3);
        assert_eq!(Value::F64(-3.9).as_i64(), -3);
    }

    #[test]
    fn f32_rounding_applied() {
        let v = Value::F64(0.1).convert_to(Scalar::F32);
        assert_eq!(v, Value::F64((0.1f32) as f64));
        // and F64 keeps full precision
        assert_eq!(Value::F64(0.1).convert_to(Scalar::F64), Value::F64(0.1));
    }

    #[test]
    fn truthiness() {
        assert!(Value::I64(2).is_true());
        assert!(!Value::I64(0).is_true());
        assert!(Value::F64(-0.5).is_true());
        assert!(!Value::F64(0.0).is_true());
    }
}
