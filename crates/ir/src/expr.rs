//! Expression nodes of the kernel IR.

use crate::kernel::{MemRef, ParamId, VarId};
use crate::types::{Axis, Scalar};
use serde::{Deserialize, Serialize};

/// Binary operators.
///
/// Arithmetic operators are polymorphic over the integer/float domains
/// (operands must agree); comparisons yield integer `0`/`1`; bitwise and
/// shift operators are integer-only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    /// Remainder (`%`); integer-only in the front-end, C semantics.
    Rem,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// Bitwise and (`&`).
    And,
    /// Bitwise or (`|`).
    Or,
    /// Bitwise xor (`^`).
    Xor,
    /// Left shift (`<<`).
    Shl,
    /// Arithmetic right shift (`>>`).
    Shr,
    /// Short-circuit logical and (`&&`) — both sides evaluated eagerly in the
    /// IR (kernels are side-effect-free in conditions by validation).
    LAnd,
    /// Logical or (`||`).
    LOr,
}

impl BinOp {
    /// Operator spelling in the mini-CUDA dialect.
    pub const fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::LAnd => "&&",
            BinOp::LOr => "||",
        }
    }

    /// True for operators returning a boolean (0/1) integer.
    pub const fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!`), integer 0/1 result.
    Not,
    /// Bitwise not (`~`), integer-only.
    BitNot,
}

impl UnOp {
    /// Operator spelling.
    pub const fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
        }
    }
}

/// Math intrinsics callable from kernels.
///
/// These correspond to the CUDA device functions the benchmark kernels use
/// (`expf`, `sqrtf`, …). All evaluate in `f64` and are narrowed at stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Intrinsic {
    Exp,
    Log,
    Sqrt,
    Rsqrt,
    Sin,
    Cos,
    Tanh,
    Erf,
    Fabs,
    Floor,
    Ceil,
    Pow,
    Fmin,
    Fmax,
    Min,
    Max,
    Abs,
}

impl Intrinsic {
    /// Number of arguments the intrinsic takes.
    pub const fn arity(self) -> usize {
        match self {
            Intrinsic::Pow
            | Intrinsic::Fmin
            | Intrinsic::Fmax
            | Intrinsic::Min
            | Intrinsic::Max => 2,
            _ => 1,
        }
    }

    /// Source spelling (the `f`-suffixed CUDA names).
    pub const fn c_name(self) -> &'static str {
        match self {
            Intrinsic::Exp => "expf",
            Intrinsic::Log => "logf",
            Intrinsic::Sqrt => "sqrtf",
            Intrinsic::Rsqrt => "rsqrtf",
            Intrinsic::Sin => "sinf",
            Intrinsic::Cos => "cosf",
            Intrinsic::Tanh => "tanhf",
            Intrinsic::Erf => "erff",
            Intrinsic::Fabs => "fabsf",
            Intrinsic::Floor => "floorf",
            Intrinsic::Ceil => "ceilf",
            Intrinsic::Pow => "powf",
            Intrinsic::Fmin => "fminf",
            Intrinsic::Fmax => "fmaxf",
            Intrinsic::Min => "min",
            Intrinsic::Max => "max",
            Intrinsic::Abs => "abs",
        }
    }

    /// Look an intrinsic up by source spelling.
    pub fn from_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "expf" | "exp" => Intrinsic::Exp,
            "logf" | "log" => Intrinsic::Log,
            "sqrtf" | "sqrt" => Intrinsic::Sqrt,
            "rsqrtf" | "rsqrt" => Intrinsic::Rsqrt,
            "sinf" | "sin" => Intrinsic::Sin,
            "cosf" | "cos" => Intrinsic::Cos,
            "tanhf" | "tanh" => Intrinsic::Tanh,
            "erff" | "erf" => Intrinsic::Erf,
            "fabsf" | "fabs" => Intrinsic::Fabs,
            "floorf" | "floor" => Intrinsic::Floor,
            "ceilf" | "ceil" => Intrinsic::Ceil,
            "powf" | "pow" => Intrinsic::Pow,
            "fminf" | "fmin" => Intrinsic::Fmin,
            "fmaxf" | "fmax" => Intrinsic::Fmax,
            "min" => Intrinsic::Min,
            "max" => Intrinsic::Max,
            "abs" => Intrinsic::Abs,
            _ => return None,
        })
    }
}

/// An expression tree node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    IntConst(i64),
    /// Floating literal.
    FloatConst(f64),
    /// `threadIdx.<axis>`
    ThreadIdx(Axis),
    /// `blockIdx.<axis>`
    BlockIdx(Axis),
    /// `blockDim.<axis>`
    BlockDim(Axis),
    /// `gridDim.<axis>`
    GridDim(Axis),
    /// A scalar kernel parameter.
    Param(ParamId),
    /// A kernel-local scalar variable.
    Var(VarId),
    /// A load `mem[index]`.
    Load { mem: MemRef, index: Box<Expr> },
    /// Unary operation.
    Unary { op: UnOp, arg: Box<Expr> },
    /// Binary operation.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// C ternary `cond ? a : b`.
    Select {
        cond: Box<Expr>,
        then_value: Box<Expr>,
        else_value: Box<Expr>,
    },
    /// Explicit cast `(type)expr`, applying C conversion semantics.
    Cast { ty: Scalar, arg: Box<Expr> },
    /// Math intrinsic call.
    Call { f: Intrinsic, args: Vec<Expr> },
}

// The builder methods `add`/`sub`/`mul`/`div`/`rem` intentionally shadow the
// `std::ops` trait names: they build IR nodes rather than compute values, and
// operator overloading would hide that distinction at call sites.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Integer literal helper.
    #[inline]
    pub fn int(v: i64) -> Expr {
        Expr::IntConst(v)
    }

    /// Float literal helper.
    #[inline]
    pub fn float(v: f64) -> Expr {
        Expr::FloatConst(v)
    }

    /// `self + rhs`
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }
    /// `self - rhs`
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }
    /// `self * rhs`
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, rhs)
    }
    /// `self / rhs`
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Div, self, rhs)
    }
    /// `self % rhs`
    pub fn rem(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Rem, self, rhs)
    }
    /// `self < rhs`
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Lt, self, rhs)
    }
    /// `self <= rhs`
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Le, self, rhs)
    }
    /// `self > rhs`
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Gt, self, rhs)
    }
    /// `self >= rhs`
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Ge, self, rhs)
    }
    /// `self == rhs`
    pub fn eq_(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Eq, self, rhs)
    }
    /// `self != rhs`
    pub fn ne_(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Ne, self, rhs)
    }
    /// `self && rhs`
    pub fn land(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::LAnd, self, rhs)
    }

    /// Generic binary node constructor.
    #[inline]
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Load helper.
    pub fn load(mem: MemRef, index: Expr) -> Expr {
        Expr::Load {
            mem,
            index: Box::new(index),
        }
    }

    /// Cast helper.
    pub fn cast(ty: Scalar, arg: Expr) -> Expr {
        Expr::Cast {
            ty,
            arg: Box::new(arg),
        }
    }

    /// `blockIdx.x * blockDim.x + threadIdx.x` — the canonical 1-D global
    /// thread id used throughout the paper's examples.
    pub fn global_tid_x() -> Expr {
        Expr::BlockIdx(Axis::X)
            .mul(Expr::BlockDim(Axis::X))
            .add(Expr::ThreadIdx(Axis::X))
    }

    /// Visit every node of the expression tree (pre-order).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Load { index, .. } => index.visit(f),
            Expr::Unary { arg, .. } => arg.visit(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.visit(f);
                rhs.visit(f);
            }
            Expr::Select {
                cond,
                then_value,
                else_value,
            } => {
                cond.visit(f);
                then_value.visit(f);
                else_value.visit(f);
            }
            Expr::Cast { arg, .. } => arg.visit(f),
            Expr::Call { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            _ => {}
        }
    }

    /// True if the expression mentions any `threadIdx` register.
    pub fn uses_thread_idx(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::ThreadIdx(_)) {
                found = true;
            }
        });
        found
    }

    /// Number of nodes in the expression tree. The bytecode lowering uses
    /// this to pre-size its instruction buffer (each node lowers to at most
    /// a few instructions).
    pub fn node_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// True if the expression contains any memory load.
    pub fn has_load(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, Expr::Load { .. }) {
                found = true;
            }
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_helpers_produce_expected_tree() {
        let e = Expr::int(2).add(Expr::int(3));
        match e {
            Expr::Binary {
                op: BinOp::Add,
                lhs,
                rhs,
            } => {
                assert_eq!(*lhs, Expr::IntConst(2));
                assert_eq!(*rhs, Expr::IntConst(3));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn global_tid_uses_thread_idx() {
        assert!(Expr::global_tid_x().uses_thread_idx());
        assert!(!Expr::BlockIdx(Axis::X).uses_thread_idx());
    }

    #[test]
    fn visit_counts_nodes() {
        let e = Expr::global_tid_x(); // bx*bd + tx : 5 nodes
        let mut n = 0;
        e.visit(&mut |_| n += 1);
        assert_eq!(n, 5);
    }

    #[test]
    fn node_count_matches_visit() {
        assert_eq!(Expr::global_tid_x().node_count(), 5);
        assert_eq!(Expr::int(1).node_count(), 1);
    }

    #[test]
    fn intrinsic_roundtrip_names() {
        for f in [
            Intrinsic::Exp,
            Intrinsic::Log,
            Intrinsic::Sqrt,
            Intrinsic::Pow,
            Intrinsic::Min,
            Intrinsic::Max,
            Intrinsic::Erf,
            Intrinsic::Tanh,
        ] {
            assert_eq!(Intrinsic::from_name(f.c_name()), Some(f));
        }
        assert_eq!(Intrinsic::from_name("frobnicate"), None);
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::LAnd.is_comparison());
    }
}
