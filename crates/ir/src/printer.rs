//! Pretty-printer: kernels back to the mini-CUDA source dialect.
//!
//! The output is re-parseable by [`crate::parse::parse_kernel`]; the
//! round-trip `parse(print(k)) == k` (modulo variable-name uniquification)
//! is checked by tests in the parser module.

use crate::expr::{BinOp, Expr};
use crate::kernel::{Kernel, MemRef, Param};
use crate::stmt::Stmt;
use crate::types::{Scalar, ValueKind};
use crate::validate::infer_var_kinds;
use std::fmt::Write;

/// Render a kernel as mini-CUDA source.
pub fn print_kernel(kernel: &Kernel) -> String {
    Printer::new(kernel).print()
}

struct Printer<'k> {
    kernel: &'k Kernel,
    /// Uniquified variable names (source names may repeat).
    var_names: Vec<String>,
    out: String,
    indent: usize,
}

impl<'k> Printer<'k> {
    fn new(kernel: &'k Kernel) -> Printer<'k> {
        let mut seen = std::collections::HashMap::new();
        // Parameter and array names are reserved so a variable never shadows
        // them in the printed source.
        for p in &kernel.params {
            seen.insert(p.name().to_string(), 0u32);
        }
        for a in kernel.shared.iter().chain(kernel.locals.iter()) {
            seen.insert(a.name.clone(), 0u32);
        }
        let var_names = kernel
            .var_names
            .iter()
            .map(|n| {
                let base = if n.is_empty() { "v" } else { n.as_str() };
                match seen.get_mut(base) {
                    None => {
                        seen.insert(base.to_string(), 0);
                        base.to_string()
                    }
                    Some(count) => {
                        *count += 1;
                        let mut fresh = format!("{base}_{count}");
                        while seen.contains_key(&fresh) {
                            *seen.get_mut(base).unwrap() += 1;
                            fresh = format!("{base}_{}", seen[base]);
                        }
                        seen.insert(fresh.clone(), 0);
                        fresh
                    }
                }
            })
            .collect();
        Printer {
            kernel,
            var_names,
            out: String::new(),
            indent: 0,
        }
    }

    fn print(mut self) -> String {
        let k = self.kernel;
        write!(self.out, "__global__ void {}(", k.name).unwrap();
        for (i, p) in k.params.iter().enumerate() {
            if i > 0 {
                self.out.push_str(", ");
            }
            match p {
                Param::Buffer { name, elem } => {
                    write!(self.out, "{}* {}", elem.c_name(), name).unwrap()
                }
                Param::Scalar { name, ty } => write!(self.out, "{} {}", ty.c_name(), name).unwrap(),
            }
        }
        self.out.push_str(") {\n");
        self.indent = 1;
        for a in &k.shared {
            self.line(&format!(
                "__shared__ {} {}[{}];",
                a.elem.c_name(),
                a.name,
                a.len
            ));
        }
        for a in &k.locals {
            self.line(&format!("{} {}[{}];", a.elem.c_name(), a.name, a.len));
        }
        // Hoisted scalar declarations: every local variable is declared up
        // front so assignments inside nested blocks stay plain assignments.
        let kinds = infer_var_kinds(k).unwrap_or_else(|_| vec![ValueKind::Int; k.num_vars()]);
        for (i, name) in self.var_names.clone().iter().enumerate() {
            let ty = match kinds[i] {
                ValueKind::Int => "long",
                ValueKind::Float => "double",
            };
            self.line(&format!("{ty} {name};"));
        }
        let body = &k.body;
        self.stmts(body);
        self.out.push_str("}\n");
        self.out
    }

    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Assign { var, value } => {
                let line = format!("{} = {};", self.var_names[var.index()], self.expr(value, 0));
                self.line(&line);
            }
            Stmt::Store { mem, index, value } => {
                let line = format!(
                    "{}[{}] = {};",
                    self.mem_name(*mem),
                    self.expr(index, 0),
                    self.expr(value, 0)
                );
                self.line(&line);
            }
            Stmt::AtomicRmw {
                op,
                mem,
                index,
                value,
            } => {
                let line = format!(
                    "{}(&{}[{}], {});",
                    op.c_name(),
                    self.mem_name(*mem),
                    self.expr(index, 0),
                    self.expr(value, 0)
                );
                self.line(&line);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let line = format!("if ({}) {{", self.expr(cond, 0));
                self.line(&line);
                self.indent += 1;
                self.stmts(then_body);
                self.indent -= 1;
                if else_body.is_empty() {
                    self.line("}");
                } else {
                    self.line("} else {");
                    self.indent += 1;
                    self.stmts(else_body);
                    self.indent -= 1;
                    self.line("}");
                }
            }
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
            } => {
                let v = self.var_names[var.index()].clone();
                let line = format!(
                    "for ({v} = {}; {v} < {}; {v} += {}) {{",
                    self.expr(start, 0),
                    self.expr(end, 0),
                    self.expr(step, 0)
                );
                self.line(&line);
                self.indent += 1;
                self.stmts(body);
                self.indent -= 1;
                self.line("}");
            }
            Stmt::SyncThreads => self.line("__syncthreads();"),
            Stmt::Return => self.line("return;"),
        }
    }

    fn mem_name(&self, mem: MemRef) -> String {
        match mem {
            MemRef::Global(p) => self.kernel.params[p.index()].name().to_string(),
            MemRef::Shared(i) => self.kernel.shared[i as usize].name.clone(),
            MemRef::Local(i) => self.kernel.locals[i as usize].name.clone(),
        }
    }

    /// Render an expression; `parent_prec` is the binding power of the
    /// enclosing operator — parentheses are emitted when needed.
    fn expr(&self, e: &Expr, parent_prec: u8) -> String {
        let (text, prec) = match e {
            Expr::IntConst(v) => (v.to_string(), 100),
            Expr::FloatConst(v) => {
                // Ensure the literal re-parses as a float.
                let mut s = format!("{v}");
                if !s.contains('.') && !s.contains('e') && !s.contains("inf") && !s.contains("NaN")
                {
                    s.push_str(".0");
                }
                (s, 100)
            }
            Expr::ThreadIdx(a) => (format!("threadIdx.{a}"), 100),
            Expr::BlockIdx(a) => (format!("blockIdx.{a}"), 100),
            Expr::BlockDim(a) => (format!("blockDim.{a}"), 100),
            Expr::GridDim(a) => (format!("gridDim.{a}"), 100),
            Expr::Param(p) => (self.kernel.params[p.index()].name().to_string(), 100),
            Expr::Var(v) => (self.var_names[v.index()].clone(), 100),
            Expr::Load { mem, index } => (
                format!("{}[{}]", self.mem_name(*mem), self.expr(index, 0)),
                100,
            ),
            Expr::Unary { op, arg } => (format!("{}{}", op.symbol(), self.expr(arg, 90)), 90),
            Expr::Binary { op, lhs, rhs } => {
                let prec = bin_prec(*op);
                (
                    format!(
                        "{} {} {}",
                        self.expr(lhs, prec),
                        op.symbol(),
                        // Right operand binds one tighter: makes `a - (b - c)`
                        // print with parens and `a - b - c` without.
                        self.expr(rhs, prec + 1)
                    ),
                    prec,
                )
            }
            Expr::Select {
                cond,
                then_value,
                else_value,
            } => (
                format!(
                    "{} ? {} : {}",
                    self.expr(cond, 4),
                    self.expr(then_value, 0),
                    self.expr(else_value, 3)
                ),
                3,
            ),
            Expr::Cast { ty, arg } => (format!("({}){}", ty.c_name(), self.expr(arg, 95)), 90),
            Expr::Call { f, args } => {
                let rendered: Vec<String> = args.iter().map(|a| self.expr(a, 0)).collect();
                (format!("{}({})", f.c_name(), rendered.join(", ")), 100)
            }
        };
        if prec < parent_prec {
            format!("({text})")
        } else {
            text
        }
    }
}

/// Binding power of a binary operator (higher binds tighter). Mirrors the
/// parser's precedence table.
pub(crate) fn bin_prec(op: BinOp) -> u8 {
    match op {
        BinOp::LOr => 5,
        BinOp::LAnd => 6,
        BinOp::Or => 7,
        BinOp::Xor => 8,
        BinOp::And => 9,
        BinOp::Eq | BinOp::Ne => 10,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 11,
        BinOp::Shl | BinOp::Shr => 12,
        BinOp::Add | BinOp::Sub => 13,
        BinOp::Mul | BinOp::Div | BinOp::Rem => 14,
    }
}

/// Convenience: render the scalar type used for declarations of a kind.
pub fn decl_type(kind: ValueKind) -> Scalar {
    match kind {
        ValueKind::Int => Scalar::I64,
        ValueKind::Float => Scalar::F64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::KernelBuilder;
    use crate::types::Axis;

    #[test]
    fn prints_listing1_shape() {
        let mut b = KernelBuilder::new("vec_copy");
        let src = b.buffer("src", Scalar::I8);
        let dest = b.buffer("dest", Scalar::I8);
        let n = b.scalar("n", Scalar::I32);
        let id = b.let_("id", Expr::global_tid_x());
        b.if_then(Expr::Var(id).lt(n), |b| {
            b.store(dest, Expr::Var(id), Expr::load(src, Expr::Var(id)));
        });
        let text = print_kernel(&b.finish());
        assert!(text.contains("__global__ void vec_copy(char* src, char* dest, int n)"));
        assert!(text.contains("id = blockIdx.x * blockDim.x + threadIdx.x;"));
        assert!(text.contains("if (id < n) {"));
        assert!(text.contains("dest[id] = src[id];"));
    }

    #[test]
    fn parenthesizes_when_needed() {
        let mut b = KernelBuilder::new("k");
        let buf = b.buffer("out", Scalar::I32);
        // (a + b) * c requires parens; a + b * c does not.
        b.store(
            buf,
            Expr::int(0),
            Expr::int(1).add(Expr::int(2)).mul(Expr::int(3)),
        );
        b.store(
            buf,
            Expr::int(1),
            Expr::int(1).add(Expr::int(2).mul(Expr::int(3))),
        );
        let text = print_kernel(&b.finish());
        assert!(text.contains("(1 + 2) * 3"));
        assert!(text.contains("1 + 2 * 3"));
    }

    #[test]
    fn duplicate_var_names_uniquified() {
        let mut b = KernelBuilder::new("k");
        let buf = b.buffer("out", Scalar::I32);
        let a1 = b.let_("i", Expr::int(1));
        let a2 = b.let_("i", Expr::int(2));
        b.store(buf, Expr::Var(a1), Expr::Var(a2));
        let text = print_kernel(&b.finish());
        assert!(text.contains("i = 1;"));
        assert!(text.contains("i_1 = 2;"));
    }

    #[test]
    fn float_literals_reparse_as_floats() {
        let mut b = KernelBuilder::new("k");
        let buf = b.buffer("out", Scalar::F32);
        b.store(buf, Expr::int(0), Expr::float(2.0));
        let text = print_kernel(&b.finish());
        assert!(text.contains("2.0") || text.contains("2."));
    }

    #[test]
    fn subtraction_is_left_associative() {
        let mut b = KernelBuilder::new("k");
        let buf = b.buffer("out", Scalar::I32);
        // a - (b - c)
        b.store(
            buf,
            Expr::int(0),
            Expr::int(5).sub(Expr::int(3).sub(Expr::int(1))),
        );
        let text = print_kernel(&b.finish());
        assert!(text.contains("5 - (3 - 1)"));
    }

    #[test]
    fn atomic_and_sync_print() {
        let mut b = KernelBuilder::new("k");
        let buf = b.buffer("hist", Scalar::I32);
        let _sh = b.shared("tile", Scalar::I32, 8);
        b.sync_threads();
        b.atomic(
            crate::stmt::AtomicOp::Add,
            buf,
            Expr::ThreadIdx(Axis::X),
            Expr::int(1),
        );
        let text = print_kernel(&b.finish());
        assert!(text.contains("__shared__ int tile[8];"));
        assert!(text.contains("__syncthreads();"));
        assert!(text.contains("atomicAdd(&hist[threadIdx.x], 1);"));
    }
}
