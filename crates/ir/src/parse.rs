//! Mini-CUDA front-end.
//!
//! Parses the dialect of CUDA C the paper's benchmark kernels are written in
//! (Listing 1 and the Hetero-Mark-style kernels) into the [`Kernel`] IR. The
//! dialect covers:
//!
//! * `__global__ void name(type* buf, type scalar, …) { … }` signatures;
//! * scalar declarations with optional initializers, assignments and the
//!   compound assignments `+= -= *= /=`;
//! * `__shared__` arrays and per-thread local arrays with constant sizes;
//! * `if`/`else`, canonical `for` loops (`<`/`<=`/`>`/`>=` conditions,
//!   `++ -- += -=` increments), `return;`, `__syncthreads();`;
//! * `threadIdx/blockIdx/blockDim/gridDim . x|y|z` builtins;
//! * the math intrinsics of [`crate::expr::Intrinsic`] and
//!   `atomicAdd/atomicMin/atomicMax`;
//! * C operator precedence, `?:`, casts `(float)x`, hex and float literals.

use crate::expr::{BinOp, Expr, Intrinsic, UnOp};
use crate::kernel::{ArrayDecl, Kernel, MemRef, Param, ParamId, VarId};
use crate::stmt::{AtomicOp, Stmt};
use crate::types::{Axis, Scalar};
use std::collections::HashMap;
use std::fmt;

/// Parse failure, with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Line the error was detected on.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse one `__global__` kernel from source text.
pub fn parse_kernel(src: &str) -> Result<Kernel, ParseError> {
    parse_kernel_with_map(src).map(|(k, _)| k)
}

/// Source-location breadcrumbs for diagnostics: 1-based line numbers of the
/// memory-writing statements and barriers, recorded during parsing.
///
/// The IR itself carries no locations (kernels built programmatically have
/// none, and `Kernel`/`Stmt` equality must stay structural), so the map is a
/// side table keyed by *pre-order ordinal*: `global_write_lines[k]` is the
/// line of the k-th `Stmt::Store`/`Stmt::AtomicRmw` targeting **global**
/// memory in pre-order (= source order), which is exactly the order the
/// analyses walk write sites in. `barrier_lines` does the same for
/// `__syncthreads()`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceMap {
    /// Line of each global-memory `Store`/`AtomicRmw`, in source order.
    pub global_write_lines: Vec<u32>,
    /// Line of each `__syncthreads()`, in source order.
    pub barrier_lines: Vec<u32>,
    /// Line of each `Store`/`AtomicRmw` targeting a **shared or local**
    /// array, in source order (used by the lint pass's dead-store finding).
    pub shared_write_lines: Vec<u32>,
    /// Line of each `if` statement, in source order (used by the lint pass
    /// to attribute constant-condition findings; `?:` selects are not ifs).
    pub if_lines: Vec<u32>,
}

/// Parse one kernel and also return the [`SourceMap`] breadcrumbs.
pub fn parse_kernel_with_map(src: &str) -> Result<(Kernel, SourceMap), ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        params: Vec::new(),
        shared: Vec::new(),
        locals: Vec::new(),
        var_names: Vec::new(),
        scopes: vec![HashMap::new()],
        map: SourceMap::default(),
    };
    let kernel = p.kernel()?;
    Ok((kernel, p.map))
}

// ---------------------------------------------------------------- lexer --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Punct(&'static str),
}

#[derive(Debug, Clone, PartialEq)]
struct Token {
    tok: Tok,
    line: u32,
}

const PUNCTS: &[&str] = &[
    "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "++", "--", "->", "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":", "+", "-", "*", "/",
    "%", "<", ">", "=", "!", "&", "|", "^", "~",
];

fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < bytes.len() {
            if bytes[i + 1] == b'/' {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                continue;
            }
            if bytes[i + 1] == b'*' {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
                continue;
            }
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push(Token {
                tok: Tok::Ident(src[start..i].to_string()),
                line,
            });
            continue;
        }
        if c.is_ascii_digit() || (c == '.' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit())
        {
            let start = i;
            // Hex literal.
            if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] == b'x' || bytes[i + 1] == b'X') {
                i += 2;
                while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                    i += 1;
                }
                let v = i64::from_str_radix(&src[start + 2..i], 16).map_err(|e| ParseError {
                    message: format!("bad hex literal: {e}"),
                    line,
                })?;
                out.push(Token {
                    tok: Tok::Int(v),
                    line,
                });
                continue;
            }
            let mut is_float = false;
            while i < bytes.len() {
                let d = bytes[i] as char;
                if d.is_ascii_digit() {
                    i += 1;
                } else if d == '.' && !is_float {
                    is_float = true;
                    i += 1;
                } else if (d == 'e' || d == 'E')
                    && i + 1 < bytes.len()
                    && (bytes[i + 1].is_ascii_digit()
                        || bytes[i + 1] == b'-'
                        || bytes[i + 1] == b'+')
                {
                    is_float = true;
                    i += 2;
                } else {
                    break;
                }
            }
            let text = &src[start..i];
            // Optional float suffix.
            if i < bytes.len() && (bytes[i] == b'f' || bytes[i] == b'F') {
                is_float = true;
                i += 1;
            }
            let tok = if is_float {
                Tok::Float(text.parse::<f64>().map_err(|e| ParseError {
                    message: format!("bad float literal `{text}`: {e}"),
                    line,
                })?)
            } else {
                Tok::Int(text.parse::<i64>().map_err(|e| ParseError {
                    message: format!("bad int literal `{text}`: {e}"),
                    line,
                })?)
            };
            out.push(Token { tok, line });
            continue;
        }
        let rest = &src[i..];
        let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) else {
            return Err(ParseError {
                message: format!("unexpected character `{c}`"),
                line,
            });
        };
        out.push(Token {
            tok: Tok::Punct(p),
            line,
        });
        i += p.len();
    }
    Ok(out)
}

// --------------------------------------------------------------- parser --

#[derive(Debug, Clone, Copy)]
enum Binding {
    Var(VarId),
    ScalarParam(ParamId),
    Mem(MemRef),
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    params: Vec<Param>,
    shared: Vec<ArrayDecl>,
    locals: Vec<ArrayDecl>,
    var_names: Vec<String>,
    scopes: Vec<HashMap<String, Binding>>,
    map: SourceMap,
}

impl Parser {
    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|t| t.line)
            .unwrap_or(0)
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            line: self.line(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1).map(|t| &t.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.peek() == Some(&Tok::Punct_of(p)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {}", self.describe()))
        }
    }

    fn describe(&self) -> String {
        match self.peek() {
            Some(Tok::Ident(s)) => format!("`{s}`"),
            Some(Tok::Int(v)) => format!("`{v}`"),
            Some(Tok::Float(v)) => format!("`{v}`"),
            Some(Tok::Punct(p)) => format!("`{p}`"),
            None => "end of input".to_string(),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found {}", self.describe()))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected identifier, found {}", self.describe()))
            }
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(v),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected integer, found {}", self.describe()))
            }
        }
    }

    /// Try to read a scalar type name at the cursor without consuming on
    /// failure.
    fn peek_type(&self) -> Option<(Scalar, usize)> {
        let s = match self.peek()? {
            Tok::Ident(s) => s.as_str(),
            _ => return None,
        };
        let simple = |t| Some((t, 1));
        match s {
            "char" => simple(Scalar::I8),
            "uchar" => simple(Scalar::U8),
            "int" => simple(Scalar::I32),
            "uint" => simple(Scalar::U32),
            "long" => simple(Scalar::I64),
            "float" => simple(Scalar::F32),
            "double" => simple(Scalar::F64),
            "unsigned" => match self.peek2() {
                Some(Tok::Ident(s2)) if s2 == "char" => Some((Scalar::U8, 2)),
                Some(Tok::Ident(s2)) if s2 == "int" => Some((Scalar::U32, 2)),
                _ => Some((Scalar::U32, 1)),
            },
            _ => None,
        }
    }

    fn eat_type(&mut self) -> Option<Scalar> {
        let (t, n) = self.peek_type()?;
        self.pos += n;
        Some(t)
    }

    fn lookup(&self, name: &str) -> Option<Binding> {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Some(*b);
            }
        }
        None
    }

    fn bind(&mut self, name: String, b: Binding) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name, b);
    }

    fn new_var(&mut self, name: String) -> VarId {
        let id = VarId(self.var_names.len() as u32);
        self.var_names.push(name.clone());
        self.bind(name, Binding::Var(id));
        id
    }

    // --------------------------------------------------- kernel structure --

    fn kernel(&mut self) -> Result<Kernel, ParseError> {
        self.expect_kw("__global__")?;
        self.expect_kw("void")?;
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        if !self.eat_punct(")") {
            loop {
                let Some(ty) = self.eat_type() else {
                    return self.err(format!(
                        "expected parameter type, found {}",
                        self.describe()
                    ));
                };
                let is_ptr = self.eat_punct("*");
                let pname = self.expect_ident()?;
                let id = ParamId(self.params.len() as u32);
                if is_ptr {
                    self.params.push(Param::Buffer {
                        name: pname.clone(),
                        elem: ty,
                    });
                    self.bind(pname, Binding::Mem(MemRef::Global(id)));
                } else {
                    self.params.push(Param::Scalar {
                        name: pname.clone(),
                        ty,
                    });
                    self.bind(pname, Binding::ScalarParam(id));
                }
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        self.expect_punct("{")?;
        let body = self.block_body()?;
        if self.pos != self.tokens.len() {
            return self.err("trailing tokens after kernel body");
        }
        Ok(Kernel {
            name,
            params: std::mem::take(&mut self.params),
            shared: std::mem::take(&mut self.shared),
            locals: std::mem::take(&mut self.locals),
            body,
            var_names: std::mem::take(&mut self.var_names),
        })
    }

    /// Parse statements until the matching `}` (consumed).
    fn block_body(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut stmts = Vec::new();
        loop {
            if self.eat_punct("}") {
                return Ok(stmts);
            }
            if self.peek().is_none() {
                return self.err("unexpected end of input inside block");
            }
            self.stmt_into(&mut stmts)?;
        }
    }

    /// Parse one statement-or-declaration. Declarations without initializers
    /// produce no IR statement, which is why this appends rather than
    /// returns.
    fn stmt_into(&mut self, out: &mut Vec<Stmt>) -> Result<(), ParseError> {
        // Line of the statement's first token, recorded into the side-table
        // [`SourceMap`] for global writes and barriers.
        let stmt_line = self.line();
        // __shared__ declarations.
        if self.eat_kw("__shared__") {
            let Some(ty) = self.eat_type() else {
                return self.err("expected type after __shared__");
            };
            let name = self.expect_ident()?;
            self.expect_punct("[")?;
            let len = self.expect_int()?;
            self.expect_punct("]")?;
            self.expect_punct(";")?;
            if len < 0 {
                return self.err("negative array length");
            }
            let id = self.shared.len() as u32;
            self.shared.push(ArrayDecl {
                name: name.clone(),
                elem: ty,
                len: len as usize,
            });
            self.bind(name, Binding::Mem(MemRef::Shared(id)));
            return Ok(());
        }
        // Typed declarations: scalar vars or local arrays.
        if self.peek_type().is_some() {
            let ty = self.eat_type().unwrap();
            let name = self.expect_ident()?;
            if self.eat_punct("[") {
                let len = self.expect_int()?;
                self.expect_punct("]")?;
                self.expect_punct(";")?;
                if len < 0 {
                    return self.err("negative array length");
                }
                let id = self.locals.len() as u32;
                self.locals.push(ArrayDecl {
                    name: name.clone(),
                    elem: ty,
                    len: len as usize,
                });
                self.bind(name, Binding::Mem(MemRef::Local(id)));
                return Ok(());
            }
            let var = self.new_var(name);
            if self.eat_punct("=") {
                let mut value = self.expr()?;
                // A declaration's type narrows the stored value, like C.
                // Keep int-kind vars wide (they carry i64) but make float
                // declarations of int expressions float-kind via a cast.
                if ty.kind() == crate::types::ValueKind::Float {
                    value = Expr::cast(ty, value);
                }
                out.push(Stmt::Assign { var, value });
            }
            self.expect_punct(";")?;
            return Ok(());
        }
        if self.eat_kw("__syncthreads") {
            self.expect_punct("(")?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            self.map.barrier_lines.push(stmt_line);
            out.push(Stmt::SyncThreads);
            return Ok(());
        }
        if self.eat_kw("return") {
            self.expect_punct(";")?;
            out.push(Stmt::Return);
            return Ok(());
        }
        if self.eat_kw("if") {
            self.map.if_lines.push(stmt_line);
            return self.if_stmt(out);
        }
        if self.eat_kw("for") {
            return self.for_stmt(out);
        }
        // Atomic statement.
        if let Some(Tok::Ident(name)) = self.peek() {
            let op = match name.as_str() {
                "atomicAdd" => Some(AtomicOp::Add),
                "atomicMin" => Some(AtomicOp::Min),
                "atomicMax" => Some(AtomicOp::Max),
                _ => None,
            };
            if let Some(op) = op {
                self.pos += 1;
                self.expect_punct("(")?;
                self.expect_punct("&")?;
                let target = self.expect_ident()?;
                let Some(Binding::Mem(mem)) = self.lookup(&target) else {
                    return self.err(format!("`{target}` is not an array"));
                };
                self.expect_punct("[")?;
                let index = self.expr()?;
                self.expect_punct("]")?;
                self.expect_punct(",")?;
                let value = self.expr()?;
                self.expect_punct(")")?;
                self.expect_punct(";")?;
                if matches!(mem, MemRef::Global(_)) {
                    self.map.global_write_lines.push(stmt_line);
                } else {
                    self.map.shared_write_lines.push(stmt_line);
                }
                out.push(Stmt::AtomicRmw {
                    op,
                    mem,
                    index,
                    value,
                });
                return Ok(());
            }
        }
        // Assignment statements.
        let name = self.expect_ident()?;
        let Some(binding) = self.lookup(&name) else {
            return self.err(format!("unknown identifier `{name}`"));
        };
        match binding {
            Binding::Mem(mem) => {
                self.expect_punct("[")?;
                let index = self.expr()?;
                self.expect_punct("]")?;
                let value = self.compound_rhs(Expr::load(mem, index.clone()))?;
                self.expect_punct(";")?;
                if matches!(mem, MemRef::Global(_)) {
                    self.map.global_write_lines.push(stmt_line);
                } else {
                    self.map.shared_write_lines.push(stmt_line);
                }
                out.push(Stmt::Store { mem, index, value });
                Ok(())
            }
            Binding::Var(var) => {
                if self.eat_punct("++") {
                    self.expect_punct(";")?;
                    out.push(Stmt::Assign {
                        var,
                        value: Expr::Var(var).add(Expr::int(1)),
                    });
                    return Ok(());
                }
                if self.eat_punct("--") {
                    self.expect_punct(";")?;
                    out.push(Stmt::Assign {
                        var,
                        value: Expr::Var(var).sub(Expr::int(1)),
                    });
                    return Ok(());
                }
                let value = self.compound_rhs(Expr::Var(var))?;
                self.expect_punct(";")?;
                out.push(Stmt::Assign { var, value });
                Ok(())
            }
            Binding::ScalarParam(_) => self.err(format!("cannot assign to parameter `{name}`")),
        }
    }

    /// Parse `= e`, `+= e`, `-= e`, `*= e`, `/= e`, `%= e` and build the
    /// right-hand side, given the current-value expression for compounds.
    fn compound_rhs(&mut self, current: Expr) -> Result<Expr, ParseError> {
        let op = match self.peek() {
            Some(Tok::Punct("=")) => None,
            Some(Tok::Punct("+=")) => Some(BinOp::Add),
            Some(Tok::Punct("-=")) => Some(BinOp::Sub),
            Some(Tok::Punct("*=")) => Some(BinOp::Mul),
            Some(Tok::Punct("/=")) => Some(BinOp::Div),
            Some(Tok::Punct("%=")) => Some(BinOp::Rem),
            _ => return self.err(format!("expected assignment, found {}", self.describe())),
        };
        self.pos += 1;
        let rhs = self.expr()?;
        Ok(match op {
            None => rhs,
            Some(op) => Expr::bin(op, current, rhs),
        })
    }

    fn if_stmt(&mut self, out: &mut Vec<Stmt>) -> Result<(), ParseError> {
        self.expect_punct("(")?;
        let cond = self.expr()?;
        self.expect_punct(")")?;
        let then_body = self.stmt_or_block()?;
        let else_body = if self.eat_kw("else") {
            if self.eat_kw("if") {
                self.map.if_lines.push(self.line());
                let mut nested = Vec::new();
                self.if_stmt(&mut nested)?;
                nested
            } else {
                self.stmt_or_block()?
            }
        } else {
            Vec::new()
        };
        out.push(Stmt::If {
            cond,
            then_body,
            else_body,
        });
        Ok(())
    }

    fn stmt_or_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.scopes.push(HashMap::new());
        let result = if self.eat_punct("{") {
            self.block_body()
        } else {
            let mut one = Vec::new();
            self.stmt_into(&mut one).map(|()| one)
        };
        self.scopes.pop();
        result
    }

    fn for_stmt(&mut self, out: &mut Vec<Stmt>) -> Result<(), ParseError> {
        self.expect_punct("(")?;
        self.scopes.push(HashMap::new());
        let result = self.for_stmt_inner(out);
        self.scopes.pop();
        result
    }

    fn for_stmt_inner(&mut self, out: &mut Vec<Stmt>) -> Result<(), ParseError> {
        // Init: `type name = start` or `name = start`.
        let declared = self.eat_type().is_some();
        let name = self.expect_ident()?;
        let var = if declared {
            self.new_var(name)
        } else {
            match self.lookup(&name) {
                Some(Binding::Var(v)) => v,
                _ => return self.err(format!("`{name}` is not a loop variable")),
            }
        };
        self.expect_punct("=")?;
        let start = self.expr()?;
        self.expect_punct(";")?;

        // Condition: `name < end`, `<=`, `>`, `>=`.
        let cname = self.expect_ident()?;
        if cname != self.var_names[var.index()] {
            return self.err(format!(
                "for condition must test loop variable `{}`",
                self.var_names[var.index()]
            ));
        }
        let rel = match self.next() {
            Some(Tok::Punct(p @ ("<" | "<=" | ">" | ">="))) => p,
            _ => {
                return self.err("for condition must be <, <=, > or >=");
            }
        };
        let bound = self.expr()?;
        self.expect_punct(";")?;

        // Increment: `name++`, `name--`, `name += e`, `name -= e`.
        let iname = self.expect_ident()?;
        if iname != self.var_names[var.index()] {
            return self.err("for increment must update the loop variable");
        }
        let step = if self.eat_punct("++") {
            Expr::int(1)
        } else if self.eat_punct("--") {
            Expr::int(-1)
        } else if self.eat_punct("+=") {
            self.expr()?
        } else if self.eat_punct("-=") {
            let e = self.expr()?;
            Expr::int(0).sub(e)
        } else {
            return self.err("for increment must be ++, --, += or -=");
        };
        self.expect_punct(")")?;

        // Normalize <=/>= to the exclusive-bound IR form.
        let end = match rel {
            "<" | ">" => bound,
            "<=" => bound.add(Expr::int(1)),
            ">=" => bound.sub(Expr::int(1)),
            _ => unreachable!(),
        };
        let body = self.stmt_or_block()?;
        out.push(Stmt::For {
            var,
            start,
            end,
            step,
            body,
        });
        Ok(())
    }

    // --------------------------------------------------------- expressions --

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary(0)?;
        if self.eat_punct("?") {
            let then_value = self.expr()?;
            self.expect_punct(":")?;
            let else_value = self.ternary()?;
            Ok(Expr::Select {
                cond: Box::new(cond),
                then_value: Box::new(then_value),
                else_value: Box::new(else_value),
            })
        } else {
            Ok(cond)
        }
    }

    fn peek_binop(&self) -> Option<BinOp> {
        let p = match self.peek()? {
            Tok::Punct(p) => *p,
            _ => return None,
        };
        Some(match p {
            "||" => BinOp::LOr,
            "&&" => BinOp::LAnd,
            "|" => BinOp::Or,
            "^" => BinOp::Xor,
            "&" => BinOp::And,
            "==" => BinOp::Eq,
            "!=" => BinOp::Ne,
            "<" => BinOp::Lt,
            "<=" => BinOp::Le,
            ">" => BinOp::Gt,
            ">=" => BinOp::Ge,
            "<<" => BinOp::Shl,
            ">>" => BinOp::Shr,
            "+" => BinOp::Add,
            "-" => BinOp::Sub,
            "*" => BinOp::Mul,
            "/" => BinOp::Div,
            "%" => BinOp::Rem,
            _ => return None,
        })
    }

    /// Precedence-climbing binary expression parser.
    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some(op) = self.peek_binop() {
            let prec = crate::printer::bin_prec(op);
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("-") {
            let arg = self.unary()?;
            // Fold negation of literals so `-1` is a constant.
            return Ok(match arg {
                Expr::IntConst(v) => Expr::IntConst(-v),
                Expr::FloatConst(v) => Expr::FloatConst(-v),
                other => Expr::Unary {
                    op: UnOp::Neg,
                    arg: Box::new(other),
                },
            });
        }
        if self.eat_punct("!") {
            let arg = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                arg: Box::new(arg),
            });
        }
        if self.eat_punct("~") {
            let arg = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::BitNot,
                arg: Box::new(arg),
            });
        }
        if self.eat_punct("+") {
            return self.unary();
        }
        // Cast: `(` type `)` unary.
        if self.peek() == Some(&Tok::Punct("(")) {
            let save = self.pos;
            self.pos += 1;
            if let Some((ty, n)) = self.peek_type() {
                let after = self.pos + n;
                if self.tokens.get(after).map(|t| &t.tok) == Some(&Tok::Punct(")")) {
                    self.pos = after + 1;
                    let arg = self.unary()?;
                    return Ok(Expr::cast(ty, arg));
                }
            }
            self.pos = save;
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("(") {
            let e = self.expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        match self.next() {
            Some(Tok::Int(v)) => Ok(Expr::IntConst(v)),
            Some(Tok::Float(v)) => Ok(Expr::FloatConst(v)),
            Some(Tok::Ident(name)) => self.ident_expr(name),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected expression, found {}", self.describe()))
            }
        }
    }

    fn ident_expr(&mut self, name: String) -> Result<Expr, ParseError> {
        // Builtin index registers.
        let builtin = matches!(
            name.as_str(),
            "threadIdx" | "blockIdx" | "blockDim" | "gridDim"
        );
        if builtin {
            self.expect_punct(".")?;
            let axis_name = self.expect_ident()?;
            let axis = match axis_name.as_str() {
                "x" => Axis::X,
                "y" => Axis::Y,
                "z" => Axis::Z,
                other => return self.err(format!("unknown axis `.{other}`")),
            };
            return Ok(match name.as_str() {
                "threadIdx" => Expr::ThreadIdx(axis),
                "blockIdx" => Expr::BlockIdx(axis),
                "blockDim" => Expr::BlockDim(axis),
                _ => Expr::GridDim(axis),
            });
        }
        // Intrinsic call.
        if self.peek() == Some(&Tok::Punct("(")) {
            let Some(f) = Intrinsic::from_name(&name) else {
                return self.err(format!("unknown function `{name}`"));
            };
            self.pos += 1;
            let mut args = Vec::new();
            if !self.eat_punct(")") {
                loop {
                    args.push(self.expr()?);
                    if self.eat_punct(")") {
                        break;
                    }
                    self.expect_punct(",")?;
                }
            }
            if args.len() != f.arity() {
                return self.err(format!(
                    "`{}` expects {} argument(s), got {}",
                    f.c_name(),
                    f.arity(),
                    args.len()
                ));
            }
            return Ok(Expr::Call { f, args });
        }
        let Some(binding) = self.lookup(&name) else {
            return self.err(format!("unknown identifier `{name}`"));
        };
        match binding {
            Binding::Var(v) => Ok(Expr::Var(v)),
            Binding::ScalarParam(p) => Ok(Expr::Param(p)),
            Binding::Mem(mem) => {
                self.expect_punct("[")?;
                let index = self.expr()?;
                self.expect_punct("]")?;
                Ok(Expr::load(mem, index))
            }
        }
    }
}

// Helper so `eat_punct` can compare against a non-'static &str.
impl Tok {
    #[allow(non_snake_case)]
    fn Punct_of(p: &str) -> Tok {
        // PUNCTS entries are the only valid punct strings.
        let stat = PUNCTS
            .iter()
            .find(|s| **s == p)
            .expect("eat_punct called with unknown punctuation");
        Tok::Punct(stat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_kernel;
    use crate::validate::validate;

    const LISTING1: &str = r#"
        __global__ void vec_copy(char* src, char* dest, int n) {
            int id = blockDim.x * blockIdx.x + threadIdx.x;
            if (id < n)
                dest[id] = src[id];
        }
    "#;

    #[test]
    fn parses_listing1() {
        let k = parse_kernel(LISTING1).unwrap();
        assert_eq!(k.name, "vec_copy");
        assert_eq!(k.params.len(), 3);
        assert!(k.params[0].is_buffer());
        assert!(k.params[1].is_buffer());
        assert!(!k.params[2].is_buffer());
        assert_eq!(k.body.len(), 2);
        validate(&k).unwrap();
    }

    #[test]
    fn parse_print_roundtrip_listing1() {
        let k = parse_kernel(LISTING1).unwrap();
        let printed = print_kernel(&k);
        let k2 = parse_kernel(&printed).unwrap();
        assert_eq!(k.body, k2.body);
        assert_eq!(k.params, k2.params);
    }

    #[test]
    fn parses_shared_and_barrier() {
        let src = r#"
            __global__ void transpose(float* in, float* out, int n) {
                __shared__ float tile[1024];
                int x = blockIdx.x * 32 + threadIdx.x;
                int y = blockIdx.y * 32 + threadIdx.y;
                tile[threadIdx.y * 32 + threadIdx.x] = in[y * n + x];
                __syncthreads();
                out[y * n + x] = tile[threadIdx.y * 32 + threadIdx.x];
            }
        "#;
        let k = parse_kernel(src).unwrap();
        assert_eq!(k.shared.len(), 1);
        assert_eq!(k.shared[0].len, 1024);
        assert!(k.has_barrier());
        validate(&k).unwrap();
    }

    #[test]
    fn parses_for_variants() {
        let src = r#"
            __global__ void k(float* out, int n) {
                float acc = 0.0f;
                for (int i = 0; i < n; i++) acc += 1.5f;
                for (int j = n; j > 0; j--) acc -= 0.5f;
                for (int m = 0; m <= n; m += 2) acc *= 2.0f;
                out[threadIdx.x] = acc;
            }
        "#;
        let k = parse_kernel(src).unwrap();
        validate(&k).unwrap();
        let fors: Vec<&Stmt> = k
            .body
            .iter()
            .filter(|s| matches!(s, Stmt::For { .. }))
            .collect();
        assert_eq!(fors.len(), 3);
        if let Stmt::For { step, .. } = fors[1] {
            assert_eq!(*step, Expr::IntConst(-1));
        }
        if let Stmt::For { end, .. } = fors[2] {
            // n <= becomes n + 1 exclusive
            assert!(matches!(end, Expr::Binary { op: BinOp::Add, .. }));
        }
    }

    #[test]
    fn parses_intrinsics_and_casts() {
        let src = r#"
            __global__ void k(float* out, float s) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                float v = expf(s) + sqrtf(2.0f) * powf(s, 3.0f);
                out[id] = (float)(id) + v + fmaxf(s, 0.0f);
            }
        "#;
        let k = parse_kernel(src).unwrap();
        validate(&k).unwrap();
        let printed = print_kernel(&k);
        assert!(printed.contains("expf("));
        assert!(printed.contains("powf("));
    }

    #[test]
    fn parses_atomics() {
        let src = r#"
            __global__ void hist(uint* bins, uchar* data, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) {
                    atomicAdd(&bins[data[id]], 1);
                }
            }
        "#;
        let k = parse_kernel(src).unwrap();
        validate(&k).unwrap();
        let mut found = false;
        k.visit_stmts(&mut |s| {
            if matches!(
                s,
                Stmt::AtomicRmw {
                    op: AtomicOp::Add,
                    ..
                }
            ) {
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn ternary_and_precedence() {
        let src = r#"
            __global__ void k(int* out) {
                int a = 1 + 2 * 3;
                int b = (1 + 2) * 3;
                int c = a < b ? a : b;
                out[0] = c | 1 << 2;
            }
        "#;
        let k = parse_kernel(src).unwrap();
        validate(&k).unwrap();
        // a = 7, b = 9 at runtime; structural check on the tree instead:
        match &k.body[0] {
            Stmt::Assign { value, .. } => match value {
                Expr::Binary {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("precedence wrong: {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn error_on_unknown_identifier() {
        let src = "__global__ void k(int* out) { out[0] = bogus; }";
        let e = parse_kernel(src).unwrap_err();
        assert!(e.message.contains("bogus"), "{e}");
    }

    #[test]
    fn error_reports_line() {
        let src = "__global__ void k(int* out) {\n\n  out[0] = @;\n}";
        let e = parse_kernel(src).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn hex_and_float_literals() {
        let src = r#"
            __global__ void k(long* out, double* f) {
                out[0] = 0xFF + 10;
                f[0] = 1.5e3 + 2.0f + .25;
            }
        "#;
        let k = parse_kernel(src).unwrap();
        match &k.body[0] {
            Stmt::Store {
                value: Expr::Binary { lhs, .. },
                ..
            } => assert_eq!(**lhs, Expr::IntConst(255)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn comments_are_skipped() {
        let src = r#"
            // a line comment
            __global__ void k(int* out /* inline */) {
                /* multi
                   line */
                out[0] = 1; // trailing
            }
        "#;
        parse_kernel(src).unwrap();
    }

    #[test]
    fn unsigned_spellings() {
        let src = "__global__ void k(unsigned int* a, unsigned char* b) { a[0] = 1; b[0] = 2; }";
        let k = parse_kernel(src).unwrap();
        assert_eq!(k.params[0].scalar(), Scalar::U32);
        assert_eq!(k.params[1].scalar(), Scalar::U8);
    }

    #[test]
    fn else_if_chains() {
        let src = r#"
            __global__ void k(int* out) {
                int t = threadIdx.x;
                if (t < 1) out[0] = 1;
                else if (t < 2) out[1] = 2;
                else out[2] = 3;
            }
        "#;
        let k = parse_kernel(src).unwrap();
        match &k.body[1] {
            Stmt::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(
                    matches!(&else_body[0], Stmt::If { else_body, .. } if !else_body.is_empty())
                );
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn scopes_shadow() {
        let src = r#"
            __global__ void k(int* out) {
                int i = 1;
                if (i < 2) {
                    int i = 5;
                    out[0] = i;
                }
                out[1] = i;
            }
        "#;
        let k = parse_kernel(src).unwrap();
        assert_eq!(k.var_names.len(), 2);
        // out[0] stores the inner i (VarId 1), out[1] the outer (VarId 0).
        let mut stores = Vec::new();
        k.visit_stmts(&mut |s| {
            if let Stmt::Store { value, .. } = s {
                stores.push(value.clone());
            }
        });
        assert_eq!(stores[0], Expr::Var(VarId(1)));
        assert_eq!(stores[1], Expr::Var(VarId(0)));
    }

    #[test]
    fn source_map_records_write_and_barrier_lines() {
        let src = "__global__ void k(float* out, float* aux) {\n\
                   __shared__ float tile[32];\n\
                   tile[threadIdx.x] = 1.0f;\n\
                   __syncthreads();\n\
                   out[blockIdx.x * blockDim.x + threadIdx.x] = tile[0];\n\
                   if (threadIdx.x < 3)\n\
                   aux[blockIdx.x * 3 + threadIdx.x] = 2.0f;\n\
                   atomicAdd(&out[0], 1.0f);\n\
                   }";
        let (k, map) = parse_kernel_with_map(src).unwrap();
        // Shared-memory stores are NOT in the global-write table; the
        // ordinals line up with the analysis pre-order over global writes.
        assert_eq!(map.global_write_lines, vec![5, 7, 8]);
        assert_eq!(map.barrier_lines, vec![4]);
        // And the plain parser returns the identical kernel.
        assert_eq!(parse_kernel(src).unwrap(), k);
    }

    #[test]
    fn source_map_ordinals_follow_pre_order_through_branches() {
        let src = "__global__ void k(int* out) {\n\
                   if (threadIdx.x < 8) {\n\
                   out[threadIdx.x] = 1;\n\
                   } else {\n\
                   out[threadIdx.x + 8] = 2;\n\
                   }\n\
                   for (int i = 0; i < 2; i++)\n\
                   out[i] = 3;\n\
                   }";
        let (_, map) = parse_kernel_with_map(src).unwrap();
        assert_eq!(map.global_write_lines, vec![3, 5, 8]);
        assert!(map.barrier_lines.is_empty());
    }
}
