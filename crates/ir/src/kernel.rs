//! Kernel definitions: parameters, memory declarations and the kernel body.

use crate::expr::Expr;
use crate::stmt::Stmt;
use crate::types::{MemSpace, Scalar};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a kernel parameter (buffer or scalar), in declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ParamId(pub u32);

impl ParamId {
    /// Index into [`Kernel::params`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ParamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Index of a kernel-local scalar variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VarId(pub u32);

impl VarId {
    /// Index into the kernel's variable table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A kernel parameter: either a pointer into global memory or a scalar.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Param {
    /// `elem* name` — a device global-memory buffer.
    Buffer { name: String, elem: Scalar },
    /// `ty name` — a launch-time scalar argument.
    Scalar { name: String, ty: Scalar },
}

impl Param {
    /// Parameter name as written in the signature.
    pub fn name(&self) -> &str {
        match self {
            Param::Buffer { name, .. } | Param::Scalar { name, .. } => name,
        }
    }

    /// True for buffer (pointer) parameters.
    pub fn is_buffer(&self) -> bool {
        matches!(self, Param::Buffer { .. })
    }

    /// Element/scalar type.
    pub fn scalar(&self) -> Scalar {
        match self {
            Param::Buffer { elem, .. } => *elem,
            Param::Scalar { ty, .. } => *ty,
        }
    }
}

/// A statically sized array declaration (shared or thread-local).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArrayDecl {
    /// Source name.
    pub name: String,
    /// Element type.
    pub elem: Scalar,
    /// Number of elements (compile-time constant, as in CUDA static
    /// `__shared__` declarations).
    pub len: usize,
}

impl ArrayDecl {
    /// Total size of the array in bytes.
    pub fn size_bytes(&self) -> usize {
        self.len * self.elem.size()
    }
}

/// A reference to an addressable memory object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemRef {
    /// Global buffer parameter.
    Global(ParamId),
    /// `__shared__` array (index into [`Kernel::shared`]).
    Shared(u32),
    /// Per-thread array (index into [`Kernel::locals`]).
    Local(u32),
}

impl MemRef {
    /// Which memory space this reference addresses.
    #[inline]
    pub fn space(self) -> MemSpace {
        match self {
            MemRef::Global(_) => MemSpace::Global,
            MemRef::Shared(_) => MemSpace::Shared,
            MemRef::Local(_) => MemSpace::Local,
        }
    }
}

/// A GPU kernel: the unit CuCC migrates.
///
/// Invariants beyond what the type system expresses are established by
/// [`crate::validate::validate`] and relied on by the executors:
/// variables are assigned before use, barrier statements only appear in
/// uniform control flow, and operand domains (int/float) agree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Kernel name (the `__global__` function name).
    pub name: String,
    /// Parameters in signature order.
    pub params: Vec<Param>,
    /// `__shared__` arrays.
    pub shared: Vec<ArrayDecl>,
    /// Per-thread local arrays.
    pub locals: Vec<ArrayDecl>,
    /// Kernel body.
    pub body: Vec<Stmt>,
    /// Names of local scalar variables, indexed by [`VarId`].
    pub var_names: Vec<String>,
}

impl Kernel {
    /// Number of local scalar variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Element type of a memory reference.
    pub fn elem_type(&self, mem: MemRef) -> Scalar {
        match mem {
            MemRef::Global(p) => match &self.params[p.index()] {
                Param::Buffer { elem, .. } => *elem,
                Param::Scalar { .. } => {
                    panic!("MemRef::Global({p}) refers to a scalar parameter")
                }
            },
            MemRef::Shared(i) => self.shared[i as usize].elem,
            MemRef::Local(i) => self.locals[i as usize].elem,
        }
    }

    /// Find a parameter by name.
    pub fn param_by_name(&self, name: &str) -> Option<ParamId> {
        self.params
            .iter()
            .position(|p| p.name() == name)
            .map(|i| ParamId(i as u32))
    }

    /// Iterate over the buffer parameters with their ids.
    pub fn buffer_params(&self) -> impl Iterator<Item = (ParamId, &Param)> {
        self.params
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_buffer())
            .map(|(i, p)| (ParamId(i as u32), p))
    }

    /// Iterate over the scalar parameters with their ids.
    pub fn scalar_params(&self) -> impl Iterator<Item = (ParamId, &Param)> {
        self.params
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.is_buffer())
            .map(|(i, p)| (ParamId(i as u32), p))
    }

    /// Number of dense *memory slots* a flat executor needs: one per
    /// parameter (scalar parameter slots stay unused placeholders, keeping
    /// the numbering trivial), then one per `__shared__` array, then one per
    /// local array. See [`Kernel::mem_slot`] for the numbering itself.
    pub fn num_mem_slots(&self) -> usize {
        self.params.len() + self.shared.len() + self.locals.len()
    }

    /// Dense slot index of a memory reference, stable for a given kernel:
    /// buffer parameters first (in declaration order), then shared arrays,
    /// then locals. The bytecode engine resolves every [`MemRef`] to this
    /// numbering once at compile time instead of re-matching per access.
    pub fn mem_slot(&self, mem: MemRef) -> usize {
        match mem {
            MemRef::Global(p) => p.index(),
            MemRef::Shared(i) => self.params.len() + i as usize,
            MemRef::Local(i) => self.params.len() + self.shared.len() + i as usize,
        }
    }

    /// Total number of statements in the body, nested blocks included
    /// (used to pre-size flat instruction streams).
    pub fn flat_stmt_count(&self) -> usize {
        let mut n = 0;
        self.visit_stmts(&mut |_| n += 1);
        n
    }

    /// True if the kernel contains any `__syncthreads()` barrier.
    pub fn has_barrier(&self) -> bool {
        fn block_has(stmts: &[Stmt]) -> bool {
            stmts.iter().any(|s| match s {
                Stmt::SyncThreads => true,
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => block_has(then_body) || block_has(else_body),
                Stmt::For { body, .. } => block_has(body),
                _ => false,
            })
        }
        block_has(&self.body)
    }

    /// Visit every statement in the kernel (pre-order, nested blocks
    /// included).
    pub fn visit_stmts<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        fn walk<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
            for s in stmts {
                f(s);
                match s {
                    Stmt::If {
                        then_body,
                        else_body,
                        ..
                    } => {
                        walk(then_body, f);
                        walk(else_body, f);
                    }
                    Stmt::For { body, .. } => walk(body, f),
                    _ => {}
                }
            }
        }
        walk(&self.body, f);
    }

    /// Collect the global buffers the kernel loads from. Atomics count as
    /// reads too (read-modify-write), so a kernel's read set and write set
    /// may overlap. Used by the stream scheduler's RAW/WAR hazard tracking.
    pub fn read_global_buffers(&self) -> Vec<ParamId> {
        let mut out: Vec<ParamId> = Vec::new();
        let push = |p: ParamId, out: &mut Vec<ParamId>| {
            if !out.contains(&p) {
                out.push(p);
            }
        };
        self.visit_stmts(&mut |s| {
            if let Stmt::AtomicRmw {
                mem: MemRef::Global(p),
                ..
            } = s
            {
                push(*p, &mut out);
            }
            s.visit_exprs(&mut |e| {
                e.visit(&mut |e| {
                    if let Expr::Load {
                        mem: MemRef::Global(p),
                        ..
                    } = e
                    {
                        push(*p, &mut out);
                    }
                });
            });
        });
        out.sort();
        out
    }

    /// Collect the global buffers the kernel stores to (including atomics).
    pub fn written_global_buffers(&self) -> Vec<ParamId> {
        let mut out: Vec<ParamId> = Vec::new();
        self.visit_stmts(&mut |s| {
            let mem = match s {
                Stmt::Store { mem, .. } => Some(*mem),
                Stmt::AtomicRmw { mem, .. } => Some(*mem),
                _ => None,
            };
            if let Some(MemRef::Global(p)) = mem {
                if !out.contains(&p) {
                    out.push(p);
                }
            }
        });
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn toy_kernel() -> Kernel {
        // dest[gid] = src[gid]
        let src = ParamId(0);
        let dest = ParamId(1);
        Kernel {
            name: "copy".into(),
            params: vec![
                Param::Buffer {
                    name: "src".into(),
                    elem: Scalar::F32,
                },
                Param::Buffer {
                    name: "dest".into(),
                    elem: Scalar::F32,
                },
            ],
            shared: vec![],
            locals: vec![],
            body: vec![Stmt::Store {
                mem: MemRef::Global(dest),
                index: Expr::global_tid_x(),
                value: Expr::load(MemRef::Global(src), Expr::global_tid_x()),
            }],
            var_names: vec![],
        }
    }

    #[test]
    fn written_buffers_found() {
        let k = toy_kernel();
        assert_eq!(k.written_global_buffers(), vec![ParamId(1)]);
    }

    #[test]
    fn read_buffers_found() {
        let k = toy_kernel();
        assert_eq!(k.read_global_buffers(), vec![ParamId(0)]);
    }

    #[test]
    fn atomics_count_as_reads_and_writes() {
        let mut k = toy_kernel();
        k.body = vec![Stmt::AtomicRmw {
            op: crate::stmt::AtomicOp::Add,
            mem: MemRef::Global(ParamId(1)),
            index: Expr::global_tid_x(),
            value: Expr::load(MemRef::Global(ParamId(0)), Expr::global_tid_x()),
        }];
        assert_eq!(k.read_global_buffers(), vec![ParamId(0), ParamId(1)]);
        assert_eq!(k.written_global_buffers(), vec![ParamId(1)]);
    }

    #[test]
    fn param_lookup() {
        let k = toy_kernel();
        assert_eq!(k.param_by_name("src"), Some(ParamId(0)));
        assert_eq!(k.param_by_name("dest"), Some(ParamId(1)));
        assert_eq!(k.param_by_name("nope"), None);
    }

    #[test]
    fn elem_type_of_global() {
        let k = toy_kernel();
        assert_eq!(k.elem_type(MemRef::Global(ParamId(0))), Scalar::F32);
    }

    #[test]
    fn no_barrier_in_toy() {
        assert!(!toy_kernel().has_barrier());
    }

    #[test]
    fn mem_slot_numbering_is_dense_and_stable() {
        let mut k = toy_kernel();
        k.shared.push(ArrayDecl {
            name: "tile".into(),
            elem: Scalar::F32,
            len: 64,
        });
        k.locals.push(ArrayDecl {
            name: "acc".into(),
            elem: Scalar::F32,
            len: 4,
        });
        assert_eq!(k.num_mem_slots(), 4); // 2 params + 1 shared + 1 local
        assert_eq!(k.mem_slot(MemRef::Global(ParamId(0))), 0);
        assert_eq!(k.mem_slot(MemRef::Global(ParamId(1))), 1);
        assert_eq!(k.mem_slot(MemRef::Shared(0)), 2);
        assert_eq!(k.mem_slot(MemRef::Local(0)), 3);
    }

    #[test]
    fn flat_stmt_count_includes_nested() {
        let mut k = toy_kernel();
        assert_eq!(k.flat_stmt_count(), 1);
        k.body = vec![Stmt::if_then(
            Expr::int(1),
            vec![Stmt::Return, Stmt::Return],
        )];
        assert_eq!(k.flat_stmt_count(), 3);
    }

    #[test]
    fn memref_spaces() {
        assert_eq!(MemRef::Global(ParamId(0)).space(), MemSpace::Global);
        assert_eq!(MemRef::Shared(0).space(), MemSpace::Shared);
        assert_eq!(MemRef::Local(0).space(), MemSpace::Local);
    }
}
