//! Launch geometry: grid/block dimensions and kernel launch configuration.

use crate::types::Axis;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A CUDA `dim3`: extents along x, y and z.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim3 {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl Dim3 {
    /// 1-D shape `(x, 1, 1)`.
    pub const fn new1(x: u32) -> Dim3 {
        Dim3 { x, y: 1, z: 1 }
    }

    /// 2-D shape `(x, y, 1)`.
    pub const fn new2(x: u32, y: u32) -> Dim3 {
        Dim3 { x, y, z: 1 }
    }

    /// 3-D shape.
    pub const fn new3(x: u32, y: u32, z: u32) -> Dim3 {
        Dim3 { x, y, z }
    }

    /// Total number of elements (`x·y·z`).
    pub const fn count(self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }

    /// Extent along one axis.
    pub const fn get(self, axis: Axis) -> u32 {
        match axis {
            Axis::X => self.x,
            Axis::Y => self.y,
            Axis::Z => self.z,
        }
    }

    /// Convert a linear index (x-fastest, CUDA convention) to coordinates.
    pub fn delinearize(self, linear: u64) -> (u32, u32, u32) {
        debug_assert!(linear < self.count());
        let x = (linear % self.x as u64) as u32;
        let rest = linear / self.x as u64;
        let y = (rest % self.y as u64) as u32;
        let z = (rest / self.y as u64) as u32;
        (x, y, z)
    }

    /// Convert coordinates to a linear index (x-fastest).
    pub const fn linearize(self, x: u32, y: u32, z: u32) -> u64 {
        (z as u64 * self.y as u64 + y as u64) * self.x as u64 + x as u64
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.y == 1 && self.z == 1 {
            write!(f, "{}", self.x)
        } else if self.z == 1 {
            write!(f, "({},{})", self.x, self.y)
        } else {
            write!(f, "({},{},{})", self.x, self.y, self.z)
        }
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Dim3 {
        Dim3::new1(x)
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Dim3 {
        Dim3::new2(x, y)
    }
}

impl From<(u32, u32, u32)> for Dim3 {
    fn from((x, y, z): (u32, u32, u32)) -> Dim3 {
        Dim3::new3(x, y, z)
    }
}

/// The geometry of one kernel launch: `kernel<<<grid, block>>>(…)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Number of blocks along each axis.
    pub grid: Dim3,
    /// Number of threads per block along each axis.
    pub block: Dim3,
}

impl LaunchConfig {
    /// Build a launch configuration.
    pub fn new(grid: impl Into<Dim3>, block: impl Into<Dim3>) -> LaunchConfig {
        LaunchConfig {
            grid: grid.into(),
            block: block.into(),
        }
    }

    /// The 1-D launch `ceil(n / block_x)` blocks of `block_x` threads used by
    /// the paper's running example (Listing 1).
    pub fn cover1(n: u64, block_x: u32) -> LaunchConfig {
        let blocks = n.div_ceil(block_x as u64);
        LaunchConfig::new(blocks as u32, block_x)
    }

    /// Total number of blocks in the grid.
    pub fn num_blocks(&self) -> u64 {
        self.grid.count()
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u64 {
        self.block.count()
    }

    /// Total number of threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.num_blocks() * self.threads_per_block()
    }
}

impl fmt::Display for LaunchConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<<<{}, {}>>>", self.grid, self.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover1_matches_listing1() {
        // Listing 1: N = 1200, block = 256 -> 5 blocks.
        let lc = LaunchConfig::cover1(1200, 256);
        assert_eq!(lc.num_blocks(), 5);
        assert_eq!(lc.threads_per_block(), 256);
        assert_eq!(lc.total_threads(), 1280);
    }

    #[test]
    fn linearize_roundtrip() {
        let d = Dim3::new3(4, 3, 2);
        for lin in 0..d.count() {
            let (x, y, z) = d.delinearize(lin);
            assert_eq!(d.linearize(x, y, z), lin);
            assert!(x < 4 && y < 3 && z < 2);
        }
    }

    #[test]
    fn x_is_fastest_axis() {
        let d = Dim3::new2(8, 8);
        assert_eq!(d.delinearize(0), (0, 0, 0));
        assert_eq!(d.delinearize(1), (1, 0, 0));
        assert_eq!(d.delinearize(8), (0, 1, 0));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Dim3::new1(7).to_string(), "7");
        assert_eq!(Dim3::new2(2, 3).to_string(), "(2,3)");
        assert_eq!(Dim3::new3(2, 3, 4).to_string(), "(2,3,4)");
        assert_eq!(LaunchConfig::new(5u32, 256u32).to_string(), "<<<5, 256>>>");
    }
}
