//! Fluent programmatic construction of kernels.
//!
//! ```
//! use cucc_ir::{KernelBuilder, Expr, Scalar};
//!
//! // Listing 1 of the paper: dest[id] = src[id] when id < n.
//! let mut b = KernelBuilder::new("vec_copy");
//! let src = b.buffer("src", Scalar::I8);
//! let dest = b.buffer("dest", Scalar::I8);
//! let n = b.scalar("n", Scalar::I32);
//! let id = b.let_("id", Expr::global_tid_x());
//! b.if_then(Expr::Var(id).lt(n), |b| {
//!     b.store(dest, Expr::Var(id), Expr::load(src, Expr::Var(id)));
//! });
//! let kernel = b.finish();
//! assert_eq!(kernel.name, "vec_copy");
//! cucc_ir::validate(&kernel).unwrap();
//! ```

use crate::expr::Expr;
use crate::kernel::{ArrayDecl, Kernel, MemRef, Param, ParamId, VarId};
use crate::stmt::{AtomicOp, Stmt};
use crate::types::Scalar;

/// Incremental kernel constructor.
///
/// Statements are appended to the innermost open block; [`Self::if_then`],
/// [`Self::if_else`] and [`Self::for_`] take closures that build the nested
/// bodies.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    params: Vec<Param>,
    shared: Vec<ArrayDecl>,
    locals: Vec<ArrayDecl>,
    var_names: Vec<String>,
    stack: Vec<Vec<Stmt>>,
}

impl KernelBuilder {
    /// Start a new kernel.
    pub fn new(name: impl Into<String>) -> KernelBuilder {
        KernelBuilder {
            name: name.into(),
            params: Vec::new(),
            shared: Vec::new(),
            locals: Vec::new(),
            var_names: Vec::new(),
            stack: vec![Vec::new()],
        }
    }

    /// Declare a global-memory buffer parameter; returns its memory handle.
    pub fn buffer(&mut self, name: impl Into<String>, elem: Scalar) -> MemRef {
        let id = ParamId(self.params.len() as u32);
        self.params.push(Param::Buffer {
            name: name.into(),
            elem,
        });
        MemRef::Global(id)
    }

    /// Declare a scalar parameter; returns an expression reading it.
    pub fn scalar(&mut self, name: impl Into<String>, ty: Scalar) -> Expr {
        let id = ParamId(self.params.len() as u32);
        self.params.push(Param::Scalar {
            name: name.into(),
            ty,
        });
        Expr::Param(id)
    }

    /// Declare a `__shared__` array of `len` elements.
    pub fn shared(&mut self, name: impl Into<String>, elem: Scalar, len: usize) -> MemRef {
        let id = self.shared.len() as u32;
        self.shared.push(ArrayDecl {
            name: name.into(),
            elem,
            len,
        });
        MemRef::Shared(id)
    }

    /// Declare a per-thread local array of `len` elements.
    pub fn local_array(&mut self, name: impl Into<String>, elem: Scalar, len: usize) -> MemRef {
        let id = self.locals.len() as u32;
        self.locals.push(ArrayDecl {
            name: name.into(),
            elem,
            len,
        });
        MemRef::Local(id)
    }

    /// Declare a local scalar variable (without assigning it).
    pub fn var(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId(self.var_names.len() as u32);
        self.var_names.push(name.into());
        id
    }

    /// Declare a variable and immediately assign it (`int name = value;`).
    pub fn let_(&mut self, name: impl Into<String>, value: Expr) -> VarId {
        let v = self.var(name);
        self.assign(v, value);
        v
    }

    fn push(&mut self, s: Stmt) {
        self.stack
            .last_mut()
            .expect("builder block stack is never empty")
            .push(s);
    }

    /// `var = value;`
    pub fn assign(&mut self, var: VarId, value: Expr) {
        self.push(Stmt::Assign { var, value });
    }

    /// `mem[index] = value;`
    pub fn store(&mut self, mem: MemRef, index: Expr, value: Expr) {
        self.push(Stmt::Store { mem, index, value });
    }

    /// `atomicOp(&mem[index], value);`
    pub fn atomic(&mut self, op: AtomicOp, mem: MemRef, index: Expr, value: Expr) {
        self.push(Stmt::AtomicRmw {
            op,
            mem,
            index,
            value,
        });
    }

    /// `__syncthreads();`
    pub fn sync_threads(&mut self) {
        self.push(Stmt::SyncThreads);
    }

    /// `return;`
    pub fn ret(&mut self) {
        self.push(Stmt::Return);
    }

    /// `if (cond) { body(b) }`
    pub fn if_then(&mut self, cond: Expr, body: impl FnOnce(&mut KernelBuilder)) {
        self.stack.push(Vec::new());
        body(self);
        let then_body = self.stack.pop().expect("balanced block stack");
        self.push(Stmt::If {
            cond,
            then_body,
            else_body: Vec::new(),
        });
    }

    /// `if (cond) { then_b(b) } else { else_b(b) }`
    pub fn if_else(
        &mut self,
        cond: Expr,
        then_b: impl FnOnce(&mut KernelBuilder),
        else_b: impl FnOnce(&mut KernelBuilder),
    ) {
        self.stack.push(Vec::new());
        then_b(self);
        let then_body = self.stack.pop().expect("balanced block stack");
        self.stack.push(Vec::new());
        else_b(self);
        let else_body = self.stack.pop().expect("balanced block stack");
        self.push(Stmt::If {
            cond,
            then_body,
            else_body,
        });
    }

    /// `for (v = start; v < end; v += step) { body(b, v) }` — declares and
    /// returns the induction variable.
    pub fn for_(
        &mut self,
        name: impl Into<String>,
        start: Expr,
        end: Expr,
        step: Expr,
        body: impl FnOnce(&mut KernelBuilder, VarId),
    ) -> VarId {
        let var = self.var(name);
        self.stack.push(Vec::new());
        body(self, var);
        let body_stmts = self.stack.pop().expect("balanced block stack");
        self.push(Stmt::For {
            var,
            start,
            end,
            step,
            body: body_stmts,
        });
        var
    }

    /// Counting loop `for (v = 0; v < end; v += 1)`.
    pub fn for_range(
        &mut self,
        name: impl Into<String>,
        end: Expr,
        body: impl FnOnce(&mut KernelBuilder, VarId),
    ) -> VarId {
        self.for_(name, Expr::int(0), end, Expr::int(1), body)
    }

    /// Finish construction and return the kernel.
    ///
    /// # Panics
    /// Panics if called while a nested block is still open (programming
    /// error in builder usage — impossible through the closure API).
    pub fn finish(mut self) -> Kernel {
        assert_eq!(
            self.stack.len(),
            1,
            "KernelBuilder::finish called with unbalanced blocks"
        );
        Kernel {
            name: self.name,
            params: self.params,
            shared: self.shared,
            locals: self.locals,
            body: self.stack.pop().unwrap(),
            var_names: self.var_names,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Axis;
    use crate::validate::validate;

    #[test]
    fn nested_blocks_land_in_right_place() {
        let mut b = KernelBuilder::new("k");
        let buf = b.buffer("out", Scalar::I32);
        let i = b.let_("i", Expr::ThreadIdx(Axis::X));
        b.if_then(Expr::Var(i).lt(Expr::int(4)), |b| {
            b.for_range("j", Expr::int(2), |b, j| {
                b.store(buf, Expr::Var(i).add(Expr::Var(j)), Expr::int(1));
            });
        });
        let k = b.finish();
        assert_eq!(k.body.len(), 2); // assign + if
        match &k.body[1] {
            Stmt::If { then_body, .. } => {
                assert_eq!(then_body.len(), 1);
                match &then_body[0] {
                    Stmt::For { body, .. } => assert_eq!(body.len(), 1),
                    other => panic!("expected For, got {other:?}"),
                }
            }
            other => panic!("expected If, got {other:?}"),
        }
        validate(&k).unwrap();
    }

    #[test]
    fn shared_and_local_handles() {
        let mut b = KernelBuilder::new("k");
        let sh = b.shared("tile", Scalar::F32, 256);
        let lo = b.local_array("scratch", Scalar::F64, 8);
        assert_eq!(sh, MemRef::Shared(0));
        assert_eq!(lo, MemRef::Local(0));
        let k = b.finish();
        assert_eq!(k.shared[0].size_bytes(), 1024);
        assert_eq!(k.locals[0].size_bytes(), 64);
    }

    #[test]
    fn var_ids_are_sequential() {
        let mut b = KernelBuilder::new("k");
        let a = b.var("a");
        let c = b.var("c");
        assert_eq!(a, VarId(0));
        assert_eq!(c, VarId(1));
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_finish_panics() {
        let mut b = KernelBuilder::new("k");
        b.stack.push(Vec::new()); // simulate a bug
        let _ = b.finish();
    }
}
