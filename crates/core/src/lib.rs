//! # cucc-core — CUDA on CPU Clusters
//!
//! The end-to-end CuCC framework of the paper *"Scaling GPU-to-CPU Migration
//! for Efficient Distributed Execution on CPU Clusters"* (PPoPP '26):
//! compile a GPU kernel, migrate it to a simulated CPU cluster, and execute
//! it with the **three-phase workflow** (§4):
//!
//! 1. **Partial block execution** — each node runs a disjoint contiguous
//!    slice of the grid;
//! 2. **Balanced in-place Allgather** — one collective restores memory
//!    consistency across the nodes' genuinely disjoint memories;
//! 3. **Callback block execution** — remainder and tail-divergent blocks
//!    run redundantly on every node.
//!
//! ```
//! use cucc_core::{compile_source, CuccCluster, RuntimeConfig};
//! use cucc_cluster::ClusterSpec;
//! use cucc_exec::Arg;
//! use cucc_ir::LaunchConfig;
//!
//! // Listing 1 of the paper.
//! let ck = compile_source(r#"
//!     __global__ void vec_copy(char* src, char* dest, int n) {
//!         int id = blockDim.x * blockIdx.x + threadIdx.x;
//!         if (id < n) dest[id] = src[id];
//!     }
//! "#).unwrap();
//!
//! let mut cluster = CuccCluster::with_options(
//!     ClusterSpec::simd_focused().with_nodes(2),
//!     RuntimeConfig::default(),
//! );
//! let src = cluster.alloc(1200);
//! let dest = cluster.alloc(1200);
//! cluster.upload(src, &[42u8; 1200]).unwrap();
//! let report = cluster
//!     .launch(&ck, LaunchConfig::cover1(1200, 256),
//!             &[Arg::Buffer(src), Arg::Buffer(dest), Arg::int(1200)])
//!     .unwrap();
//! assert!(report.mode.is_three_phase());
//! assert_eq!(cluster.download::<u8>(dest).unwrap(), vec![42u8; 1200]);
//! ```

pub mod codegen;
pub mod compile;
pub mod error;
pub mod graph;
pub mod options;
pub mod program;
pub mod report;
pub mod runtime;
pub mod schedule;
pub mod serve;
pub mod state;
pub mod stream;
pub mod transfer;
pub mod transform;

pub use compile::{compile, compile_source, CompiledKernel};
pub use cucc_exec::EngineKind;
pub use cucc_net::{FaultEvent, FaultKind, FaultPlan, RetryPolicy};
pub use error::MigrateError;
pub use graph::{
    lint_graph, GraphCapture, GraphNode, GraphOp, LaunchGraph, PendingGather, ReplayStats,
};
pub use options::{RunOptions, RunOptionsBuilder};
pub use program::{ArgSpec, GpuProgram, HostOp, ProgramBackend, ProgramBuilder, ProgramResult};
pub use report::{ExecMode, FaultSummary, LaunchReport, PhaseTimes, ThreePhaseShape};
pub use runtime::{CuccCluster, ExecutionFidelity, RuntimeConfig, RuntimeConfigBuilder};
pub use schedule::{
    schedule_key, CacheStats, LaunchSchedule, ScheduleCache, ScheduleDecision, ScheduleKey,
};
pub use serve::{
    synthetic_stream, ClassStats, DeadlineClass, JobServer, JobSpec, ServeConfig, ServePolicy,
    ServeReport, TenantStats,
};
pub use state::{Checkpoint, ClusterState, CHECKPOINT_MAGIC, CHECKPOINT_VERSION};
pub use stream::{EventId, StreamId, StreamSet, DEFAULT_STREAM};
pub use transfer::HostScalar;
pub use transform::{can_split_blocks, split_blocks};
