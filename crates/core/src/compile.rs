//! The CuCC compilation pipeline: parse → validate → analyze.
//!
//! Mirrors the paper's Figure 6 flow: the GPU kernel (our IR standing in for
//! LLVM IR) passes through the Allgather-distributable analysis, producing
//! the metadata (`tail_divergent`, `mem_ptr`, `unit_size`) that the runtime
//! later resolves into a concrete three-phase plan, plus the SIMD
//! vectorizability report that parameterizes the CPU performance model.

use crate::error::MigrateError;
use cucc_analysis::{analyze, KernelAnalysis};
use cucc_ir::{optimize, parse_kernel, validate, Kernel};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic source of [`CompiledKernel::id`] values, process-wide.
static NEXT_KERNEL_ID: AtomicU64 = AtomicU64::new(1);

/// A kernel that went through the full CuCC compiler.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    /// The validated kernel IR.
    pub kernel: Kernel,
    /// Allgather-distributable verdict + SIMD report.
    pub analysis: KernelAnalysis,
    /// Process-unique compilation id (clones share it — they are the same
    /// kernel). Keys the runtime's schedule cache: two `compile` calls on
    /// identical source still get distinct ids, so a cached schedule can
    /// never outlive the compilation it was planned for.
    pub id: u64,
}

impl CompiledKernel {
    /// Kernel name.
    pub fn name(&self) -> &str {
        &self.kernel.name
    }

    /// Shorthand: is the kernel non-trivially Allgather distributable?
    pub fn is_distributable(&self) -> bool {
        self.analysis.verdict.is_distributable()
    }
}

/// Compile an already-constructed kernel: validate, run the IR optimizer
/// (constant folding and simplification — the role LLVM canonicalization
/// plays in the paper's pipeline), then analyze.
pub fn compile(mut kernel: Kernel) -> Result<CompiledKernel, MigrateError> {
    validate(&kernel)?;
    optimize(&mut kernel);
    let analysis = analyze(&kernel);
    Ok(CompiledKernel {
        kernel,
        analysis,
        id: NEXT_KERNEL_ID.fetch_add(1, Ordering::Relaxed),
    })
}

/// Compile from mini-CUDA source.
pub fn compile_source(src: &str) -> Result<CompiledKernel, MigrateError> {
    compile(parse_kernel(src)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_source_full_pipeline() {
        let ck = compile_source(
            "__global__ void k(float* out, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) out[id] = 2.0f;
            }",
        )
        .unwrap();
        assert_eq!(ck.name(), "k");
        assert!(ck.is_distributable());
    }

    #[test]
    fn divmod_decomposed_index_distributable_after_optimization() {
        // Triton-style (row, col) decomposition of a linear id: the raw
        // index `(gid / w) * w + gid % w` is non-affine, but the optimizer
        // recomposes it to `gid`, making the kernel distributable.
        let ck = compile_source(
            "__global__ void k(float* out, int w, int n) {
                int gid = blockIdx.x * blockDim.x + threadIdx.x;
                int row = gid / w;
                int col = gid % w;
                if (gid < n)
                    out[row * w + col] = 1.0f;
            }",
        )
        .unwrap();
        assert!(ck.is_distributable(), "{:?}", ck.analysis.verdict.reasons());
    }

    #[test]
    fn parse_errors_surface() {
        assert!(matches!(
            compile_source("__global__ void k(int* o) { o[0] = ; }"),
            Err(MigrateError::Parse(_))
        ));
    }

    #[test]
    fn validation_errors_surface() {
        // Divergent barrier is a validation error.
        let src = "__global__ void k(int* o) {
            if (threadIdx.x < 3) { __syncthreads(); }
            o[0] = 1;
        }";
        assert!(matches!(
            compile_source(src),
            Err(MigrateError::Validate(_))
        ));
    }
}
