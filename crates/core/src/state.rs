//! Elastic cluster state: the single ownership boundary for *membership*.
//!
//! Historically the cluster's shape was smeared across `CuccCluster` as an
//! ad-hoc alive mask consulted by the runtime, the scheduler, the fault
//! path and the CLI. [`ClusterState`] centralizes it behind a
//! **membership epoch** — a monotonically increasing counter bumped on
//! every membership change (death, join, growth, restore) — plus an
//! interned **shape id** per distinct (node count, alive mask) pair. The
//! epoch answers "did anything change since I last looked?" (staleness);
//! the shape id answers "have I seen this exact shape before?" (schedule
//! reuse): a cluster that loses node 1 and later gets it back is at a
//! *later epoch* but the *same shape*, so shape-keyed artifacts like
//! cached schedules become valid again.
//!
//! The module also defines the versioned on-disk [`Checkpoint`] format
//! that serializes the full observable cluster state — buffer bytes,
//! alive/epoch, the simulated clock, and the fault-session cursor — so a
//! job can be restored into a new process (same or different node count)
//! and resume bit-identically.

use crate::error::MigrateError;

/// Membership state of a simulated cluster: which logical nodes exist,
/// which are alive, and how many membership changes have happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterState {
    /// Monotonically increasing membership epoch. Starts at 0; every
    /// death, join, growth or cross-shape restore bumps it by one. Never
    /// reused, never decreased.
    epoch: u64,
    /// Liveness per logical node; its length is the logical node count.
    alive: Vec<bool>,
    /// Interned shapes, in first-seen order; a shape id is an index here.
    /// Two moments with equal alive masks share one id even when many
    /// epochs apart.
    shapes: Vec<Vec<bool>>,
}

impl ClusterState {
    /// Fresh state: `logical_nodes` nodes, all alive, epoch 0.
    pub fn new(logical_nodes: usize) -> ClusterState {
        let alive = vec![true; logical_nodes];
        ClusterState {
            epoch: 0,
            shapes: vec![alive.clone()],
            alive,
        }
    }

    /// Rebuild state from a restored checkpoint: an explicit alive mask at
    /// an explicit (already advanced) epoch.
    pub(crate) fn restored(alive: Vec<bool>, epoch: u64) -> ClusterState {
        ClusterState {
            epoch,
            shapes: vec![alive.clone()],
            alive,
        }
    }

    /// Logical node count (alive or dead).
    pub fn logical_nodes(&self) -> usize {
        self.alive.len()
    }

    /// The current membership epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Liveness mask per logical node.
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Liveness of one logical node (out-of-range ids are dead).
    pub fn is_alive(&self, node: usize) -> bool {
        self.alive.get(node).copied().unwrap_or(false)
    }

    /// Logical node ids that are alive, in ascending order.
    pub fn alive_ids(&self) -> Vec<u32> {
        (0..self.alive.len() as u32)
            .filter(|&i| self.alive[i as usize])
            .collect()
    }

    /// Number of alive nodes.
    pub fn active_nodes(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Intern the current alive mask and return its shape id. The same
    /// mask always maps to the same id, so shape-keyed artifacts (cached
    /// schedules) planned before a membership excursion become valid again
    /// when the cluster returns to that shape.
    pub fn shape_id(&mut self) -> u64 {
        if let Some(i) = self.shapes.iter().position(|s| *s == self.alive) {
            return i as u64;
        }
        self.shapes.push(self.alive.clone());
        (self.shapes.len() - 1) as u64
    }

    /// Mark a node dead; bumps the epoch. Returns the new epoch.
    pub fn mark_dead(&mut self, node: usize) -> u64 {
        debug_assert!(self.alive[node], "node {node} is already dead");
        self.alive[node] = false;
        self.epoch += 1;
        self.epoch
    }

    /// Revive a dead node (a rejoin); bumps the epoch. Returns the new
    /// epoch.
    pub fn mark_alive(&mut self, node: usize) -> u64 {
        debug_assert!(!self.alive[node], "node {node} is already alive");
        self.alive[node] = true;
        self.epoch += 1;
        self.epoch
    }

    /// Grow the cluster by one fresh, alive node; bumps the epoch.
    /// Returns the new node's id.
    pub fn grow(&mut self) -> usize {
        self.alive.push(true);
        self.epoch += 1;
        self.alive.len() - 1
    }
}

/// One serialized cluster checkpoint: everything needed to resume a job
/// bit-identically in a new process, possibly at a different node count.
///
/// The on-disk layout (version 1, all integers little-endian) is:
///
/// ```text
/// magic       8  b"CUCCCKPT"
/// version     u32
/// nodes       u32   logical node count at checkpoint time
/// epoch       u64   membership epoch at checkpoint time
/// clock       f64   simulated clock (timeline floor for the restore)
/// modeled     u8    1 when the session ran at modeled fidelity
/// alive       nodes × u8
/// cursor      u8    1 when a fault-session cursor follows
///   rng       u64   injector RNG state
///   flags     u32 + n × u8   per-event consumption flags
/// buffers     u32 + per buffer (u64 length + raw bytes)
/// ```
///
/// Checkpoints are taken at a **quiesce barrier**: the runtime drains all
/// streams and materializes every pending (elided) gather first, so the
/// recorded buffer bytes are globally consistent and a single copy per
/// buffer suffices.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Logical node count the checkpoint was taken at.
    pub logical_nodes: u32,
    /// Membership epoch at checkpoint time.
    pub epoch: u64,
    /// Simulated clock at the quiesce barrier.
    pub clock: f64,
    /// Whether the session ran at modeled (timing-only) fidelity.
    pub modeled: bool,
    /// Liveness mask (length == `logical_nodes`).
    pub alive: Vec<bool>,
    /// Fault-session cursor: injector RNG state plus per-event
    /// consumption flags. `None` when the session had no fault plan.
    pub fault_cursor: Option<(u64, Vec<bool>)>,
    /// Raw bytes of every buffer, in allocation (= `BufferId`) order.
    pub buffers: Vec<Vec<u8>>,
}

/// File magic of the checkpoint format.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"CUCCCKPT";
/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u32 = 1;

impl Checkpoint {
    /// Serialize to the versioned binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.logical_nodes.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.clock.to_bits().to_le_bytes());
        out.push(self.modeled as u8);
        debug_assert_eq!(self.alive.len(), self.logical_nodes as usize);
        out.extend(self.alive.iter().map(|&a| a as u8));
        match &self.fault_cursor {
            None => out.push(0),
            Some((rng, flags)) => {
                out.push(1);
                out.extend_from_slice(&rng.to_le_bytes());
                out.extend_from_slice(&(flags.len() as u32).to_le_bytes());
                out.extend(flags.iter().map(|&f| f as u8));
            }
        }
        out.extend_from_slice(&(self.buffers.len() as u32).to_le_bytes());
        for buf in &self.buffers {
            out.extend_from_slice(&(buf.len() as u64).to_le_bytes());
            out.extend_from_slice(buf);
        }
        out
    }

    /// Parse the versioned binary format.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, MigrateError> {
        fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], MigrateError> {
            let end = pos
                .checked_add(n)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| MigrateError::Checkpoint("truncated checkpoint".into()))?;
            let s = &bytes[*pos..end];
            *pos = end;
            Ok(s)
        }
        let bad = |m: &str| MigrateError::Checkpoint(m.to_string());
        let mut p = 0usize;
        let mut take = |n: usize| take(bytes, &mut p, n);
        if take(8)? != CHECKPOINT_MAGIC {
            return Err(bad("not a cucc checkpoint (bad magic)"));
        }
        let version = u32::from_le_bytes(take(4)?.try_into().unwrap());
        if version != CHECKPOINT_VERSION {
            return Err(MigrateError::Checkpoint(format!(
                "unsupported checkpoint version {version} (this build reads \
                 version {CHECKPOINT_VERSION})"
            )));
        }
        let logical_nodes = u32::from_le_bytes(take(4)?.try_into().unwrap());
        let epoch = u64::from_le_bytes(take(8)?.try_into().unwrap());
        let clock = f64::from_bits(u64::from_le_bytes(take(8)?.try_into().unwrap()));
        let modeled = take(1)?[0] != 0;
        let alive: Vec<bool> = take(logical_nodes as usize)?
            .iter()
            .map(|&b| b != 0)
            .collect();
        let fault_cursor = if take(1)?[0] != 0 {
            let rng = u64::from_le_bytes(take(8)?.try_into().unwrap());
            let nflags = u32::from_le_bytes(take(4)?.try_into().unwrap());
            let flags = take(nflags as usize)?.iter().map(|&b| b != 0).collect();
            Some((rng, flags))
        } else {
            None
        };
        let nbufs = u32::from_le_bytes(take(4)?.try_into().unwrap());
        let mut buffers = Vec::with_capacity(nbufs as usize);
        for _ in 0..nbufs {
            let len = u64::from_le_bytes(take(8)?.try_into().unwrap());
            buffers.push(take(len as usize)?.to_vec());
        }
        if p != bytes.len() {
            return Err(bad("trailing bytes after checkpoint payload"));
        }
        Ok(Checkpoint {
            logical_nodes,
            epoch,
            clock,
            modeled,
            alive,
            fault_cursor,
            buffers,
        })
    }

    /// Total buffer payload in bytes (the dominant term of the state
    /// size).
    pub fn state_bytes(&self) -> u64 {
        self.buffers.iter().map(|b| b.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_monotonic_and_shapes_are_interned() {
        let mut st = ClusterState::new(3);
        assert_eq!(st.epoch(), 0);
        assert_eq!(st.active_nodes(), 3);
        let healthy = st.shape_id();

        st.mark_dead(1);
        assert_eq!(st.epoch(), 1);
        assert_eq!(st.alive_ids(), vec![0, 2]);
        let degraded = st.shape_id();
        assert_ne!(healthy, degraded);

        // Rejoin: later epoch, same shape id as the healthy cluster.
        st.mark_alive(1);
        assert_eq!(st.epoch(), 2);
        assert_eq!(st.shape_id(), healthy);

        // Growth: new id, new shape.
        assert_eq!(st.grow(), 3);
        assert_eq!(st.epoch(), 3);
        assert_eq!(st.logical_nodes(), 4);
        assert!(st.is_alive(3));
        assert_ne!(st.shape_id(), healthy);
        assert_ne!(st.shape_id(), degraded);
    }

    #[test]
    fn checkpoint_round_trips_bitwise() {
        let ck = Checkpoint {
            logical_nodes: 3,
            epoch: 7,
            clock: 1.25e-3,
            modeled: false,
            alive: vec![true, false, true],
            fault_cursor: Some((0xDEAD_BEEF, vec![true, false, true, true])),
            buffers: vec![vec![1, 2, 3, 4], vec![], vec![0xFF; 31]],
        };
        let bytes = ck.encode();
        assert_eq!(Checkpoint::decode(&bytes).unwrap(), ck);
        assert_eq!(ck.state_bytes(), 35);

        let no_cursor = Checkpoint {
            fault_cursor: None,
            ..ck.clone()
        };
        assert_eq!(Checkpoint::decode(&no_cursor.encode()).unwrap(), no_cursor);
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        let good = Checkpoint {
            logical_nodes: 2,
            epoch: 0,
            clock: 0.0,
            modeled: true,
            alive: vec![true, true],
            fault_cursor: None,
            buffers: vec![vec![9; 8]],
        }
        .encode();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(Checkpoint::decode(&bad).is_err());
        // Unsupported version.
        let mut bad = good.clone();
        bad[8] = 99;
        assert!(Checkpoint::decode(&bad).is_err());
        // Truncation anywhere must error, never panic.
        for cut in 0..good.len() {
            assert!(Checkpoint::decode(&good[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(Checkpoint::decode(&bad).is_err());
    }
}
