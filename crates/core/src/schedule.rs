//! The launch **planning** stage: everything the runtime decides *before*
//! touching the timeline or any node's memory.
//!
//! [`plan_schedule`] runs the launch-time planner, the sampling profiler
//! and the cost model, and returns a [`LaunchSchedule`] — a pure value
//! describing how the launch will execute (three-phase vs replicated),
//! what each phase costs on the simulated clock, how many bytes cross the
//! wire, and which buffers the kernel reads and writes. The execution
//! stage (`CuccCluster::execute_schedule`) then lays that schedule onto
//! the trace timeline at an arbitrary start time and runs the functional
//! blocks.
//!
//! Splitting planning from execution is what makes the stream scheduler
//! possible: an async launch needs its phase durations and buffer sets
//! *before* it can be placed (its start time is the max of its hazard
//! dependencies and the ready times of the lanes it occupies), and the
//! planning stage has no side effects so it can run at submission time.
//!
//! Bit-for-bit guarantee: the arithmetic here is the launch path's legacy
//! cost model, evaluated in the same order on the same inputs — the
//! execution stage re-derives the same numbers from the recorded spans and
//! asserts equality on every launch.

use crate::compile::CompiledKernel;
use crate::error::MigrateError;
use crate::report::PhaseTimes;
use crate::runtime::RuntimeConfig;
use cucc_analysis::{
    analyze_ranges, global_extents, plan_launch, Partition, Plan, ReplicationCause, ThreePhasePlan,
};
use cucc_cluster::{block_compute_time, node_time_profiled, ClusterSpec};
use cucc_exec::{profile_launch, Arg, BufferId, LaunchProfile, MemPool, Program};
use cucc_ir::{Kernel, LaunchConfig, Value};
use cucc_net::{allgather_cost, AllgatherAlgo, AllgatherPlacement};
use std::collections::HashMap;

/// How a scheduled launch will execute.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleDecision {
    /// The three-phase workflow: partial blocks, balanced in-place
    /// Allgather, callback blocks.
    ThreePhase {
        /// The planner's resolved plan (chunking and gathered regions).
        plan: ThreePhasePlan,
        /// Its split across the cluster's nodes.
        part: Partition,
        /// Whether the last callback block is the divergent tail block.
        has_tail_block: bool,
    },
    /// Replicated fallback: every node redundantly runs the whole grid.
    Replicated {
        /// Why the fallback was taken.
        cause: ReplicationCause,
    },
}

/// The planning stage's output: a launch fully costed and characterized,
/// ready to be laid onto the timeline at any start time.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchSchedule {
    /// Three-phase vs replicated, with the resolved partition.
    pub decision: ScheduleDecision,
    /// Per-phase simulated durations (broadcast always 0.0 — kernel
    /// launches never broadcast).
    pub times: PhaseTimes,
    /// Bytes the launch will move across the network.
    pub wire_bytes: u64,
    /// Buffer arguments the kernel loads from (atomics included).
    pub reads: Vec<BufferId>,
    /// Buffer arguments the kernel stores to (atomics included).
    pub writes: Vec<BufferId>,
    /// The sampled block profile driving the cost model.
    pub profile: LaunchProfile,
    /// Cost of running the whole grid replicated on one node — the
    /// fallback price fault recovery pays when a node death cannot be
    /// re-partitioned across the survivors (degraded execution). Equal to
    /// `times.callback` for replicated decisions.
    pub degraded_time: f64,
    /// Range-analysis certification summary: `(certified, total)`
    /// reachable memory accesses the abstract interpreter proves in-bounds
    /// at this launch. Certified accesses take the engines' unchecked fast
    /// path. `(0, 0)` for the tree-walk tier (no bytecode to analyze).
    pub certs: (usize, usize),
}

impl LaunchSchedule {
    /// Total simulated duration of the launch.
    pub fn time(&self) -> f64 {
        self.times.total()
    }
}

/// One launch argument, reduced to the exact bits that influence
/// planning. Scalars are fingerprinted by bit pattern (so `-0.0` and
/// `0.0` — which the probe and profiler can distinguish through guards —
/// hash differently), buffers by identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ArgFingerprint {
    Int(i64),
    FloatBits(u64),
    Buffer(BufferId),
}

/// Everything [`plan_schedule`] reads that can vary between launches:
/// which compilation, the launch geometry, the argument values the
/// launch-time probe resolves, the **cluster shape** (logical node count
/// plus the interned membership-shape id — a dead or joined node changes
/// every partition, but returning to a seen shape reuses its id), and the
/// engine knobs the cost model consults. Two launches with equal keys are
/// guaranteed to plan to `PartialEq`-identical [`LaunchSchedule`]s, *if*
/// buffer contents feeding the probe/profiler are also unchanged — the
/// capture-time-stationarity assumption graph replay documents.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScheduleKey {
    kernel_id: u64,
    launch: LaunchConfig,
    args: Vec<ArgFingerprint>,
    logical_nodes: usize,
    /// Interned membership-shape id from [`ClusterState::shape_id`]: the
    /// same id always denotes the same (node count, alive mask) pair, so a
    /// cluster that *returns* to a previously seen shape — kill then join
    /// back — hits the entries planned for that shape again.
    ///
    /// [`ClusterState::shape_id`]: crate::state::ClusterState::shape_id
    shape: u64,
    algo: AllgatherAlgoKey,
    placement: AllgatherPlacementKey,
    profile_samples: usize,
}

// `AllgatherAlgo` / `AllgatherPlacement` derive `Eq` but not `Hash`
// (they predate this cache); mirror them into hashable key enums rather
// than widening the public derive surface of `cucc-net`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum AllgatherAlgoKey {
    Ring,
    RecursiveDoubling,
    Bruck,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum AllgatherPlacementKey {
    InPlace,
    OutOfPlace,
}

/// Build the cache key for one prospective launch. `shape` is the interned
/// membership-shape id of the cluster (see `ClusterState::shape_id`).
pub fn schedule_key(
    ck: &CompiledKernel,
    launch: LaunchConfig,
    args: &[Arg],
    logical_nodes: usize,
    shape: u64,
    config: &RuntimeConfig,
) -> ScheduleKey {
    ScheduleKey {
        kernel_id: ck.id,
        launch,
        args: args
            .iter()
            .map(|a| match a {
                Arg::Scalar(Value::I64(v)) => ArgFingerprint::Int(*v),
                Arg::Scalar(Value::F64(v)) => ArgFingerprint::FloatBits(v.to_bits()),
                Arg::Buffer(id) => ArgFingerprint::Buffer(*id),
            })
            .collect(),
        logical_nodes,
        shape,
        algo: match config.allgather_algo {
            AllgatherAlgo::Ring => AllgatherAlgoKey::Ring,
            AllgatherAlgo::RecursiveDoubling => AllgatherAlgoKey::RecursiveDoubling,
            AllgatherAlgo::Bruck => AllgatherAlgoKey::Bruck,
        },
        placement: match config.placement {
            AllgatherPlacement::InPlace => AllgatherPlacementKey::InPlace,
            AllgatherPlacement::OutOfPlace => AllgatherPlacementKey::OutOfPlace,
        },
        profile_samples: config.profile_samples,
    }
}

/// Memoizes [`plan_schedule`] results so graph replay pays the planner,
/// probe and sampling profiler once per distinct launch, not once per
/// iteration.
///
/// Entries are **shape-keyed**, never evicted on membership changes: the
/// interned shape id in [`ScheduleKey`] guarantees a schedule planned for
/// one (node count, alive mask) pair can never serve another, and a
/// cluster that returns to a previously seen shape (node death followed by
/// a rejoin) warm-hits the entries it planned there. Wholesale
/// [`ScheduleCache::invalidate_all`] remains available for explicit
/// reconfiguration (engine or cost-model knob changes outside the key).
#[derive(Debug, Clone, Default)]
pub struct ScheduleCache {
    map: HashMap<ScheduleKey, LaunchSchedule>,
    hits: u64,
    misses: u64,
    evictions: u64,
    last_invalidation: Option<String>,
}

impl ScheduleCache {
    /// Empty cache.
    pub fn new() -> ScheduleCache {
        ScheduleCache::default()
    }

    /// Look up a schedule, counting a hit or miss.
    pub fn get(&mut self, key: &ScheduleKey) -> Option<LaunchSchedule> {
        match self.map.get(key) {
            Some(s) => {
                self.hits += 1;
                Some(s.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Store a freshly planned schedule.
    pub fn insert(&mut self, key: ScheduleKey, schedule: LaunchSchedule) {
        self.map.insert(key, schedule);
    }

    /// Drop every cached schedule (cluster shape changed: node death,
    /// degradation, or an explicit reconfiguration). Records why, for
    /// diagnostics.
    pub fn invalidate_all(&mut self, reason: &str) {
        self.evictions += self.map.len() as u64;
        self.map.clear();
        self.last_invalidation = Some(reason.to_string());
    }

    /// Cached entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries dropped by [`ScheduleCache::invalidate_all`].
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// `hits / (hits + misses)`, or 0 when never queried.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Reason string from the most recent invalidation, if any.
    pub fn last_invalidation(&self) -> Option<&str> {
        self.last_invalidation.as_deref()
    }

    /// Counter snapshot: one value the CLI, serving stats and benches can
    /// carry around (and diff) instead of reading four counters under a
    /// `--graph`-only code path.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.map.len(),
            evictions: self.evictions,
        }
    }
}

/// A point-in-time snapshot of [`ScheduleCache`] counters. Snapshots
/// subtract ([`CacheStats::since`]) so a caller can attribute hits and
/// misses to one window of work — one tenant's launches, one replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that missed (and planned fresh).
    pub misses: u64,
    /// Entries currently cached.
    pub entries: usize,
    /// Entries dropped by wholesale invalidation.
    pub evictions: u64,
}

impl CacheStats {
    /// Counter deltas since an earlier snapshot (`entries` stays absolute:
    /// it is a level, not a counter).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            entries: self.entries,
            evictions: self.evictions - earlier.evictions,
        }
    }

    /// `hits / (hits + misses)`, or 0 when the window had no lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Map the kernel's read/written global-buffer parameter sets onto the
/// concrete `BufferId` arguments of one launch.
pub fn buffer_sets(kernel: &Kernel, args: &[Arg]) -> (Vec<BufferId>, Vec<BufferId>) {
    let resolve = |params: Vec<cucc_ir::ParamId>| -> Vec<BufferId> {
        let mut out: Vec<BufferId> = params
            .into_iter()
            .filter_map(|p| match args.get(p.index()) {
                Some(Arg::Buffer(id)) => Some(*id),
                _ => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    };
    (
        resolve(kernel.read_global_buffers()),
        resolve(kernel.written_global_buffers()),
    )
}

/// Whether a profiled kernel counts as "staged": it round-trips a
/// substantial share of its global traffic through emulated shared-memory
/// tiles (transpose-like reshaping) — small reduction scratchpads don't
/// count.
fn is_staged(profile: &LaunchProfile) -> bool {
    profile.per_block.shared_bytes * 4 >= profile.per_block.global_bytes().max(1)
}

/// Run planner + profiler + cost model for one launch. Pure: reads node
/// memory (for the launch-time probe and the sampling profiler, both on
/// scratch copies) but mutates nothing.
pub fn plan_schedule(
    ck: &CompiledKernel,
    launch: LaunchConfig,
    args: &[Arg],
    node0: &MemPool,
    spec: &ClusterSpec,
    logical_nodes: usize,
    config: &RuntimeConfig,
) -> Result<LaunchSchedule, MigrateError> {
    if launch.num_blocks() == 0 {
        return Err(MigrateError::Launch("empty grid".into()));
    }
    let plan = plan_launch(&ck.kernel, &ck.analysis.verdict, launch, args, node0);
    let profile = profile_launch(&ck.kernel, launch, args, node0, config.profile_samples)?;
    let (reads, writes) = buffer_sets(&ck.kernel, args);
    let degraded_time = replicated_time(ck, &profile, spec);
    let (decision, times, wire_bytes) = match plan {
        Plan::ThreePhase(tp) => cost_three_phase(ck, &tp, &profile, spec, logical_nodes, config),
        Plan::Replicated(cause) => cost_replicated(cause, degraded_time),
    };
    // Certification summary rides along the (cached) schedule; the
    // executors re-derive the full per-pc certificate table when they
    // compile for the chosen engine tier.
    let certs = match Program::compile(&ck.kernel, launch, args) {
        Ok(prog) => {
            let exts = global_extents(&prog, |b| {
                (b.index() < node0.len()).then(|| node0.size_of(b))
            });
            analyze_ranges(&prog, &exts).stats()
        }
        Err(_) => (0, 0),
    };
    Ok(LaunchSchedule {
        decision,
        times,
        wire_bytes,
        reads,
        writes,
        profile,
        degraded_time,
        certs,
    })
}

/// Cost of one node redundantly running the whole grid (the replicated
/// fallback, also the degraded-recovery price).
fn replicated_time(ck: &CompiledKernel, profile: &LaunchProfile, spec: &ClusterSpec) -> f64 {
    let cpu = &spec.cpu;
    let simd_eff = ck.analysis.simd.efficiency;
    let bt_full = block_compute_time(&profile.per_block, simd_eff, cpu);
    let bt_tail = block_compute_time(&profile.tail_block, simd_eff, cpu);
    let full = profile.num_blocks - 1;
    let staged = is_staged(profile);
    node_time_profiled(
        bt_full,
        full,
        Some(bt_tail),
        profile.total.global_bytes(),
        staged,
        cpu,
    )
}

fn cost_three_phase(
    ck: &CompiledKernel,
    tp: &ThreePhasePlan,
    profile: &LaunchProfile,
    spec: &ClusterSpec,
    logical_nodes: usize,
    config: &RuntimeConfig,
) -> (ScheduleDecision, PhaseTimes, u64) {
    let n = logical_nodes as u64;
    let part = tp.partition(n);
    let cpu = &spec.cpu;
    let simd_eff = ck.analysis.simd.efficiency;

    let bt_full = block_compute_time(&profile.per_block, simd_eff, cpu);
    let bt_tail = block_compute_time(&profile.tail_block, simd_eff, cpu);
    let staged = is_staged(profile);
    let tail_divergent = ck
        .analysis
        .verdict
        .meta()
        .map(|m| m.tail_divergent())
        .unwrap_or(false);

    // Multi-node straggler/jitter inefficiency on distributed phases.
    let jitter = 1.0 + spec.jitter * (n - 1) as f64;

    // ---- Phase 1: partial block execution -------------------------
    let pbn = part.partial_blocks_per_node;
    let t_partial = node_time_profiled(
        bt_full,
        pbn,
        None,
        pbn * profile.per_block.global_bytes(),
        staged,
        cpu,
    ) * jitter;

    // ---- Phase 2: balanced in-place Allgather ----------------------
    let mut t_allgather = 0.0;
    let mut wire_bytes = 0u64;
    for region in &tp.buffers {
        let unit = region.unit * part.chunks_per_node;
        let cost = allgather_cost(
            n as usize,
            unit,
            &spec.net,
            config.allgather_algo,
            config.placement,
        );
        t_allgather += cost.time;
        wire_bytes += cost.wire_bytes;
    }

    // ---- Phase 3: callback block execution -------------------------
    let has_tail_block = tail_divergent && part.callback_blocks > 0;
    let callback_full = part.callback_blocks - u64::from(has_tail_block);
    let t_callback = node_time_profiled(
        bt_full,
        callback_full,
        has_tail_block.then_some(bt_tail),
        callback_full * profile.per_block.global_bytes()
            + if has_tail_block {
                profile.tail_block.global_bytes()
            } else {
                0
            },
        staged,
        cpu,
    ) * jitter;

    (
        ScheduleDecision::ThreePhase {
            plan: tp.clone(),
            part,
            has_tail_block,
        },
        PhaseTimes {
            partial: t_partial,
            allgather: t_allgather,
            callback: t_callback,
            ..PhaseTimes::default()
        },
        wire_bytes,
    )
}

fn cost_replicated(cause: ReplicationCause, t: f64) -> (ScheduleDecision, PhaseTimes, u64) {
    (
        ScheduleDecision::Replicated { cause },
        // Every node redundantly runs the whole grid; the legacy
        // accounting files replicated time under the callback phase.
        PhaseTimes {
            callback: t,
            ..PhaseTimes::default()
        },
        0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_source;

    #[test]
    fn buffer_sets_resolve_through_args() {
        let ck = compile_source(
            "__global__ void saxpy(float* x, float* y, float a, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) y[id] = a * x[id] + y[id];
            }",
        )
        .unwrap();
        let args = [
            Arg::Buffer(BufferId(7)),
            Arg::Buffer(BufferId(3)),
            Arg::float(2.0),
            Arg::int(16),
        ];
        let (reads, writes) = buffer_sets(&ck.kernel, &args);
        // y is read-modify-written; x only read.
        assert_eq!(reads, vec![BufferId(3), BufferId(7)]);
        assert_eq!(writes, vec![BufferId(3)]);
    }

    #[test]
    fn schedule_matches_launch_report() {
        use crate::runtime::CuccCluster;
        use cucc_ir::LaunchConfig;

        let ck = compile_source(
            "__global__ void copy(char* src, char* dst, int n) {
                int id = blockDim.x * blockIdx.x + threadIdx.x;
                if (id < n) dst[id] = src[id];
            }",
        )
        .unwrap();
        let mut cl = CuccCluster::with_options(
            ClusterSpec::simd_focused().with_nodes(3),
            RuntimeConfig::default(),
        );
        let src = cl.alloc(4096);
        let dst = cl.alloc(4096);
        cl.upload(src, &[7u8; 4096]).unwrap();
        let launch = LaunchConfig::cover1(4096, 256);
        let args = [Arg::Buffer(src), Arg::Buffer(dst), Arg::int(4096)];
        let schedule = cl.plan(&ck, launch, &args).unwrap();
        let report = cl.launch(&ck, launch, &args).unwrap();
        // Planning is deterministic and execution reproduces it exactly.
        assert_eq!(schedule.times, report.times);
        assert_eq!(schedule.wire_bytes, report.wire_bytes);
        assert_eq!(schedule.time().to_bits(), report.time().to_bits());
        assert!(matches!(
            schedule.decision,
            ScheduleDecision::ThreePhase { .. }
        ));
        assert_eq!(schedule.reads, vec![src]);
        assert_eq!(schedule.writes, vec![dst]);
    }

    #[test]
    fn empty_grid_rejected_at_planning() {
        let ck = compile_source("__global__ void k(int* o) { o[threadIdx.x] = 1; }").unwrap();
        let spec = ClusterSpec::simd_focused();
        let pool = MemPool::new();
        let err = plan_schedule(
            &ck,
            LaunchConfig::new(0u32, 32u32),
            &[Arg::Buffer(BufferId(0))],
            &pool,
            &spec,
            1,
            &RuntimeConfig::default(),
        );
        assert!(matches!(err, Err(MigrateError::Launch(_))));
    }
}
