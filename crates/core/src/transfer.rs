//! The unified typed host↔device transfer surface.
//!
//! [`HostScalar`] is the single trait behind every transfer entry point:
//! the generic [`upload`](crate::runtime::CuccCluster::upload) /
//! [`download`](crate::runtime::CuccCluster::download) pair (and their
//! `_on` stream twins) move any implementing scalar type through one
//! validated, `Result`-returning code path. The legacy `h2d` / `d2h` /
//! `h2d_f32` / `d2h_f32` names survive as thin panicking shims over the
//! generic entry points, so existing call sites keep compiling.
//!
//! All encodings are little-endian, matching the simulated device memory
//! layout the interpreter reads and writes.

use std::borrow::Cow;

/// A scalar type that can cross the host↔device boundary.
///
/// `encode` produces the device byte image of a host slice; `decode`
/// reconstructs host values from device bytes. For `u8` both directions
/// are free (borrowed); wider scalars serialize to little-endian.
pub trait HostScalar: Copy {
    /// Size of one element in device memory, in bytes.
    const SIZE: usize;

    /// Short type name used in transfer error messages.
    const NAME: &'static str;

    /// Device byte image of `data` (borrowed when the host layout already
    /// matches, owned otherwise).
    fn encode(data: &[Self]) -> Cow<'_, [u8]>;

    /// Reconstruct host values from a device byte image whose length is a
    /// multiple of [`HostScalar::SIZE`].
    fn decode(bytes: &[u8]) -> Vec<Self>;
}

impl HostScalar for u8 {
    const SIZE: usize = 1;
    const NAME: &'static str = "u8";

    fn encode(data: &[Self]) -> Cow<'_, [u8]> {
        Cow::Borrowed(data)
    }

    fn decode(bytes: &[u8]) -> Vec<Self> {
        bytes.to_vec()
    }
}

macro_rules! le_scalar {
    ($ty:ty, $name:literal) => {
        impl HostScalar for $ty {
            const SIZE: usize = std::mem::size_of::<$ty>();
            const NAME: &'static str = $name;

            fn encode(data: &[Self]) -> Cow<'_, [u8]> {
                let mut bytes = Vec::with_capacity(data.len() * Self::SIZE);
                for v in data {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
                Cow::Owned(bytes)
            }

            fn decode(bytes: &[u8]) -> Vec<Self> {
                bytes
                    .chunks_exact(Self::SIZE)
                    .map(|c| <$ty>::from_le_bytes(c.try_into().unwrap()))
                    .collect()
            }
        }
    };
}

le_scalar!(f32, "f32");
le_scalar!(f64, "f64");
le_scalar!(i32, "i32");
le_scalar!(u32, "u32");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u8_round_trips_borrowed() {
        let data = [1u8, 2, 3];
        let enc = <u8 as HostScalar>::encode(&data);
        assert!(matches!(enc, Cow::Borrowed(_)));
        assert_eq!(<u8 as HostScalar>::decode(&enc), data);
    }

    #[test]
    fn wide_scalars_round_trip_little_endian() {
        let f = [1.5f32, -2.25, 0.0];
        let enc = <f32 as HostScalar>::encode(&f);
        assert_eq!(enc.len(), 12);
        assert_eq!(&enc[..4], &1.5f32.to_le_bytes());
        assert_eq!(<f32 as HostScalar>::decode(&enc), f);

        let i = [i32::MIN, -1, 7];
        assert_eq!(
            <i32 as HostScalar>::decode(&<i32 as HostScalar>::encode(&i)),
            i
        );
        let d = [1.0f64, f64::MAX];
        assert_eq!(
            <f64 as HostScalar>::decode(&<f64 as HostScalar>::encode(&d)),
            d
        );
        let u = [0u32, u32::MAX];
        assert_eq!(
            <u32 as HostScalar>::decode(&<u32 as HostScalar>::encode(&u)),
            u
        );
    }
}
