//! The CuCC cluster runtime: CUDA-like API over a simulated CPU cluster,
//! executing launches with the three-phase workflow.

use crate::compile::CompiledKernel;
use crate::error::MigrateError;
use crate::report::{ExecMode, LaunchReport, PhaseTimes};
use crate::schedule::{plan_schedule, LaunchSchedule, ScheduleDecision};
use crate::stream::{EventId, StreamId, StreamSet};
use cucc_analysis::{Partition, ReplicationCause, ThreePhasePlan};
use cucc_cluster::{ClusterSpec, SimCluster};
use cucc_exec::{Arg, BufferId, EngineKind, ExecOptions, Program};
use cucc_ir::LaunchConfig;
use cucc_net::{allgather_cost_traced, broadcast_traced, AllgatherAlgo, AllgatherPlacement};
use cucc_trace::{Category, Mark, Timeline, Track};

/// Whether launches execute functionally or are only timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionFidelity {
    /// Every block really executes on its node's memory; collectives really
    /// move bytes; results are exact. Use for correctness work.
    Functional,
    /// Only representative blocks are interpreted (sampled profile); memory
    /// is not updated. Use for paper-scale performance sweeps where full
    /// interpretation would be prohibitive.
    Modeled,
}

/// Runtime knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Functional vs modeled execution.
    pub fidelity: ExecutionFidelity,
    /// Allgather algorithm (paper uses ring-style MPI allgather).
    pub allgather_algo: AllgatherAlgo,
    /// Buffer placement (§2.3: CuCC uses balanced **in-place**).
    pub placement: AllgatherPlacement,
    /// After every functional launch, assert that all written buffers are
    /// identical on every node (the paper's consistency invariant).
    pub verify_consistency: bool,
    /// Blocks sampled per profile.
    pub profile_samples: usize,
    /// Which executor runs functional blocks (bytecode engine by default;
    /// the tree-walk interpreter remains available as the oracle).
    pub engine: EngineKind,
    /// Worker threads per node for intra-node block parallelism
    /// (`0` = derive from host parallelism and the node's core count).
    pub node_threads: usize,
    /// Run the dynamic kernel sanitizer (per-buffer write log + OOB trap)
    /// before every functional launch and cross-check its observations
    /// against the static verifier's verdicts. Purely observational except
    /// that a soundness violation (sanitizer sees a race/OOB the verifier
    /// proved safe) fails the launch. Ignored in modeled fidelity.
    pub sanitize: bool,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            fidelity: ExecutionFidelity::Functional,
            allgather_algo: AllgatherAlgo::Ring,
            placement: AllgatherPlacement::InPlace,
            verify_consistency: true,
            profile_samples: 3,
            engine: EngineKind::default(),
            node_threads: 0,
            sanitize: false,
        }
    }
}

impl RuntimeConfig {
    /// Timing-only configuration for performance sweeps.
    pub fn modeled() -> RuntimeConfig {
        RuntimeConfig {
            fidelity: ExecutionFidelity::Modeled,
            verify_consistency: false,
            ..RuntimeConfig::default()
        }
    }
}

/// A CUDA-context-like handle to a simulated CPU cluster.
#[derive(Debug, Clone)]
pub struct CuccCluster {
    sim: SimCluster,
    config: RuntimeConfig,
    /// Unified event record. All time accounting lives here: launches and
    /// host transfers lay spans out on the simulated clock and advance it;
    /// [`CuccCluster::clock`], [`LaunchReport`] phase times and wire bytes
    /// are derived views over the recorded spans and counters.
    timeline: Timeline,
    /// Logical cluster size. In [`ExecutionFidelity::Modeled`] only one
    /// physical node memory is materialized (paper-scale sweeps would
    /// otherwise replicate gigabytes across 32 pools); the time model still
    /// uses the logical node count.
    logical_nodes: usize,
    /// Stream/event state and the RAW/WAW/WAR hazard tracker behind the
    /// async command-queue API. Empty (default stream only, nothing
    /// pending) unless the async entry points are used.
    streams: StreamSet,
    /// Observations of the most recent sanitized launch (populated only
    /// when [`RuntimeConfig::sanitize`] is on).
    last_sanitize: Option<cucc_exec::SanitizeReport>,
}

impl CuccCluster {
    /// Build a runtime over `spec.nodes` simulated nodes.
    pub fn new(spec: ClusterSpec, config: RuntimeConfig) -> CuccCluster {
        let logical_nodes = spec.nodes as usize;
        let sim_spec = if config.fidelity == ExecutionFidelity::Modeled {
            spec.with_nodes(1)
        } else {
            spec
        };
        CuccCluster {
            sim: SimCluster::new(sim_spec),
            config,
            timeline: Timeline::new(),
            logical_nodes,
            streams: StreamSet::new(),
            last_sanitize: None,
        }
    }

    /// The sanitizer report of the most recent launch, when
    /// [`RuntimeConfig::sanitize`] is enabled.
    pub fn sanitize_report(&self) -> Option<&cucc_exec::SanitizeReport> {
        self.last_sanitize.as_ref()
    }

    /// Number of (logical) nodes.
    pub fn num_nodes(&self) -> usize {
        self.logical_nodes
    }

    /// Cluster hardware description.
    pub fn spec(&self) -> &ClusterSpec {
        &self.sim.spec
    }

    /// Simulated seconds elapsed (kernel launches + host transfers).
    /// Derived from the trace timeline, which owns the simulated clock.
    pub fn clock(&self) -> f64 {
        self.timeline.clock()
    }

    /// Reset the simulated clock and drop the recorded trace (e.g. to time
    /// a region). Stream handles stay valid; pending async work and
    /// recorded events are discarded along with the trace.
    pub fn reset_clock(&mut self) {
        self.timeline.reset();
        self.streams.reset();
    }

    /// The recorded trace timeline (spans, counters, simulated clock).
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Session-wide phase breakdown derived from the timeline: every launch
    /// and host transfer since construction (or the last
    /// [`CuccCluster::reset_clock`]). Unlike per-launch [`LaunchReport`]
    /// times, this includes h2d broadcast time under
    /// [`PhaseTimes::broadcast`].
    pub fn session_times(&self) -> PhaseTimes {
        PhaseTimes {
            // Within one launch every node's phase span has the same
            // duration, so node 0's track carries the per-launch phase
            // times; summing it in recording order reproduces the legacy
            // per-launch accumulation exactly.
            partial: self.timeline.time_in_on(Track::Node(0), Category::Partial),
            allgather: self.timeline.time_in(Category::Allgather),
            callback: self.timeline.time_in_on(Track::Node(0), Category::Callback),
            broadcast: self.timeline.time_in(Category::Broadcast),
        }
    }

    /// Total bytes moved across the network since construction (or the last
    /// [`CuccCluster::reset_clock`]) — Allgathers *and* h2d broadcasts —
    /// derived from the timeline's wire-byte counters.
    pub fn wire_bytes(&self) -> u64 {
        self.timeline.wire_bytes()
    }

    /// Direct access to the underlying simulator (tests, diagnostics).
    pub fn sim(&self) -> &SimCluster {
        &self.sim
    }

    /// Mutable access to the underlying simulator — intended for fault
    /// injection in tests (e.g. corrupting one node's memory to verify the
    /// consistency checker fires). Not part of the stable API surface.
    pub fn sim_mut(&mut self) -> &mut SimCluster {
        &mut self.sim
    }

    /// `cudaMalloc`: replicated allocation on every node.
    pub fn alloc(&mut self, bytes: usize) -> BufferId {
        self.sim.alloc(bytes)
    }

    /// Drain pending async work before a synchronous op touches the clock.
    /// No-op on pure-sync sessions, so the legacy clock arithmetic is
    /// untouched when the stream API is never used.
    fn sync_point(&mut self) {
        if self.streams.pending() {
            self.synchronize();
        }
    }

    /// Record one host-side transfer span starting at `t0`, reserve the
    /// host lane for it, and return its end time. The single recording
    /// path behind `h2d`/`d2h`/`d2h_f32`/`h2d_f32` and their async
    /// variants.
    fn record_host_transfer(
        &mut self,
        name: &'static str,
        category: Category,
        t0: f64,
        duration: f64,
    ) -> f64 {
        self.timeline
            .span(name, Track::Host, category, t0, duration);
        let end = t0 + duration;
        // Instantaneous ops (d2h is free in the time model) occupy no link
        // time, so they must not push the host lane's ready time forward.
        if duration > 0.0 {
            self.timeline.reserve_lane(Track::Host, end);
        }
        end
    }

    /// Broadcast `data` to every node's copy of `buf` and record the
    /// transfer starting at `t0`. Returns the broadcast duration. A
    /// broadcast occupies the host's injection link (the host lane), not
    /// the inter-node fabric the collectives serialize on.
    fn perform_h2d(&mut self, buf: BufferId, data: &[u8], t0: f64) -> f64 {
        self.sim.write_all(buf, data);
        let bt = broadcast_traced(
            &self.sim.spec.net,
            self.logical_nodes,
            data.len() as u64,
            &mut self.timeline,
            t0,
            "h2d broadcast",
        );
        self.record_host_transfer("h2d", Category::H2d, t0, bt);
        bt
    }

    /// Host→device copy, broadcast to every node (charged to the clock).
    /// Records the broadcast on the timeline — including the wire traffic
    /// the pre-timeline accounting never attributed anywhere.
    pub fn h2d(&mut self, buf: BufferId, data: &[u8]) {
        self.sync_point();
        let t0 = self.timeline.clock();
        let bt = self.perform_h2d(buf, data, t0);
        self.timeline.advance(bt);
    }

    /// Device→host copy (from node 0). Free in the time model, but recorded
    /// on the timeline's host track.
    pub fn d2h(&mut self, buf: BufferId) -> Vec<u8> {
        self.sync_point();
        let t = self.timeline.clock();
        self.record_host_transfer("d2h", Category::D2h, t, 0.0);
        self.sim.read(0, buf).to_vec()
    }

    /// Typed convenience reads from node 0.
    pub fn d2h_f32(&mut self, buf: BufferId) -> Vec<f32> {
        self.sync_point();
        let t = self.timeline.clock();
        self.record_host_transfer("d2h", Category::D2h, t, 0.0);
        self.sim.node(0).read_f32(buf)
    }

    /// Typed convenience writes (broadcast).
    pub fn h2d_f32(&mut self, buf: BufferId, data: &[f32]) {
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.h2d(buf, &bytes);
    }

    /// The pure **planning** stage of a launch: run the launch-time
    /// planner, the sampling profiler and the cost model, and return the
    /// resulting [`LaunchSchedule`] without touching the timeline or any
    /// node's memory. [`CuccCluster::launch`] is exactly
    /// `plan` + [`execute at the current clock`](CuccCluster::launch_on).
    pub fn plan(
        &self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
    ) -> Result<LaunchSchedule, MigrateError> {
        plan_schedule(
            ck,
            launch,
            args,
            self.sim.node(0),
            &self.sim.spec,
            self.logical_nodes,
            &self.config,
        )
    }

    /// Launch a compiled kernel on the cluster (on the default stream,
    /// synchronously: the simulated clock advances past the launch).
    ///
    /// Decides between the three-phase workflow and the replicated fallback
    /// via the launch-time planner, executes (or models) the phases, and
    /// returns the time breakdown.
    pub fn launch(
        &mut self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
    ) -> Result<LaunchReport, MigrateError> {
        self.sync_point();
        let sched = self.plan(ck, launch, args)?;
        if self.config.sanitize && self.config.fidelity == ExecutionFidelity::Functional {
            self.run_sanitizer(ck, launch, args)?;
        }
        let mark = self.timeline.checkpoint();
        let t0 = self.timeline.clock();
        // A synchronous launch starts at the clock and nothing else is in
        // flight, so the network floor is the clock itself; `t0 + partial`
        // can never round below `t0`, so the legacy serial layout — and its
        // exact f64 arithmetic — is reproduced.
        let (report, _end) = self.execute_schedule(ck, launch, args, &sched, t0, t0)?;
        // The report's times and wire bytes are *derived* from the spans
        // and counters this launch recorded; the invariant check asserts
        // they reproduce the directly-computed legacy values bit-for-bit.
        let report = self.derive_report(mark, report, ck);
        self.timeline.advance(report.time());
        self.verify_written(ck, args)?;
        Ok(report)
    }

    /// Run the dynamic sanitizer on a scratch clone of node 0's memory and
    /// cross-validate the static verifier, the same way `oracle.rs`
    /// validates distribution plans: a dynamic race (or OOB) observed on a
    /// launch the verifier proved race-free (or in-bounds) is a soundness
    /// bug and fails the launch loudly. The sanitizer itself is
    /// observational — findings are stored on [`CuccCluster::sanitize_report`],
    /// not treated as errors (the real execution below still traps OOB).
    fn run_sanitizer(
        &mut self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
    ) -> Result<(), MigrateError> {
        let pool = self.sim.node(0);
        let dynamic = cucc_exec::sanitize_launch(&ck.kernel, launch, args, pool);
        let extents: Vec<Option<u64>> = ck
            .kernel
            .params
            .iter()
            .zip(args)
            .map(|(p, a)| match (p, a) {
                (cucc_ir::Param::Buffer { elem, .. }, Arg::Buffer(id)) => {
                    Some((pool.size_of(*id) / elem.size()) as u64)
                }
                _ => None,
            })
            .collect();
        let s = cucc_analysis::verify_launch(&ck.kernel, launch, args, &extents, false, None);
        if !dynamic.races.is_empty() && s.race.is_safe() {
            return Err(MigrateError::Launch(format!(
                "sanitizer soundness violation in `{}`: dynamic write race observed \
                 but the static verifier proved race freedom ({})",
                ck.name(),
                dynamic.summary()
            )));
        }
        if !dynamic.oob.is_empty() && s.bounds.is_safe() {
            return Err(MigrateError::Launch(format!(
                "sanitizer soundness violation in `{}`: dynamic out-of-bounds trapped \
                 but the static verifier proved in-bounds ({})",
                ck.name(),
                dynamic.summary()
            )));
        }
        self.last_sanitize = Some(dynamic);
        Ok(())
    }

    // ---- Async command-queue API -----------------------------------

    /// Create a new stream. Work on distinct streams may overlap on the
    /// simulated clock wherever neither hazards nor resource lanes force
    /// an order.
    pub fn stream_create(&mut self) -> StreamId {
        self.streams.create()
    }

    /// Launch a compiled kernel on `stream` without blocking the clock.
    ///
    /// The launch starts at the latest of: the stream's position, its
    /// RAW/WAW/WAR hazard dependencies on the kernel's buffer arguments,
    /// and the node lanes' ready times (a kernel occupies every node).
    /// The Allgather phase additionally waits for the network lane, which
    /// serializes collectives on the inter-node fabric (host broadcasts
    /// ride the host's injection link instead — the host lane).
    ///
    /// Functional execution is eager (memory effects land in submission
    /// order — always a valid serialization, since hazard and event edges
    /// only point to earlier submissions); only the simulated-time layout
    /// is asynchronous. The returned report carries the same per-phase
    /// durations the default stream would produce.
    pub fn launch_on(
        &mut self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
        stream: StreamId,
    ) -> Result<LaunchReport, MigrateError> {
        let sched = self.plan(ck, launch, args)?;
        let mut t0 = self.streams.dep_floor(stream, &sched.reads, &sched.writes);
        for i in 0..self.logical_nodes {
            t0 = t0.max(self.timeline.lane_ready(Track::Node(i as u32)));
        }
        let net_floor = self.timeline.lane_ready(Track::Network);
        let mark = self.timeline.checkpoint();
        let (report, end) = self.execute_schedule(ck, launch, args, &sched, t0, net_floor)?;
        let report = self.derive_report(mark, report, ck);
        self.streams
            .commit(stream, &sched.reads, &sched.writes, end);
        self.verify_written(ck, args)?;
        Ok(report)
    }

    /// Async host→device broadcast on `stream`. Occupies the host lane
    /// (broadcasts serialize on the host's injection link) and overlaps
    /// with kernel compute on the node lanes. The bytes land immediately
    /// (see [`CuccCluster::launch_on`] on eager functional execution).
    pub fn h2d_async(&mut self, buf: BufferId, data: &[u8], stream: StreamId) {
        let t0 = self
            .streams
            .dep_floor(stream, &[], &[buf])
            .max(self.timeline.lane_ready(Track::Host));
        let bt = self.perform_h2d(buf, data, t0);
        self.streams.commit(stream, &[], &[buf], t0 + bt);
    }

    /// Typed async broadcast.
    pub fn h2d_async_f32(&mut self, buf: BufferId, data: &[f32], stream: StreamId) {
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.h2d_async(buf, &bytes, stream);
    }

    /// Async device→host copy on `stream` (from node 0). Free in the time
    /// model but hazard-ordered: it waits for the last write to `buf` on
    /// the simulated clock, and later writes wait for it (WAR). The data
    /// is returned immediately — eager functional execution guarantees it
    /// already holds the value the stream order will produce.
    pub fn d2h_async(&mut self, buf: BufferId, stream: StreamId) -> Vec<u8> {
        let t0 = self
            .streams
            .dep_floor(stream, &[buf], &[])
            .max(self.timeline.lane_ready(Track::Host));
        self.record_host_transfer("d2h", Category::D2h, t0, 0.0);
        self.streams.commit(stream, &[buf], &[], t0);
        self.sim.read(0, buf).to_vec()
    }

    /// Record an event capturing `stream`'s current position.
    pub fn event_record(&mut self, stream: StreamId) -> EventId {
        self.streams.record_event(stream)
    }

    /// Make all later work on `stream` wait for `event`.
    pub fn stream_wait_event(&mut self, stream: StreamId, event: EventId) {
        self.streams.wait_event(stream, event);
    }

    /// Drain every stream: advance the simulated clock to the end of all
    /// in-flight async work and clear hazard state. Returns the clock.
    /// A no-op (and the clock is untouched) when nothing is pending.
    pub fn synchronize(&mut self) -> f64 {
        let horizon = self.streams.horizon().max(self.timeline.lanes_horizon());
        self.timeline.advance_to(horizon);
        self.streams.settle(self.timeline.clock());
        self.timeline.clock()
    }

    /// The paper's consistency invariant: after a functional launch every
    /// written buffer must be identical on every node.
    fn verify_written(&self, ck: &CompiledKernel, args: &[Arg]) -> Result<(), MigrateError> {
        if self.config.verify_consistency && self.config.fidelity == ExecutionFidelity::Functional {
            for p in ck.kernel.written_global_buffers() {
                let Arg::Buffer(id) = args[p.index()] else {
                    continue;
                };
                if !self.sim.consistent(id) {
                    return Err(MigrateError::Launch(format!(
                        "consistency violation: buffer `{}` differs across nodes after `{}`",
                        ck.kernel.params[p.index()].name(),
                        ck.name()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Rebuild a launch report's scalar accounting from the timeline
    /// window the launch recorded, asserting it matches the directly
    /// computed values bit-for-bit.
    fn derive_report(&self, mark: Mark, report: LaunchReport, ck: &CompiledKernel) -> LaunchReport {
        let tl = &self.timeline;
        let derived = PhaseTimes {
            // Phase spans are one per node with identical durations
            // (stragglers are folded into the jitter multiplier), so the
            // phase time is the per-node maximum.
            partial: tl.max_in_since(mark, Category::Partial),
            // Summing the per-collective parent spans in recording order
            // reproduces the legacy per-region accumulation exactly.
            allgather: tl.time_in_since(mark, Category::Allgather),
            callback: tl.max_in_since(mark, Category::Callback),
            broadcast: tl.time_in_since(mark, Category::Broadcast),
        };
        let derived_wire = tl.wire_bytes_since(mark);
        assert_eq!(
            derived.partial.to_bits(),
            report.times.partial.to_bits(),
            "timeline-derived partial time diverged for `{}`",
            ck.name()
        );
        assert_eq!(
            derived.allgather.to_bits(),
            report.times.allgather.to_bits(),
            "timeline-derived allgather time diverged for `{}`",
            ck.name()
        );
        assert_eq!(
            derived.callback.to_bits(),
            report.times.callback.to_bits(),
            "timeline-derived callback time diverged for `{}`",
            ck.name()
        );
        assert_eq!(
            derived.broadcast.to_bits(),
            0.0f64.to_bits(),
            "kernel launches must not record broadcasts (`{}`)",
            ck.name()
        );
        assert_eq!(
            derived_wire,
            report.wire_bytes,
            "timeline-derived wire bytes diverged for `{}`",
            ck.name()
        );
        LaunchReport {
            times: derived,
            wire_bytes: derived_wire,
            ..report
        }
    }

    /// The **execution** stage: lay a planned schedule onto the timeline
    /// starting at `t0` (Allgather additionally floored at `net_floor`,
    /// the network lane's ready time) and run the functional blocks.
    /// Returns the launch report and the end time of the launch's last
    /// span. Does not advance the clock — the caller owns that (serially
    /// in [`CuccCluster::launch`], via stream commit in
    /// [`CuccCluster::launch_on`]).
    fn execute_schedule(
        &mut self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
        sched: &LaunchSchedule,
        t0: f64,
        net_floor: f64,
    ) -> Result<(LaunchReport, f64), MigrateError> {
        match &sched.decision {
            ScheduleDecision::ThreePhase {
                plan,
                part,
                has_tail_block,
            } => {
                let plan = plan.clone();
                let part = part.clone();
                let tail = *has_tail_block;
                self.execute_three_phase(ck, launch, args, sched, plan, part, tail, t0, net_floor)
            }
            ScheduleDecision::Replicated { cause } => {
                let cause = cause.clone();
                self.execute_replicated(ck, launch, args, sched, cause, t0)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_three_phase(
        &mut self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
        sched: &LaunchSchedule,
        tp: ThreePhasePlan,
        part: Partition,
        has_tail_block: bool,
        t0: f64,
        net_floor: f64,
    ) -> Result<(LaunchReport, f64), MigrateError> {
        let n = self.logical_nodes as u64;
        let profile = &sched.profile;

        // ---- Phase 1: partial block execution -------------------------
        let pbn = part.partial_blocks_per_node;
        let t_partial = sched.times.partial;
        for i in 0..n {
            self.timeline.span(
                format!("{}: partial ({pbn} blocks)", ck.name()),
                Track::Node(i as u32),
                Category::Partial,
                t0,
                t_partial,
            );
        }

        // ---- Phase 2: balanced in-place Allgather ----------------------
        // `fl(t0 + t_partial) >= t0` for non-negative durations, so with
        // `net_floor == t0` (the synchronous path) the max is exactly the
        // legacy `t0 + t_partial` — serial layouts are preserved
        // bit-for-bit. An async launch may instead wait here for the
        // network lane (an in-flight h2d broadcast).
        let t_ag0 = (t0 + t_partial).max(net_floor);
        let mut t_allgather = 0.0;
        let mut wire_bytes = 0u64;
        for region in &tp.buffers {
            let unit = region.unit * part.chunks_per_node;
            let label = format!(
                "allgather {}",
                ck.kernel.params[region.param.index()].name()
            );
            let cost = allgather_cost_traced(
                n as usize,
                unit,
                &self.sim.spec.net,
                self.config.allgather_algo,
                self.config.placement,
                &mut self.timeline,
                t_ag0 + t_allgather,
                &label,
            );
            t_allgather += cost.time;
            wire_bytes += cost.wire_bytes;
        }
        if t_allgather > 0.0 {
            // Visualization-only: every node blocks in the collective.
            for i in 0..n {
                self.timeline.child_span(
                    "allgather",
                    Track::Node(i as u32),
                    Category::Allgather,
                    t_ag0,
                    t_allgather,
                );
            }
        }

        // ---- Phase 3: callback block execution -------------------------
        let callback_full = part.callback_blocks - u64::from(has_tail_block);
        let t_callback = sched.times.callback;
        let t_cb0 = t_ag0 + t_allgather;
        for i in 0..n {
            self.timeline.span(
                format!("{}: callback ({} blocks)", ck.name(), part.callback_blocks),
                Track::Node(i as u32),
                Category::Callback,
                t_cb0,
                t_callback,
            );
        }

        // ---- Functional execution --------------------------------------
        let mut node_stats = profile.per_block.scaled(pbn + callback_full);
        if has_tail_block {
            node_stats += profile.tail_block;
        }
        if self.config.fidelity == ExecutionFidelity::Functional {
            let assignments: Vec<_> = (0..n).map(|i| i * pbn..(i + 1) * pbn).collect();
            // Three-phase plans are Allgather-distributable — per-block
            // write intervals are disjoint — so intra-node block
            // parallelism is safe to enable here.
            let opts = ExecOptions {
                engine: self.config.engine,
                node_threads: self.config.node_threads,
                block_parallel: true,
            };
            // Compile once per launch; both execution phases reuse it.
            let prog = match opts.engine {
                EngineKind::Bytecode => Some(Program::compile(&ck.kernel, launch, args)?),
                EngineKind::TreeWalk => None,
            };
            let stats = if let Some(prog) = &prog {
                self.sim.run_program_parallel(prog, &assignments, &opts)?
            } else {
                self.sim
                    .run_blocks_parallel_opts(&ck.kernel, launch, &assignments, args, &opts)?
            };
            for region in &tp.buffers {
                let unit = region.unit * part.chunks_per_node;
                let Arg::Buffer(id) = args[region.param.index()] else {
                    return Err(MigrateError::Launch(format!(
                        "parameter {} is not a buffer",
                        region.param
                    )));
                };
                if unit > 0 {
                    self.sim.allgather_region(
                        id,
                        region.base,
                        unit,
                        self.config.allgather_algo,
                        self.config.placement,
                    );
                }
            }
            let cb: Vec<_> = (0..n).map(|_| part.callback_start..tp.num_blocks).collect();
            let cb_stats = if let Some(prog) = &prog {
                self.sim.run_program_parallel(prog, &cb, &opts)?
            } else {
                self.sim
                    .run_blocks_parallel_opts(&ck.kernel, launch, &cb, args, &opts)?
            };
            node_stats = stats[0] + cb_stats[0];
        }

        // Per-node execution statistics as counter samples at launch start.
        for i in 0..n {
            node_stats.emit_counters(&mut self.timeline, Track::Node(i as u32), t0);
        }

        // The launch occupies every node lane until its last phase ends,
        // and the network lane for the Allgather window.
        let end = t_cb0 + t_callback;
        for i in 0..n {
            self.timeline.reserve_lane(Track::Node(i as u32), end);
        }
        if t_allgather > 0.0 {
            self.timeline.reserve_lane(Track::Network, t_cb0);
        }

        Ok((
            LaunchReport {
                mode: ExecMode::ThreePhase {
                    plan: tp,
                    nodes: n,
                    partial_blocks_per_node: pbn,
                    callback_blocks: part.callback_blocks,
                },
                times: PhaseTimes {
                    partial: t_partial,
                    allgather: t_allgather,
                    callback: t_callback,
                    broadcast: 0.0,
                },
                node_stats,
                wire_bytes,
            },
            end,
        ))
    }

    fn execute_replicated(
        &mut self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
        sched: &LaunchSchedule,
        cause: ReplicationCause,
        t0: f64,
    ) -> Result<(LaunchReport, f64), MigrateError> {
        let n = self.logical_nodes as u64;
        let t = sched.times.callback;
        let mut node_stats = sched.profile.total;
        if self.config.fidelity == ExecutionFidelity::Functional {
            let all: Vec<_> = (0..n).map(|_| 0..launch.num_blocks()).collect();
            // Replicated launches are exactly the non-distributable ones
            // (atomics, overlapping writes): keep blocks serial per node.
            let opts = ExecOptions {
                engine: self.config.engine,
                node_threads: self.config.node_threads,
                block_parallel: false,
            };
            let stats = self
                .sim
                .run_blocks_parallel_opts(&ck.kernel, launch, &all, args, &opts)?;
            node_stats = stats[0];
        }
        // Every node redundantly runs the whole grid; the legacy accounting
        // files replicated time under the callback phase.
        let end = t0 + t;
        for i in 0..n {
            self.timeline.span(
                format!("{}: replicated ({} blocks)", ck.name(), launch.num_blocks()),
                Track::Node(i as u32),
                Category::Callback,
                t0,
                t,
            );
            node_stats.emit_counters(&mut self.timeline, Track::Node(i as u32), t0);
            self.timeline.reserve_lane(Track::Node(i as u32), end);
        }
        Ok((
            LaunchReport {
                mode: ExecMode::Replicated { cause },
                times: PhaseTimes {
                    partial: 0.0,
                    allgather: 0.0,
                    callback: t,
                    broadcast: 0.0,
                },
                node_stats,
                wire_bytes: 0,
            },
            end,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_source;
    use cucc_gpu_model::{GpuDevice, GpuSpec};

    const LISTING1: &str = "__global__ void vec_copy(char* src, char* dest, int n) {
        int id = blockDim.x * blockIdx.x + threadIdx.x;
        if (id < n) dest[id] = src[id];
    }";

    fn spec(n: u32) -> ClusterSpec {
        ClusterSpec::simd_focused().with_nodes(n)
    }

    #[test]
    fn three_phase_copies_correctly_on_two_nodes() {
        let ck = compile_source(LISTING1).unwrap();
        let mut cl = CuccCluster::new(spec(2), RuntimeConfig::default());
        let src = cl.alloc(1200);
        let dest = cl.alloc(1200);
        let data: Vec<u8> = (0..1200).map(|i| (i % 251) as u8).collect();
        cl.h2d(src, &data);
        let report = cl
            .launch(
                &ck,
                LaunchConfig::cover1(1200, 256),
                &[Arg::Buffer(src), Arg::Buffer(dest), Arg::int(1200)],
            )
            .unwrap();
        match &report.mode {
            ExecMode::ThreePhase {
                partial_blocks_per_node,
                callback_blocks,
                ..
            } => {
                assert_eq!(*partial_blocks_per_node, 2);
                assert_eq!(*callback_blocks, 1);
            }
            other => panic!("expected three-phase, got {other:?}"),
        }
        assert_eq!(cl.d2h(dest), data);
        assert!(report.times.allgather > 0.0);
        assert!(report.times.partial > 0.0);
    }

    #[test]
    fn matches_gpu_reference_across_node_counts() {
        let ck = compile_source(
            "__global__ void saxpy(float* x, float* y, float a, int n) {
                int id = blockDim.x * blockIdx.x + threadIdx.x;
                if (id < n) y[id] = a * x[id] + y[id];
            }",
        )
        .unwrap();
        let n = 5000usize;
        let xs: Vec<f32> = (0..n).map(|i| i as f32 * 0.25).collect();
        let ys: Vec<f32> = (0..n).map(|i| (n - i) as f32).collect();
        let launch = LaunchConfig::cover1(n as u64, 128);

        // GPU reference.
        let mut gpu = GpuDevice::new(GpuSpec::a100());
        let gx = gpu.alloc(n * 4);
        let gy = gpu.alloc(n * 4);
        gpu.pool_mut().write_f32(gx, &xs);
        gpu.pool_mut().write_f32(gy, &ys);
        gpu.launch(
            &ck.kernel,
            launch,
            &[
                Arg::Buffer(gx),
                Arg::Buffer(gy),
                Arg::float(1.5),
                Arg::int(n as i64),
            ],
        )
        .unwrap();
        let reference = gpu.d2h(gy);

        for nodes in [1u32, 2, 3, 4, 8] {
            let mut cl = CuccCluster::new(spec(nodes), RuntimeConfig::default());
            let cx = cl.alloc(n * 4);
            let cy = cl.alloc(n * 4);
            cl.h2d_f32(cx, &xs);
            cl.h2d_f32(cy, &ys);
            cl.launch(
                &ck,
                launch,
                &[
                    Arg::Buffer(cx),
                    Arg::Buffer(cy),
                    Arg::float(1.5),
                    Arg::int(n as i64),
                ],
            )
            .unwrap();
            assert_eq!(cl.d2h(cy), reference, "nodes={nodes}");
        }
    }

    #[test]
    fn replicated_fallback_still_correct() {
        // Histogram with atomics: not distributable, must replicate and
        // still match the GPU.
        let ck = compile_source(
            "__global__ void hist(int* bins, int* data, int n) {
                int id = blockDim.x * blockIdx.x + threadIdx.x;
                if (id < n) atomicAdd(&bins[data[id] % 16], 1);
            }",
        )
        .unwrap();
        assert!(!ck.is_distributable());
        let n = 4096usize;
        let data: Vec<i32> = (0..n as i32).map(|i| i * 37 % 1000).collect();
        let launch = LaunchConfig::cover1(n as u64, 256);

        let mut gpu = GpuDevice::new(GpuSpec::a100());
        let gb = gpu.alloc(16 * 4);
        let gd = gpu.alloc(n * 4);
        gpu.pool_mut().write_i32(gd, &data);
        gpu.launch(
            &ck.kernel,
            launch,
            &[Arg::Buffer(gb), Arg::Buffer(gd), Arg::int(n as i64)],
        )
        .unwrap();
        let reference = gpu.d2h(gb);

        let mut cl = CuccCluster::new(spec(4), RuntimeConfig::default());
        let cb = cl.alloc(16 * 4);
        let cd = cl.alloc(n * 4);
        let mut bytes = Vec::new();
        for v in &data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        cl.h2d(cd, &bytes);
        let report = cl
            .launch(
                &ck,
                launch,
                &[Arg::Buffer(cb), Arg::Buffer(cd), Arg::int(n as i64)],
            )
            .unwrap();
        assert!(matches!(report.mode, ExecMode::Replicated { .. }));
        assert_eq!(report.wire_bytes, 0);
        assert_eq!(cl.d2h(cb), reference);
    }

    #[test]
    fn scaling_reduces_partial_time() {
        let ck = compile_source(
            "__global__ void heavy(float* out, int n, int iters) {
                int id = blockDim.x * blockIdx.x + threadIdx.x;
                float acc = 0.0f;
                for (int i = 0; i < iters; i++)
                    acc += (float)(i) * 0.5f;
                if (id < n) out[id] = acc;
            }",
        )
        .unwrap();
        // 1024 blocks of heavy compute: enough blocks to keep every core of
        // a 16-node cluster busy, enough work per block to dwarf the
        // Allgather.
        let n = 262_144u64;
        let launch = LaunchConfig::cover1(n, 256);
        let mut t1 = 0.0;
        for nodes in [1u32, 4, 16] {
            let mut cl = CuccCluster::new(spec(nodes), RuntimeConfig::modeled());
            let out = cl.alloc(n as usize * 4);
            let report = cl
                .launch(
                    &ck,
                    launch,
                    &[Arg::Buffer(out), Arg::int(n as i64), Arg::int(2000)],
                )
                .unwrap();
            if nodes == 1 {
                t1 = report.time();
            } else {
                let speedup = t1 / report.time();
                assert!(
                    speedup > nodes as f64 * 0.5,
                    "nodes={nodes} speedup={speedup}"
                );
            }
        }
    }

    #[test]
    fn modeled_mode_does_not_touch_memory() {
        let ck = compile_source(LISTING1).unwrap();
        let mut cl = CuccCluster::new(spec(2), RuntimeConfig::modeled());
        let src = cl.alloc(1024);
        let dest = cl.alloc(1024);
        cl.h2d(src, &[9u8; 1024]);
        cl.launch(
            &ck,
            LaunchConfig::cover1(1024, 256),
            &[Arg::Buffer(src), Arg::Buffer(dest), Arg::int(1024)],
        )
        .unwrap();
        assert_eq!(cl.d2h(dest), vec![0u8; 1024], "modeled mode leaves memory");
    }

    #[test]
    fn clock_accumulates_and_resets() {
        let ck = compile_source(LISTING1).unwrap();
        let mut cl = CuccCluster::new(spec(2), RuntimeConfig::default());
        let src = cl.alloc(512);
        let dest = cl.alloc(512);
        cl.h2d(src, &[1u8; 512]);
        assert!(cl.clock() > 0.0, "h2d broadcast costs time");
        let before = cl.clock();
        cl.launch(
            &ck,
            LaunchConfig::cover1(512, 256),
            &[Arg::Buffer(src), Arg::Buffer(dest), Arg::int(512)],
        )
        .unwrap();
        assert!(cl.clock() > before);
        cl.reset_clock();
        assert_eq!(cl.clock(), 0.0);
    }

    #[test]
    fn engines_produce_identical_launches() {
        // Same kernel, same data: tree-walk and bytecode (with intra-node
        // parallelism) must agree on memory, stats, times and wire bytes.
        let ck = compile_source(
            "__global__ void saxpy(float* x, float* y, float a, int n) {
                int id = blockDim.x * blockIdx.x + threadIdx.x;
                if (id < n) y[id] = a * x[id] + y[id];
            }",
        )
        .unwrap();
        let n = 10_000usize;
        let xs: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        let ys: Vec<f32> = (0..n).map(|i| i as f32 * 0.125).collect();
        let launch = LaunchConfig::cover1(n as u64, 128);
        let run = |engine: EngineKind, node_threads: usize| {
            let cfg = RuntimeConfig {
                engine,
                node_threads,
                ..RuntimeConfig::default()
            };
            let mut cl = CuccCluster::new(spec(3), cfg);
            let cx = cl.alloc(n * 4);
            let cy = cl.alloc(n * 4);
            cl.h2d_f32(cx, &xs);
            cl.h2d_f32(cy, &ys);
            let report = cl
                .launch(
                    &ck,
                    launch,
                    &[
                        Arg::Buffer(cx),
                        Arg::Buffer(cy),
                        Arg::float(0.75),
                        Arg::int(n as i64),
                    ],
                )
                .unwrap();
            (cl.d2h_f32(cy), report)
        };
        let (mem_tree, rep_tree) = run(EngineKind::TreeWalk, 0);
        let (mem_byte, rep_byte) = run(EngineKind::Bytecode, 0);
        let (mem_par, rep_par) = run(EngineKind::Bytecode, 4);
        assert_eq!(mem_tree, mem_byte);
        assert_eq!(mem_tree, mem_par);
        assert_eq!(rep_tree.node_stats, rep_byte.node_stats);
        assert_eq!(rep_tree.node_stats, rep_par.node_stats);
        assert_eq!(rep_tree.times, rep_byte.times);
        assert_eq!(rep_tree.wire_bytes, rep_byte.wire_bytes);
    }

    #[test]
    fn empty_grid_rejected() {
        let ck = compile_source(LISTING1).unwrap();
        let mut cl = CuccCluster::new(spec(1), RuntimeConfig::default());
        let b = cl.alloc(4);
        let err = cl.launch(
            &ck,
            LaunchConfig::new(0u32, 32u32),
            &[Arg::Buffer(b), Arg::Buffer(b), Arg::int(0)],
        );
        assert!(matches!(err, Err(MigrateError::Launch(_))));
    }

    #[test]
    fn async_default_stream_matches_sync_reports_and_memory() {
        use crate::stream::DEFAULT_STREAM;
        let ck = compile_source(LISTING1).unwrap();
        let data: Vec<u8> = (0..4096).map(|i| (i % 239) as u8).collect();
        let launch = LaunchConfig::cover1(4096, 256);

        let mut sync = CuccCluster::new(spec(3), RuntimeConfig::default());
        let (s_src, s_dest) = (sync.alloc(4096), sync.alloc(4096));
        sync.h2d(s_src, &data);
        let args = [Arg::Buffer(s_src), Arg::Buffer(s_dest), Arg::int(4096)];
        let r1 = sync.launch(&ck, launch, &args).unwrap();
        let r2 = sync.launch(&ck, launch, &args).unwrap();
        let sync_mem = sync.d2h(s_dest);

        let mut asy = CuccCluster::new(spec(3), RuntimeConfig::default());
        let (a_src, a_dest) = (asy.alloc(4096), asy.alloc(4096));
        asy.h2d_async(a_src, &data, DEFAULT_STREAM);
        let args = [Arg::Buffer(a_src), Arg::Buffer(a_dest), Arg::int(4096)];
        let q1 = asy.launch_on(&ck, launch, &args, DEFAULT_STREAM).unwrap();
        let q2 = asy.launch_on(&ck, launch, &args, DEFAULT_STREAM).unwrap();
        asy.synchronize();
        let asy_mem = asy.d2h(a_dest);

        // Per-launch durations and wire traffic are clock-independent:
        // the async default stream reproduces them bit-for-bit.
        assert_eq!(r1.times, q1.times);
        assert_eq!(r2.times, q2.times);
        assert_eq!(r1.wire_bytes, q1.wire_bytes);
        assert_eq!(sync_mem, asy_mem);
        assert_eq!(sync_mem, data);
        // Span *positions* chain physical end times, so the elapsed clock
        // may differ from the serial sum by float association only.
        let (a, b) = (sync.clock(), asy.clock());
        assert!((a - b).abs() <= 1e-12 * a.max(b), "sync={a} async={b}");
    }

    #[test]
    fn independent_streams_overlap_on_the_simulated_clock() {
        // Broadcast an unrelated buffer on one stream while a heavy kernel
        // computes on another: the prefetch should hide under the compute
        // (the kernel's node lanes are free; it only meets the transfer on
        // the network lane, at its Allgather).
        let ck = compile_source(
            "__global__ void heavy(float* out, int n, int iters) {
                int id = blockDim.x * blockIdx.x + threadIdx.x;
                float acc = 0.0f;
                for (int i = 0; i < iters; i++)
                    acc += (float)(i) * 0.5f;
                if (id < n) out[id] = acc;
            }",
        )
        .unwrap();
        let n = 16_384u64;
        let launch = LaunchConfig::cover1(n, 256);
        let payload = vec![1u8; 1 << 20];

        let elapsed = |overlap: bool| {
            let mut cl = CuccCluster::new(spec(4), RuntimeConfig::default());
            let out = cl.alloc(n as usize * 4);
            let other = cl.alloc(payload.len());
            let args = [Arg::Buffer(out), Arg::int(n as i64), Arg::int(400)];
            if overlap {
                let s1 = cl.stream_create();
                let s2 = cl.stream_create();
                cl.h2d_async(other, &payload, s2);
                cl.launch_on(&ck, launch, &args, s1).unwrap();
                cl.synchronize()
            } else {
                cl.h2d(other, &payload);
                cl.launch(&ck, launch, &args).unwrap();
                cl.clock()
            }
        };
        let serial = elapsed(false);
        let overlapped = elapsed(true);
        assert!(
            overlapped < serial * 0.95,
            "expected overlap: serial={serial} overlapped={overlapped}"
        );
    }

    #[test]
    fn cross_stream_hazard_serializes_bitwise() {
        // Stream 2's kernel reads the buffer stream 1 is broadcasting:
        // the RAW hazard must serialize it exactly like a single stream.
        let ck = compile_source(LISTING1).unwrap();
        let data = vec![7u8; 8192];
        let launch = LaunchConfig::cover1(8192, 256);

        let run = |two_streams: bool| {
            let mut cl = CuccCluster::new(spec(3), RuntimeConfig::default());
            let src = cl.alloc(8192);
            let dest = cl.alloc(8192);
            let s1 = cl.stream_create();
            let s2 = if two_streams { cl.stream_create() } else { s1 };
            cl.h2d_async(src, &data, s1);
            let args = [Arg::Buffer(src), Arg::Buffer(dest), Arg::int(8192)];
            cl.launch_on(&ck, launch, &args, s2).unwrap();
            (cl.synchronize(), cl.d2h(dest))
        };
        let (t_one, mem_one) = run(false);
        let (t_two, mem_two) = run(true);
        assert_eq!(t_one.to_bits(), t_two.to_bits());
        assert_eq!(mem_one, mem_two);
        assert_eq!(mem_one, data);
    }

    #[test]
    fn events_order_cross_stream_work() {
        let ck = compile_source(LISTING1).unwrap();
        let data = vec![3u8; 4096];
        let launch = LaunchConfig::cover1(4096, 256);
        let mut cl = CuccCluster::new(spec(2), RuntimeConfig::default());
        let src = cl.alloc(4096);
        let dest = cl.alloc(4096);
        let scratch = cl.alloc(64);
        let s1 = cl.stream_create();
        let s2 = cl.stream_create();
        cl.h2d_async(src, &data, s1);
        let ready = cl.event_record(s1);
        // Unrelated tiny transfer keeps s2 formally busy first.
        cl.h2d_async(scratch, &[1u8; 64], s2);
        cl.stream_wait_event(s2, ready);
        let args = [Arg::Buffer(src), Arg::Buffer(dest), Arg::int(4096)];
        cl.launch_on(&ck, launch, &args, s2).unwrap();
        cl.synchronize();
        assert_eq!(cl.d2h(dest), data);
    }

    #[test]
    fn sync_ops_drain_pending_async_work() {
        let ck = compile_source(LISTING1).unwrap();
        let data = vec![9u8; 2048];
        let mut cl = CuccCluster::new(spec(2), RuntimeConfig::default());
        let src = cl.alloc(2048);
        let dest = cl.alloc(2048);
        let s = cl.stream_create();
        cl.h2d_async(src, &data, s);
        // The synchronous launch must see the broadcast completed — both
        // functionally and on the clock.
        let before = cl.clock();
        let args = [Arg::Buffer(src), Arg::Buffer(dest), Arg::int(2048)];
        cl.launch(&ck, LaunchConfig::cover1(2048, 256), &args)
            .unwrap();
        assert_eq!(cl.d2h(dest), data);
        assert!(cl.clock() > before);
        assert!(cl.timeline().lanes_horizon() <= cl.clock());
    }

    #[test]
    fn single_node_is_cupbop_baseline() {
        // One node ⇒ no communication at all, but still the partial phase.
        let ck = compile_source(LISTING1).unwrap();
        let mut cl = CuccCluster::new(spec(1), RuntimeConfig::default());
        let src = cl.alloc(2048);
        let dest = cl.alloc(2048);
        cl.h2d(src, &[3u8; 2048]);
        let r = cl
            .launch(
                &ck,
                LaunchConfig::cover1(2048, 256),
                &[Arg::Buffer(src), Arg::Buffer(dest), Arg::int(2048)],
            )
            .unwrap();
        assert_eq!(r.times.allgather, 0.0);
        assert_eq!(r.wire_bytes, 0);
        assert_eq!(cl.d2h(dest), vec![3u8; 2048]);
    }
}
