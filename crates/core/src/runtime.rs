//! The CuCC cluster runtime: CUDA-like API over a simulated CPU cluster,
//! executing launches with the three-phase workflow.

use crate::compile::CompiledKernel;
use crate::error::MigrateError;
use crate::graph::{
    segments_for, uncovered_ranges, GraphOp, LaunchGraph, PendingGather, ReplayStats,
};
use crate::report::{ExecMode, FaultSummary, LaunchReport, PhaseTimes};
use crate::schedule::{
    plan_schedule, schedule_key, LaunchSchedule, ScheduleCache, ScheduleDecision,
};
use crate::state::{Checkpoint, ClusterState};
use crate::stream::{EventId, StreamId, StreamSet};
use crate::transfer::HostScalar;
use cucc_analysis::{
    certify_program, global_extents, LaunchFootprints, Partition, ReplicationCause, ThreePhasePlan,
};
use cucc_cluster::{ClusterSpec, SimCluster};
use cucc_exec::{Arg, BufferId, CertMode, EngineKind, ExecOptions, Program};
use cucc_ir::LaunchConfig;
use cucc_net::{
    allgather_cost_traced, allgather_cost_traced_fallible, broadcast_traced, collective_step_time,
    owner_bytes, partial_gather_cost_traced, AllgatherAlgo, AllgatherPlacement, FaultInjector,
    FaultPlan, GatherSegment,
};
use cucc_trace::{Category, Mark, Timeline, Track, WIRE_BYTES};
use std::collections::BTreeMap;

/// Whether launches execute functionally or are only timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionFidelity {
    /// Every block really executes on its node's memory; collectives really
    /// move bytes; results are exact. Use for correctness work.
    Functional,
    /// Only representative blocks are interpreted (sampled profile); memory
    /// is not updated. Use for paper-scale performance sweeps where full
    /// interpretation would be prohibitive.
    Modeled,
}

/// Runtime knobs.
///
/// Construct via [`RuntimeConfig::builder`] (or [`RuntimeConfig::default`] /
/// [`RuntimeConfig::modeled`] plus struct update). Direct field-by-field
/// struct literals are considered legacy style: every added knob (like
/// [`RuntimeConfig::faults`]) breaks them, while the builder and struct
/// update stay source-compatible.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// Functional vs modeled execution.
    pub fidelity: ExecutionFidelity,
    /// Allgather algorithm (paper uses ring-style MPI allgather).
    pub allgather_algo: AllgatherAlgo,
    /// Buffer placement (§2.3: CuCC uses balanced **in-place**).
    pub placement: AllgatherPlacement,
    /// After every functional launch, assert that all written buffers are
    /// identical on every node (the paper's consistency invariant).
    pub verify_consistency: bool,
    /// Blocks sampled per profile.
    pub profile_samples: usize,
    /// Which executor runs functional blocks (bytecode engine by default;
    /// the tree-walk interpreter remains available as the oracle).
    pub engine: EngineKind,
    /// Worker threads per node for intra-node block parallelism
    /// (`0` = derive from host parallelism and the node's core count).
    pub node_threads: usize,
    /// Run the dynamic kernel sanitizer (per-buffer write log + OOB trap)
    /// before every functional launch and cross-check its observations
    /// against the static verifier's verdicts. Purely observational except
    /// that a soundness violation (sanitizer sees a race/OOB the verifier
    /// proved safe) fails the launch. Ignored in modeled fidelity.
    pub sanitize: bool,
    /// Deterministic fault plan: scripted node kills, stragglers, and
    /// dropped collective steps, plus the retry policy used to detect
    /// them. [`FaultPlan::none`] (the default) keeps the fault machinery
    /// entirely out of the launch path, so fault-free sessions reproduce
    /// pre-fault reports bit-for-bit.
    pub faults: FaultPlan,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            fidelity: ExecutionFidelity::Functional,
            allgather_algo: AllgatherAlgo::Ring,
            placement: AllgatherPlacement::InPlace,
            verify_consistency: true,
            profile_samples: 3,
            engine: EngineKind::default(),
            node_threads: 0,
            sanitize: false,
            faults: FaultPlan::none(),
        }
    }
}

impl RuntimeConfig {
    /// Timing-only configuration for performance sweeps.
    pub fn modeled() -> RuntimeConfig {
        RuntimeConfig {
            fidelity: ExecutionFidelity::Modeled,
            verify_consistency: false,
            ..RuntimeConfig::default()
        }
    }

    /// Start building a configuration from the defaults.
    pub fn builder() -> RuntimeConfigBuilder {
        RuntimeConfigBuilder {
            config: RuntimeConfig::default(),
        }
    }
}

/// Chainable constructor for [`RuntimeConfig`] — the supported way to set
/// runtime knobs without naming every field.
///
/// ```
/// use cucc_core::runtime::RuntimeConfig;
/// let cfg = RuntimeConfig::builder().node_threads(2).sanitize(true).build();
/// assert!(cfg.sanitize);
/// ```
#[derive(Debug, Clone)]
pub struct RuntimeConfigBuilder {
    config: RuntimeConfig,
}

impl RuntimeConfigBuilder {
    /// Switch to timing-only modeled fidelity (disables consistency
    /// verification, like [`RuntimeConfig::modeled`]).
    pub fn modeled(mut self) -> Self {
        self.config.fidelity = ExecutionFidelity::Modeled;
        self.config.verify_consistency = false;
        self
    }

    /// Set the execution fidelity directly.
    pub fn fidelity(mut self, fidelity: ExecutionFidelity) -> Self {
        self.config.fidelity = fidelity;
        self
    }

    /// Select the functional block executor.
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.config.engine = engine;
        self
    }

    /// Worker threads per node (`0` = derive from the host).
    pub fn node_threads(mut self, threads: usize) -> Self {
        self.config.node_threads = threads;
        self
    }

    /// Enable or disable the dynamic kernel sanitizer.
    pub fn sanitize(mut self, on: bool) -> Self {
        self.config.sanitize = on;
        self
    }

    /// Choose the Allgather algorithm.
    pub fn allgather_algo(mut self, algo: AllgatherAlgo) -> Self {
        self.config.allgather_algo = algo;
        self
    }

    /// Choose the Allgather buffer placement.
    pub fn placement(mut self, placement: AllgatherPlacement) -> Self {
        self.config.placement = placement;
        self
    }

    /// Enable or disable the per-launch consistency check.
    pub fn verify_consistency(mut self, on: bool) -> Self {
        self.config.verify_consistency = on;
        self
    }

    /// Blocks sampled per launch profile.
    pub fn profile_samples(mut self, samples: usize) -> Self {
        self.config.profile_samples = samples;
        self
    }

    /// Install a fault plan (scripted kills/stragglers/drops + retry
    /// policy).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.config.faults = plan;
        self
    }

    /// Finish and return the configuration.
    pub fn build(self) -> RuntimeConfig {
        self.config
    }
}

/// How a pending (elided) gather meets a consuming launch inside a
/// replay.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PendingAction {
    /// Every resolved read lands on data already resident where it runs.
    Covered,
    /// Gather only the uncovered per-owner sub-ranges.
    Narrow(Vec<GatherSegment>),
    /// Fall back to the full deferred Allgather.
    Materialize,
}

/// A CUDA-context-like handle to a simulated CPU cluster.
#[derive(Debug, Clone)]
pub struct CuccCluster {
    sim: SimCluster,
    config: RuntimeConfig,
    /// Unified event record. All time accounting lives here: launches and
    /// host transfers lay spans out on the simulated clock and advance it;
    /// [`CuccCluster::clock`], [`LaunchReport`] phase times and wire bytes
    /// are derived views over the recorded spans and counters.
    timeline: Timeline,
    /// The single ownership boundary for cluster **membership**: logical
    /// node count, per-node liveness, the monotonically increasing
    /// membership epoch and the interned shape registry. Every layer that
    /// reads the cluster shape — planner, scheduler cache, fault recovery,
    /// consistency checks, the CLI — goes through here. In
    /// [`ExecutionFidelity::Modeled`] only one physical node memory is
    /// materialized (paper-scale sweeps would otherwise replicate
    /// gigabytes across 32 pools); the time model still uses the logical
    /// node count this state carries.
    state: ClusterState,
    /// Stream/event state and the RAW/WAW/WAR hazard tracker behind the
    /// async command-queue API. Empty (default stream only, nothing
    /// pending) unless the async entry points are used.
    streams: StreamSet,
    /// Observations of the most recent sanitized launch (populated only
    /// when [`RuntimeConfig::sanitize`] is on).
    last_sanitize: Option<cucc_exec::SanitizeReport>,
    /// The fault injector, seeded from [`RuntimeConfig::faults`]. `None`
    /// when the plan is empty, which keeps every fault branch off the
    /// launch path (the bit-for-bit guarantee).
    fault_state: Option<FaultInjector>,
    /// Memoized launch schedules (graph replay). Keyed on the interned
    /// membership-shape id from [`ClusterState`], so entries survive
    /// membership changes and become valid again when the cluster returns
    /// to a previously seen shape (kill → join back).
    schedule_cache: ScheduleCache,
    /// Elided Allgathers: buffers whose gathered region is currently
    /// inconsistent across nodes (each node holds its own slice plus any
    /// partially gathered extras). Consulted by every consistency check
    /// and materialized lazily — at downloads, graph-external launches,
    /// or when a graph consumer's footprint is not covered. Empty unless
    /// graph replay elided a gather, so legacy paths are untouched.
    pending: BTreeMap<BufferId, PendingGather>,
}

impl CuccCluster {
    /// Build a runtime over `spec.nodes` simulated nodes from the unified
    /// front-end options — a [`crate::RunOptions`] value or anything
    /// convertible into one (a bare [`RuntimeConfig`] included, which is
    /// what keeps legacy `(spec, config)` call sites working verbatim).
    ///
    /// The cluster consumes the runtime knobs ([`crate::RunOptions::runtime`]);
    /// session-level options (stream fan-out, graph iterations, checkpoint
    /// paths) configure the layers above it — the CLI driver and the
    /// serving front-end.
    pub fn with_options(spec: ClusterSpec, options: impl Into<crate::RunOptions>) -> CuccCluster {
        let config = options.into().runtime;
        let logical_nodes = spec.nodes as usize;
        let sim_spec = if config.fidelity == ExecutionFidelity::Modeled {
            spec.with_nodes(1)
        } else {
            spec
        };
        let fault_state = if config.faults.is_empty() {
            None
        } else {
            Some(FaultInjector::new(config.faults.clone()))
        };
        CuccCluster {
            sim: SimCluster::new(sim_spec),
            config,
            timeline: Timeline::new(),
            state: ClusterState::new(logical_nodes),
            streams: StreamSet::new(),
            last_sanitize: None,
            fault_state,
            schedule_cache: ScheduleCache::new(),
            pending: BTreeMap::new(),
        }
    }

    /// Legacy constructor, kept as a thin shim over
    /// [`CuccCluster::with_options`].
    #[deprecated(note = "use CuccCluster::with_options — RunOptions subsumes RuntimeConfig")]
    pub fn new(spec: ClusterSpec, config: RuntimeConfig) -> CuccCluster {
        CuccCluster::with_options(spec, config)
    }

    /// Logical node ids that are still alive, in ascending order.
    fn alive_ids(&self) -> Vec<u32> {
        self.state.alive_ids()
    }

    /// Number of nodes still participating in launches.
    pub fn active_nodes(&self) -> usize {
        self.state.active_nodes()
    }

    /// Liveness of one logical node (nodes die only under an injected
    /// fault plan; without one this is always `true`, and dead nodes can
    /// rejoin via `join:` fault events).
    pub fn is_alive(&self, node: usize) -> bool {
        self.state.is_alive(node)
    }

    /// The membership epoch: bumped once per membership change (death,
    /// revival, growth). A launch planned at epoch `e` is valid only while
    /// the epoch stays `e`.
    pub fn epoch(&self) -> u64 {
        self.state.epoch()
    }

    /// The elastic membership state (epoch, liveness, shape registry).
    pub fn cluster_state(&self) -> &ClusterState {
        &self.state
    }

    /// The sanitizer report of the most recent launch, when
    /// [`RuntimeConfig::sanitize`] is enabled.
    pub fn sanitize_report(&self) -> Option<&cucc_exec::SanitizeReport> {
        self.last_sanitize.as_ref()
    }

    /// Number of (logical) nodes.
    pub fn num_nodes(&self) -> usize {
        self.state.logical_nodes()
    }

    /// Cluster hardware description.
    pub fn spec(&self) -> &ClusterSpec {
        &self.sim.spec
    }

    /// Simulated seconds elapsed (kernel launches + host transfers).
    /// Derived from the trace timeline, which owns the simulated clock.
    pub fn clock(&self) -> f64 {
        self.timeline.clock()
    }

    /// Reset the simulated clock and drop the recorded trace (e.g. to time
    /// a region). Stream handles stay valid; pending async work and
    /// recorded events are discarded along with the trace.
    pub fn reset_clock(&mut self) {
        self.timeline.reset();
        self.streams.reset();
    }

    /// The recorded trace timeline (spans, counters, simulated clock).
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Session-wide phase breakdown derived from the timeline: every launch
    /// and host transfer since construction (or the last
    /// [`CuccCluster::reset_clock`]). Unlike per-launch [`LaunchReport`]
    /// times, this includes h2d broadcast time under
    /// [`PhaseTimes::broadcast`].
    pub fn session_times(&self) -> PhaseTimes {
        PhaseTimes {
            // Within one launch every node's phase span has the same
            // duration, so node 0's track carries the per-launch phase
            // times; summing it in recording order reproduces the legacy
            // per-launch accumulation exactly.
            partial: self.timeline.time_in_on(Track::Node(0), Category::Partial),
            allgather: self.timeline.time_in(Category::Allgather),
            callback: self.timeline.time_in_on(Track::Node(0), Category::Callback),
            broadcast: self.timeline.time_in(Category::Broadcast),
            retry: self.timeline.time_in(Category::Retry),
            reexec: self
                .timeline
                .max_track_sum_since(Mark::default(), Category::Reexec),
        }
    }

    /// Total bytes moved across the network since construction (or the last
    /// [`CuccCluster::reset_clock`]) — Allgathers *and* h2d broadcasts —
    /// derived from the timeline's wire-byte counters.
    pub fn wire_bytes(&self) -> u64 {
        self.timeline.wire_bytes()
    }

    /// Direct access to the underlying simulator (tests, diagnostics).
    pub fn sim(&self) -> &SimCluster {
        &self.sim
    }

    /// Mutable access to the underlying simulator — intended for fault
    /// injection in tests (e.g. corrupting one node's memory to verify the
    /// consistency checker fires). Not part of the stable API surface.
    pub fn sim_mut(&mut self) -> &mut SimCluster {
        &mut self.sim
    }

    /// `cudaMalloc`: replicated allocation on every node.
    pub fn alloc(&mut self, bytes: usize) -> BufferId {
        self.sim.alloc(bytes)
    }

    /// Drain pending async work before a synchronous op touches the clock.
    /// No-op on pure-sync sessions, so the legacy clock arithmetic is
    /// untouched when the stream API is never used.
    fn sync_point(&mut self) -> Result<(), MigrateError> {
        if self.streams.pending() {
            self.synchronize()?;
        }
        Ok(())
    }

    /// Record one host-side transfer span starting at `t0`, reserve the
    /// host lane for it, and return its end time. The single recording
    /// path behind `h2d`/`d2h`/`d2h_f32`/`h2d_f32` and their async
    /// variants.
    fn record_host_transfer(
        &mut self,
        name: &'static str,
        category: Category,
        t0: f64,
        duration: f64,
    ) -> f64 {
        self.timeline
            .span(name, Track::Host, category, t0, duration);
        let end = t0 + duration;
        // Instantaneous ops (d2h is free in the time model) occupy no link
        // time, so they must not push the host lane's ready time forward.
        if duration > 0.0 {
            self.timeline.reserve_lane(Track::Host, end);
        }
        end
    }

    /// Broadcast `data` to every node's copy of `buf` and record the
    /// transfer starting at `t0`. Returns the broadcast duration. A
    /// broadcast occupies the host's injection link (the host lane), not
    /// the inter-node fabric the collectives serialize on.
    fn perform_h2d(&mut self, buf: BufferId, data: &[u8], t0: f64) -> f64 {
        self.sim.write_all(buf, data);
        let bt = broadcast_traced(
            &self.sim.spec.net,
            self.state.logical_nodes(),
            data.len() as u64,
            &mut self.timeline,
            t0,
            "h2d broadcast",
        );
        self.record_host_transfer("h2d", Category::H2d, t0, bt);
        bt
    }

    /// Validate that `buf` names an allocation and return its byte size.
    fn check_buffer(&self, buf: BufferId, op: &str) -> Result<usize, MigrateError> {
        let pool = self.sim.node(0);
        if buf.index() >= pool.len() {
            return Err(MigrateError::Transfer(format!(
                "{op}: buffer id {} was never allocated",
                buf.index()
            )));
        }
        Ok(pool.size_of(buf))
    }

    /// Validate an upload payload against the destination allocation.
    fn check_upload<T: HostScalar>(&self, buf: BufferId, n: usize) -> Result<(), MigrateError> {
        let size = self.check_buffer(buf, "upload")?;
        if n * T::SIZE != size {
            return Err(MigrateError::Transfer(format!(
                "upload: {n} {} elements ({} bytes) do not fill buffer id {} ({size} bytes)",
                T::NAME,
                n * T::SIZE,
                buf.index()
            )));
        }
        Ok(())
    }

    /// Validate a download source and return its byte size.
    fn check_download<T: HostScalar>(&self, buf: BufferId) -> Result<usize, MigrateError> {
        let size = self.check_buffer(buf, "download")?;
        if size % T::SIZE != 0 {
            return Err(MigrateError::Transfer(format!(
                "download: buffer id {} ({size} bytes) is not a whole number of {} elements",
                buf.index(),
                T::NAME
            )));
        }
        Ok(size)
    }

    /// The physical pool downloads read: node 0 normally, the first
    /// surviving node once faults have killed nodes (dead pools hold stale
    /// pre-recovery bytes). Modeled fidelity materializes only pool 0.
    fn read_node(&self) -> usize {
        if self.sim.spec.nodes as usize == self.state.logical_nodes() {
            self.state.alive().iter().position(|&a| a).unwrap_or(0)
        } else {
            0
        }
    }

    /// Total allocated buffer bytes held by one node — the payload a
    /// joining node's state transfer moves, and the dominant term of a
    /// checkpoint's size.
    fn node_state_bytes(&self) -> u64 {
        let pool = self.sim.node(self.read_node());
        (0..pool.len())
            .map(|i| pool.size_of(BufferId(i as u32)) as u64)
            .sum()
    }

    /// Admit every scripted `join:` event whose time has come. Called at
    /// launch boundaries (and before a checkpoint), never inside a launch's
    /// report window — the joiner's state transfer is recorded as a
    /// broadcast, which launch reports assert they never contain.
    fn process_joins(&mut self) -> Result<(), MigrateError> {
        if self.fault_state.is_none() {
            return Ok(());
        }
        loop {
            let t = self.timeline.clock();
            let n = self.state.logical_nodes();
            let ripe = self.fault_state.as_ref().unwrap().joins_pending(t);
            // A join for a currently-alive slot stays pending — it fires
            // at the first boundary that finds the slot dead (a `kill` at
            // the same timestamp is admitted first, mid-launch).
            let Some(&node) = ripe
                .iter()
                .find(|&&jn| (jn as usize) >= n || !self.state.is_alive(jn as usize))
            else {
                return Ok(());
            };
            self.admit_join(node, t)?;
        }
    }

    /// Admit one join at a launch boundary: revive a dead slot, or grow
    /// the cluster by one when `node` names the next fresh id. The joiner
    /// receives the full cluster state from the first surviving node
    /// (pending gathers are flushed first so that state is globally
    /// consistent), and the membership epoch advances.
    fn admit_join(&mut self, node: u32, t: f64) -> Result<(), MigrateError> {
        let n = self.state.logical_nodes();
        let nn = node as usize;
        let inj = self.fault_state.as_mut().unwrap();
        inj.take_join(node, t);
        // The join supersedes whatever kill(s) took this slot down.
        inj.absorb_kills(node, t);
        if nn < n && self.state.is_alive(nn) {
            // Already a member: the join is a no-op (but stays consumed).
            return Ok(());
        }
        if nn > n {
            return Err(MigrateError::Launch(format!(
                "join:node={node} skips ids — the cluster has {n} node slots; \
                 a growth join must use node={n}"
            )));
        }
        // The joiner must see globally consistent memory: flush deferred
        // gathers before cloning the donor's pool.
        let bufs: Vec<BufferId> = self.pending.keys().copied().collect();
        for buf in bufs {
            self.materialize_buffer(buf);
        }
        let donor = self.read_node();
        if self.config.fidelity == ExecutionFidelity::Functional {
            if nn == n {
                self.sim.add_node_from(donor);
            } else {
                self.sim.copy_node_state(donor, nn);
            }
        }
        if nn == n {
            self.state.grow();
        } else {
            self.state.mark_alive(nn);
        }
        let bytes = self.node_state_bytes();
        let t0 = self.timeline.clock();
        // One donor, one receiver: a 2-party broadcast prices the p2p
        // state transfer and records its wire traffic.
        let dur = broadcast_traced(
            &self.sim.spec.net,
            2,
            bytes,
            &mut self.timeline,
            t0,
            &format!("join: state transfer to node {node}"),
        );
        if dur > 0.0 {
            self.timeline.reserve_lane(Track::Network, t0 + dur);
        }
        self.timeline.advance(dur);
        Ok(())
    }

    /// Host→device copy: broadcast `data` to every node's replica of `buf`,
    /// charged to the clock. The generic, validated entry point behind
    /// [`CuccCluster::h2d`] and [`CuccCluster::h2d_f32`]. Records the
    /// broadcast on the timeline — including the wire traffic the
    /// pre-timeline accounting never attributed anywhere.
    pub fn upload<T: HostScalar>(&mut self, buf: BufferId, data: &[T]) -> Result<(), MigrateError> {
        self.check_upload::<T>(buf, data.len())?;
        self.sync_point()?;
        // A whole-buffer broadcast makes every replica identical: any
        // deferred gather for this buffer is moot.
        self.pending.remove(&buf);
        let t0 = self.timeline.clock();
        let bt = self.perform_h2d(buf, &T::encode(data), t0);
        self.timeline.advance(bt);
        Ok(())
    }

    /// Device→host copy of a whole buffer. Free in the time model, but
    /// recorded on the timeline's host track. The generic, validated entry
    /// point behind [`CuccCluster::d2h`] and [`CuccCluster::d2h_f32`].
    pub fn download<T: HostScalar>(&mut self, buf: BufferId) -> Result<Vec<T>, MigrateError> {
        self.check_download::<T>(buf)?;
        self.sync_point()?;
        // The host observes memory: an elided gather must happen now.
        self.materialize_buffer(buf);
        let t = self.timeline.clock();
        self.record_host_transfer("d2h", Category::D2h, t, 0.0);
        Ok(T::decode(self.sim.read(self.read_node(), buf)))
    }

    /// Untyped host→device broadcast. Panicking shim over
    /// [`CuccCluster::upload`] for legacy call sites.
    #[deprecated(note = "use CuccCluster::upload — typed, validated, Result-based")]
    pub fn h2d(&mut self, buf: BufferId, data: &[u8]) {
        self.upload(buf, data)
            .unwrap_or_else(|e| panic!("h2d failed: {e}"));
    }

    /// Untyped device→host copy. Panicking shim over
    /// [`CuccCluster::download`] for legacy call sites.
    #[deprecated(note = "use CuccCluster::download — typed, validated, Result-based")]
    pub fn d2h(&mut self, buf: BufferId) -> Vec<u8> {
        self.download(buf)
            .unwrap_or_else(|e| panic!("d2h failed: {e}"))
    }

    /// Typed convenience reads. Panicking shim over
    /// [`CuccCluster::download`] for legacy call sites.
    #[deprecated(note = "use CuccCluster::download::<f32>")]
    pub fn d2h_f32(&mut self, buf: BufferId) -> Vec<f32> {
        self.download(buf)
            .unwrap_or_else(|e| panic!("d2h_f32 failed: {e}"))
    }

    /// Typed convenience writes (broadcast). Panicking shim over
    /// [`CuccCluster::upload`] for legacy call sites.
    #[deprecated(note = "use CuccCluster::upload::<f32>")]
    pub fn h2d_f32(&mut self, buf: BufferId, data: &[f32]) {
        self.upload(buf, data)
            .unwrap_or_else(|e| panic!("h2d_f32 failed: {e}"));
    }

    /// The pure **planning** stage of a launch: run the launch-time
    /// planner, the sampling profiler and the cost model, and return the
    /// resulting [`LaunchSchedule`] without touching the timeline or any
    /// node's memory. [`CuccCluster::launch`] is exactly
    /// `plan` + [`execute at the current clock`](CuccCluster::launch_on).
    pub fn plan(
        &self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
    ) -> Result<LaunchSchedule, MigrateError> {
        let active = self.active_nodes();
        if active == 0 {
            return Err(MigrateError::NodeFailure {
                node: None,
                context: format!("planning `{}`", ck.name()),
            });
        }
        plan_schedule(
            ck,
            launch,
            args,
            self.sim.node(self.read_node()),
            &self.sim.spec,
            active,
            &self.config,
        )
    }

    /// Launch a compiled kernel on the cluster (on the default stream,
    /// synchronously: the simulated clock advances past the launch).
    ///
    /// Decides between the three-phase workflow and the replicated fallback
    /// via the launch-time planner, executes (or models) the phases, and
    /// returns the time breakdown.
    pub fn launch(
        &mut self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
    ) -> Result<LaunchReport, MigrateError> {
        self.sync_point()?;
        // A synchronous launch is a membership boundary: scripted joins
        // whose time has come enter the communicator before planning.
        self.process_joins()?;
        // A graph-external launch must see fully gathered memory: the
        // planner probes node memory and the grid may read anywhere.
        self.materialize_args(args);
        let sched = self.plan(ck, launch, args)?;
        if self.config.sanitize && self.config.fidelity == ExecutionFidelity::Functional {
            self.run_sanitizer(ck, launch, args)?;
        }
        let mark = self.timeline.checkpoint();
        let t0 = self.timeline.clock();
        // A synchronous launch starts at the clock and nothing else is in
        // flight, so the network floor is the clock itself; `t0 + partial`
        // can never round below `t0`, so the legacy serial layout — and its
        // exact f64 arithmetic — is reproduced.
        let (report, _end) = self.execute_schedule(ck, launch, args, &sched, t0, t0)?;
        // The report's times and wire bytes are *derived* from the spans
        // and counters this launch recorded; the invariant check asserts
        // they reproduce the directly-computed legacy values bit-for-bit.
        let report = self.derive_report(mark, report, ck);
        self.timeline.advance(report.time());
        self.verify_written(ck, args)?;
        Ok(report)
    }

    /// Run the dynamic sanitizer on a scratch clone of node 0's memory and
    /// cross-validate the static verifier, the same way `oracle.rs`
    /// validates distribution plans: a dynamic race (or OOB) observed on a
    /// launch the verifier proved race-free (or in-bounds) is a soundness
    /// bug and fails the launch loudly. The sanitizer itself is
    /// observational — findings are stored on [`CuccCluster::sanitize_report`],
    /// not treated as errors (the real execution below still traps OOB).
    fn run_sanitizer(
        &mut self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
    ) -> Result<(), MigrateError> {
        let pool = self.sim.node(0);
        let dynamic = cucc_exec::sanitize_launch(&ck.kernel, launch, args, pool);
        let extents: Vec<Option<u64>> = ck
            .kernel
            .params
            .iter()
            .zip(args)
            .map(|(p, a)| match (p, a) {
                (cucc_ir::Param::Buffer { elem, .. }, Arg::Buffer(id)) => {
                    Some((pool.size_of(*id) / elem.size()) as u64)
                }
                _ => None,
            })
            .collect();
        let s = cucc_analysis::verify_launch(&ck.kernel, launch, args, &extents, false, None);
        if !dynamic.races.is_empty() && s.race.is_safe() {
            return Err(MigrateError::Launch(format!(
                "sanitizer soundness violation in `{}`: dynamic write race observed \
                 but the static verifier proved race freedom ({})",
                ck.name(),
                dynamic.summary()
            )));
        }
        if !dynamic.oob.is_empty() && s.bounds.is_safe() {
            return Err(MigrateError::Launch(format!(
                "sanitizer soundness violation in `{}`: dynamic out-of-bounds trapped \
                 but the static verifier proved in-bounds ({})",
                ck.name(),
                dynamic.summary()
            )));
        }
        self.last_sanitize = Some(dynamic);
        Ok(())
    }

    // ---- Async command-queue API -----------------------------------

    /// Create a new stream. Work on distinct streams may overlap on the
    /// simulated clock wherever neither hazards nor resource lanes force
    /// an order.
    pub fn stream_create(&mut self) -> StreamId {
        self.streams.create()
    }

    /// Launch a compiled kernel on `stream` without blocking the clock.
    ///
    /// The launch starts at the latest of: the stream's position, its
    /// RAW/WAW/WAR hazard dependencies on the kernel's buffer arguments,
    /// and the node lanes' ready times (a kernel occupies every node).
    /// The Allgather phase additionally waits for the network lane, which
    /// serializes collectives on the inter-node fabric (host broadcasts
    /// ride the host's injection link instead — the host lane).
    ///
    /// Functional execution is eager (memory effects land in submission
    /// order — always a valid serialization, since hazard and event edges
    /// only point to earlier submissions); only the simulated-time layout
    /// is asynchronous. The returned report carries the same per-phase
    /// durations the default stream would produce.
    pub fn launch_on(
        &mut self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
        stream: StreamId,
    ) -> Result<LaunchReport, MigrateError> {
        if args
            .iter()
            .any(|a| matches!(a, Arg::Buffer(b) if self.pending.contains_key(b)))
        {
            // Async launches do not interleave with deferred gathers:
            // drain the streams and materialize synchronously first (only
            // reachable when graph replay left a gather pending).
            self.synchronize()?;
            self.materialize_args(args);
        }
        let sched = self.plan(ck, launch, args)?;
        let mut t0 = self.streams.dep_floor(stream, &sched.reads, &sched.writes);
        for i in 0..self.state.logical_nodes() {
            t0 = t0.max(self.timeline.lane_ready(Track::Node(i as u32)));
        }
        let net_floor = self.timeline.lane_ready(Track::Network);
        let mark = self.timeline.checkpoint();
        let (report, end) = self.execute_schedule(ck, launch, args, &sched, t0, net_floor)?;
        let report = self.derive_report(mark, report, ck);
        self.streams
            .commit(stream, &sched.reads, &sched.writes, end);
        self.verify_written(ck, args)?;
        Ok(report)
    }

    /// Async host→device broadcast on `stream`. Occupies the host lane
    /// (broadcasts serialize on the host's injection link) and overlaps
    /// with kernel compute on the node lanes. The bytes land immediately
    /// (see [`CuccCluster::launch_on`] on eager functional execution).
    /// The generic, validated twin of [`CuccCluster::upload`].
    pub fn upload_on<T: HostScalar>(
        &mut self,
        buf: BufferId,
        data: &[T],
        stream: StreamId,
    ) -> Result<(), MigrateError> {
        self.check_upload::<T>(buf, data.len())?;
        self.pending.remove(&buf);
        let t0 = self
            .streams
            .dep_floor(stream, &[], &[buf])
            .max(self.timeline.lane_ready(Track::Host));
        let bt = self.perform_h2d(buf, &T::encode(data), t0);
        self.streams.commit(stream, &[], &[buf], t0 + bt);
        Ok(())
    }

    /// Async device→host copy on `stream`. Free in the time model but
    /// hazard-ordered: it waits for the last write to `buf` on the
    /// simulated clock, and later writes wait for it (WAR). The data is
    /// returned immediately — eager functional execution guarantees it
    /// already holds the value the stream order will produce. The generic,
    /// validated twin of [`CuccCluster::download`].
    pub fn download_on<T: HostScalar>(
        &mut self,
        buf: BufferId,
        stream: StreamId,
    ) -> Result<Vec<T>, MigrateError> {
        self.check_download::<T>(buf)?;
        if self.pending.contains_key(&buf) {
            // Same policy as `launch_on`: deferred gathers resolve at a
            // synchronous point, not mid-stream.
            self.synchronize()?;
            self.materialize_buffer(buf);
        }
        let t0 = self
            .streams
            .dep_floor(stream, &[buf], &[])
            .max(self.timeline.lane_ready(Track::Host));
        self.record_host_transfer("d2h", Category::D2h, t0, 0.0);
        self.streams.commit(stream, &[buf], &[], t0);
        Ok(T::decode(self.sim.read(self.read_node(), buf)))
    }

    /// Untyped async broadcast. Panicking shim over
    /// [`CuccCluster::upload_on`] for legacy call sites.
    #[deprecated(note = "use CuccCluster::upload_on")]
    pub fn h2d_async(&mut self, buf: BufferId, data: &[u8], stream: StreamId) {
        self.upload_on(buf, data, stream)
            .unwrap_or_else(|e| panic!("h2d_async failed: {e}"));
    }

    /// Typed async broadcast. Panicking shim over
    /// [`CuccCluster::upload_on`] for legacy call sites.
    #[deprecated(note = "use CuccCluster::upload_on::<f32>")]
    pub fn h2d_async_f32(&mut self, buf: BufferId, data: &[f32], stream: StreamId) {
        self.upload_on(buf, data, stream)
            .unwrap_or_else(|e| panic!("h2d_async_f32 failed: {e}"));
    }

    /// Untyped async device→host copy. Panicking shim over
    /// [`CuccCluster::download_on`] for legacy call sites.
    #[deprecated(note = "use CuccCluster::download_on")]
    pub fn d2h_async(&mut self, buf: BufferId, stream: StreamId) -> Vec<u8> {
        self.download_on(buf, stream)
            .unwrap_or_else(|e| panic!("d2h_async failed: {e}"))
    }

    /// Record an event capturing `stream`'s current position.
    pub fn event_record(&mut self, stream: StreamId) -> EventId {
        self.streams.record_event(stream)
    }

    /// Make all later work on `stream` wait for `event`.
    pub fn stream_wait_event(&mut self, stream: StreamId, event: EventId) {
        self.streams.wait_event(stream, event);
    }

    /// Drain every stream: advance the simulated clock to the end of all
    /// in-flight async work and clear hazard state. Returns the clock.
    /// A no-op (and the clock is untouched) when nothing is pending.
    ///
    /// Fallible as part of the `Result`-based launch surface: draining can
    /// surface deferred failures, and callers should treat it like any
    /// other synchronization point.
    pub fn synchronize(&mut self) -> Result<f64, MigrateError> {
        let horizon = self.streams.horizon().max(self.timeline.lanes_horizon());
        self.timeline.advance_to(horizon);
        self.streams.settle(self.timeline.clock());
        Ok(self.timeline.clock())
    }

    // ---- Graph replay ----------------------------------------------

    /// Schedule-cache counters and contents (diagnostics, the CLI's
    /// hit-rate report).
    pub fn schedule_cache(&self) -> &ScheduleCache {
        &self.schedule_cache
    }

    /// Buffers with a currently deferred (elided) gather.
    pub fn pending_gathers(&self) -> Vec<BufferId> {
        self.pending.keys().copied().collect()
    }

    /// [`CuccCluster::plan`] through the [`ScheduleCache`]: a hit returns
    /// the memoized schedule without touching the planner, probe or
    /// profiler; a miss plans fresh and fills the cache. The key covers
    /// kernel identity, launch geometry, argument fingerprints, the
    /// interned membership-shape id and the engine knobs — so entries
    /// planned for an old shape are never reused after a membership
    /// change, yet warm up again when the cluster returns to that shape.
    pub fn plan_cached(
        &mut self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
    ) -> Result<LaunchSchedule, MigrateError> {
        let shape = self.state.shape_id();
        let key = schedule_key(
            ck,
            launch,
            args,
            self.state.logical_nodes(),
            shape,
            &self.config,
        );
        if let Some(sched) = self.schedule_cache.get(&key) {
            return Ok(sched);
        }
        let sched = self.plan(ck, launch, args)?;
        self.schedule_cache.insert(key, sched.clone());
        Ok(sched)
    }

    /// Replay a captured [`LaunchGraph`] once.
    ///
    /// Ops execute in capture order (a valid topological order of the
    /// dependency DAG). Launch schedules come from the [`ScheduleCache`];
    /// the communication optimizer decides, per gathered region, whether
    /// the Allgather runs in full, is narrowed to uncovered sub-ranges
    /// (partial gather), or is elided entirely (the buffer goes
    /// *pending* — each node keeps just its own slice until a download,
    /// an uncovered consumer, or a graph-external launch materializes
    /// it). Memory after replay + download is bit-identical to running
    /// the same ops uncaptured.
    pub fn graph_replay(&mut self, graph: &LaunchGraph) -> Result<ReplayStats, MigrateError> {
        self.sync_point()?;
        let mut stats = ReplayStats::default();
        let hits0 = self.schedule_cache.hits();
        let misses0 = self.schedule_cache.misses();
        let t_start = self.timeline.clock();
        let mut planned_wire = 0u64;
        let mut gather_wire = 0u64;
        for node in &graph.nodes {
            match &node.op {
                GraphOp::Upload { buf, data } => {
                    self.pending.remove(buf);
                    let t0 = self.timeline.clock();
                    let bt = self.perform_h2d(*buf, data, t0);
                    self.timeline.advance(bt);
                }
                GraphOp::Launch { ck, launch, args } => {
                    // Each replayed launch is a membership boundary, same
                    // as its uncaptured counterpart.
                    self.process_joins()?;
                    let sched = self.plan_cached(ck, *launch, args)?;
                    planned_wire += sched.wire_bytes;
                    let w0 = self.timeline.wire_bytes();
                    self.replay_launch(
                        ck,
                        *launch,
                        args,
                        &sched,
                        node.footprints.as_ref(),
                        &mut stats,
                    )?;
                    gather_wire += self.timeline.wire_bytes() - w0;
                }
            }
        }
        stats.cache_hits = self.schedule_cache.hits() - hits0;
        stats.cache_misses = self.schedule_cache.misses() - misses0;
        // Launch-related wire only (full + partial + materialization
        // gathers); captured uploads broadcast the same bytes captured
        // or not, so they are excluded from the savings accounting.
        stats.wire_bytes = gather_wire;
        stats.wire_bytes_saved = planned_wire.saturating_sub(gather_wire);
        stats.time = self.timeline.clock() - t_start;
        Ok(stats)
    }

    // ---- Elasticity: checkpoint and restore ------------------------

    /// Capture the full cluster state at a quiesce barrier: drain every
    /// stream, flush every deferred gather (a checkpoint taken mid-graph
    /// would otherwise record per-node slices), and admit ripe joins so
    /// the image reflects the membership the next launch would see. The
    /// returned [`Checkpoint`] serializes with [`Checkpoint::encode`] and
    /// restores — into the same or a *different* node count — with
    /// [`CuccCluster::restore`].
    pub fn checkpoint(&mut self) -> Result<Checkpoint, MigrateError> {
        self.synchronize()?;
        self.process_joins()?;
        let bufs: Vec<BufferId> = self.pending.keys().copied().collect();
        for buf in bufs {
            self.materialize_buffer(buf);
        }
        let pool = self.sim.node(self.read_node());
        let buffers: Vec<Vec<u8>> = (0..pool.len())
            .map(|i| pool.bytes(BufferId(i as u32)).to_vec())
            .collect();
        Ok(Checkpoint {
            logical_nodes: self.state.logical_nodes() as u32,
            epoch: self.state.epoch(),
            clock: self.timeline.clock(),
            modeled: self.config.fidelity == ExecutionFidelity::Modeled,
            alive: self.state.alive().to_vec(),
            fault_cursor: self.fault_state.as_ref().map(|inj| inj.cursor()),
            buffers,
        })
    }

    /// [`CuccCluster::checkpoint`], serialized to a file in the versioned
    /// on-disk format. Returns the byte size written.
    pub fn checkpoint_to(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<u64, MigrateError> {
        let ckpt = self.checkpoint()?;
        let bytes = ckpt.encode();
        std::fs::write(path.as_ref(), &bytes).map_err(|e| {
            MigrateError::Checkpoint(format!("writing {}: {e}", path.as_ref().display()))
        })?;
        Ok(bytes.len() as u64)
    }

    /// Rebuild a cluster from a checkpoint. With `spec.nodes` equal to the
    /// checkpointed node count, liveness and epoch survive the restore
    /// and execution resumes bit-identically to the uninterrupted run.
    /// With a *different* node count the restore is a migration: every
    /// node of the new shape starts alive, one epoch past the image's.
    /// Buffer ids are replayed in allocation order, so handles held
    /// before the checkpoint stay valid against the restored cluster.
    pub fn restore(
        spec: ClusterSpec,
        options: impl Into<crate::RunOptions>,
        ckpt: &Checkpoint,
    ) -> Result<CuccCluster, MigrateError> {
        let options = options.into();
        let modeled = options.runtime.fidelity == ExecutionFidelity::Modeled;
        if ckpt.modeled != modeled {
            return Err(MigrateError::Checkpoint(format!(
                "fidelity mismatch: the checkpoint was taken under {} execution \
                 but the restore config uses {}",
                if ckpt.modeled {
                    "modeled"
                } else {
                    "functional"
                },
                if modeled { "modeled" } else { "functional" },
            )));
        }
        let mut cl = CuccCluster::with_options(spec, options);
        if cl.state.logical_nodes() == ckpt.logical_nodes as usize {
            cl.state = ClusterState::restored(ckpt.alive.clone(), ckpt.epoch);
        } else {
            let n = cl.state.logical_nodes();
            cl.state = ClusterState::restored(vec![true; n], ckpt.epoch + 1);
        }
        for bytes in &ckpt.buffers {
            let id = cl.sim.alloc(bytes.len());
            cl.sim.write_all(id, bytes);
        }
        // Consumed one-shot fault events stay consumed across the restore,
        // and the fault RNG continues its checkpointed sequence.
        if let Some((rng, used)) = &ckpt.fault_cursor {
            match cl.fault_state.as_mut() {
                Some(inj) => inj
                    .restore_cursor(*rng, used)
                    .map_err(MigrateError::Checkpoint)?,
                None => {
                    return Err(MigrateError::Checkpoint(
                        "the checkpoint carries a fault-session cursor but the restore \
                         config has no fault plan"
                            .into(),
                    ))
                }
            }
        }
        // Resume the simulated clock at the checkpointed floor.
        cl.timeline.advance_to(ckpt.clock);
        let t = cl.timeline.clock();
        cl.streams.settle(t);
        Ok(cl)
    }

    /// [`CuccCluster::restore`] from a file written by
    /// [`CuccCluster::checkpoint_to`].
    pub fn restore_from(
        spec: ClusterSpec,
        options: impl Into<crate::RunOptions>,
        path: impl AsRef<std::path::Path>,
    ) -> Result<CuccCluster, MigrateError> {
        let bytes = std::fs::read(path.as_ref()).map_err(|e| {
            MigrateError::Checkpoint(format!("reading {}: {e}", path.as_ref().display()))
        })?;
        let ckpt = Checkpoint::decode(&bytes)?;
        CuccCluster::restore(spec, options, &ckpt)
    }

    /// One launch inside a replay: reconcile pending inputs, decide
    /// elision for its own gathers, execute, and record new pending
    /// state.
    fn replay_launch(
        &mut self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
        sched: &LaunchSchedule,
        fps: Option<&LaunchFootprints>,
        stats: &mut ReplayStats,
    ) -> Result<(), MigrateError> {
        self.reconcile_pending(args, sched, fps, stats)?;
        let elide = self.elision_plan(args, sched, fps);

        if self.config.sanitize && self.config.fidelity == ExecutionFidelity::Functional {
            self.run_sanitizer(ck, launch, args)?;
        }
        let mark = self.timeline.checkpoint();
        let t0 = self.timeline.clock();
        let (report, _end) = if elide.iter().any(|&e| e) {
            // Elision is only planned on the fault-free three-phase path.
            let ScheduleDecision::ThreePhase {
                plan,
                part,
                has_tail_block,
            } = &sched.decision
            else {
                unreachable!("elision planned for a non-three-phase launch")
            };
            self.execute_three_phase(
                ck,
                launch,
                args,
                sched,
                plan.clone(),
                part.clone(),
                *has_tail_block,
                t0,
                t0,
                &elide,
            )?
        } else {
            self.execute_schedule(ck, launch, args, sched, t0, t0)?
        };
        let report = self.derive_report(mark, report, ck);
        self.timeline.advance(report.time());

        // Bookkeeping: elided regions go (or stay) pending with fresh
        // slices; fully gathered regions are consistent again.
        if let ScheduleDecision::ThreePhase { plan, part, .. } = &sched.decision {
            for (idx, region) in plan.buffers.iter().enumerate() {
                let Arg::Buffer(id) = args[region.param.index()] else {
                    continue;
                };
                let unit = region.unit * part.chunks_per_node;
                if elide.get(idx).copied().unwrap_or(false) {
                    stats.gathers_elided += 1;
                    self.pending.insert(
                        id,
                        PendingGather {
                            base: region.base,
                            unit,
                            nodes: self.state.logical_nodes() as u64,
                            extras: Vec::new(),
                        },
                    );
                } else if unit > 0 {
                    stats.gathers_full += 1;
                    // `reconcile_pending` only lets a matching-geometry
                    // region write a pending buffer, so the full gather
                    // covered the whole pending span.
                    self.pending.remove(&id);
                }
            }
        }
        self.verify_written(ck, args)?;
        Ok(())
    }

    /// Walk the pending buffers this launch touches and resolve each:
    /// covered (nothing to do), narrowed (partial gather of the uncovered
    /// sub-ranges), or materialized (full fallback gather).
    fn reconcile_pending(
        &mut self,
        args: &[Arg],
        sched: &LaunchSchedule,
        fps: Option<&LaunchFootprints>,
        stats: &mut ReplayStats,
    ) -> Result<(), MigrateError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let mut touched: Vec<BufferId> = sched
            .reads
            .iter()
            .chain(sched.writes.iter())
            .copied()
            .collect();
        touched.sort_unstable();
        touched.dedup();
        for id in touched {
            let Some(pg) = self.pending.get(&id).cloned() else {
                continue;
            };
            match self.pending_action(args, sched, fps, id, &pg) {
                PendingAction::Covered => {}
                PendingAction::Narrow(segs) => self.partial_gather_pending(id, &segs, stats),
                PendingAction::Materialize => {
                    self.materialize_buffer(id);
                    stats.materializations += 1;
                }
            }
        }
        Ok(())
    }

    /// Decide how a pending buffer meets one consuming launch. Sound
    /// fallback in every uncertain case is the full gather.
    fn pending_action(
        &self,
        args: &[Arg],
        sched: &LaunchSchedule,
        fps: Option<&LaunchFootprints>,
        id: BufferId,
        pg: &PendingGather,
    ) -> PendingAction {
        // Fault sessions never elide; if one inherits pending state,
        // resolve it the safe way.
        if self.fault_state.is_some() {
            return PendingAction::Materialize;
        }
        // Replicated consumers run the whole grid on every node: any node
        // may read anywhere.
        let ScheduleDecision::ThreePhase { plan, part, .. } = &sched.decision else {
            return PendingAction::Materialize;
        };
        let Some(fps) = fps else {
            return PendingAction::Materialize;
        };
        let n = self.state.logical_nodes() as u64;
        if pg.nodes != n || pg.unit == 0 {
            return PendingAction::Materialize;
        }
        // Writes: only a same-geometry gathered region may overwrite a
        // pending buffer (each node then rewrites exactly its own slice,
        // which the probe proved dense and slice-local).
        if sched.writes.contains(&id) {
            let matching = plan.buffers.iter().any(|r| {
                matches!(args.get(r.param.index()), Some(Arg::Buffer(b)) if *b == id)
                    && r.base == pg.base
                    && r.unit * part.chunks_per_node == pg.unit
            });
            if !matching {
                return PendingAction::Materialize;
            }
        }
        // Reads: every read of this buffer must have a `Must` footprint;
        // partial-phase reads of node `j` must be covered by node `j`'s
        // resident data, callback-phase reads by data resident everywhere.
        let pbn = part.partial_blocks_per_node;
        let mut per_node: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n as usize];
        let mut everywhere: Vec<(u64, u64)> = Vec::new();
        let mut saw_read = false;
        for (p, fp) in &fps.reads {
            if !matches!(args.get(p.index()), Some(Arg::Buffer(b)) if *b == id) {
                continue;
            }
            saw_read = true;
            if !fp.is_must() {
                return PendingAction::Materialize;
            }
            match fp.byte_ranges(part.callback_start..plan.num_blocks) {
                Some(rs) => everywhere.extend(rs),
                None => return PendingAction::Materialize,
            }
            for j in 0..n {
                match fp.byte_ranges(j * pbn..(j + 1) * pbn) {
                    Some(rs) => per_node[j as usize].extend(rs),
                    None => return PendingAction::Materialize,
                }
            }
        }
        if sched.reads.contains(&id) && !saw_read {
            // The schedule says the kernel reads this buffer but the
            // footprints do not show it — never elide on a mismatch.
            return PendingAction::Materialize;
        }
        let uncovered = uncovered_ranges(pg, &per_node, &everywhere);
        if uncovered.is_empty() {
            PendingAction::Covered
        } else {
            PendingAction::Narrow(segments_for(pg, &uncovered))
        }
    }

    /// Which of this launch's own gathered regions can be deferred: the
    /// fault-free three-phase path, unaliased region buffers, and no
    /// callback-phase read touching the gathered span.
    fn elision_plan(
        &self,
        args: &[Arg],
        sched: &LaunchSchedule,
        fps: Option<&LaunchFootprints>,
    ) -> Vec<bool> {
        if self.fault_state.is_some() {
            return Vec::new();
        }
        let ScheduleDecision::ThreePhase { plan, part, .. } = &sched.decision else {
            return Vec::new();
        };
        let Some(fps) = fps else {
            return Vec::new();
        };
        let n = self.state.logical_nodes() as u64;
        // Aliased region buffers would share one pending entry: keep the
        // full gathers.
        let mut region_bufs = std::collections::BTreeSet::new();
        for region in &plan.buffers {
            match args.get(region.param.index()) {
                Some(Arg::Buffer(id)) => {
                    if !region_bufs.insert(*id) {
                        return Vec::new();
                    }
                }
                _ => return Vec::new(),
            }
        }
        let mut elide = vec![false; plan.buffers.len()];
        for (idx, region) in plan.buffers.iter().enumerate() {
            let unit = region.unit * part.chunks_per_node;
            if unit == 0 {
                continue;
            }
            let Some(Arg::Buffer(id)) = args.get(region.param.index()) else {
                continue;
            };
            let span = (region.base, region.base + unit * n);
            // Callback blocks run redundantly on every node *after* the
            // gather: any callback-phase read of the gathered span needs
            // the gather. (Partial-phase reads precede the gather in both
            // worlds, so they never constrain elision.)
            let mut ok = true;
            for (p, fp) in &fps.reads {
                if !matches!(args.get(p.index()), Some(Arg::Buffer(b)) if b == id) {
                    continue;
                }
                match fp.byte_ranges(part.callback_start..plan.num_blocks) {
                    Some(rs) => {
                        if rs.iter().any(|&(lo, hi)| lo < span.1 && hi > span.0) {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            elide[idx] = ok;
        }
        elide
    }

    /// Run (and trace) a deferred full Allgather for `buf` at the current
    /// clock, advancing past it. No-op when the buffer is not pending.
    /// Recorded *outside* any launch's report window, so launch reports
    /// keep their bit-for-bit derived invariants.
    fn materialize_buffer(&mut self, buf: BufferId) {
        let Some(pg) = self.pending.remove(&buf) else {
            return;
        };
        if pg.is_empty() {
            return;
        }
        let t0 = self.timeline.clock();
        let label = "materialize gather";
        let cost = if self.config.fidelity == ExecutionFidelity::Functional {
            self.sim.allgather_region_traced(
                buf,
                pg.base,
                pg.unit,
                self.config.allgather_algo,
                self.config.placement,
                &mut self.timeline,
                t0,
                label,
            )
        } else {
            allgather_cost_traced(
                pg.nodes as usize,
                pg.unit,
                &self.sim.spec.net,
                self.config.allgather_algo,
                self.config.placement,
                &mut self.timeline,
                t0,
                label,
            )
        };
        if cost.time > 0.0 {
            self.timeline.reserve_lane(Track::Network, t0 + cost.time);
        }
        self.timeline.advance(cost.time);
    }

    /// Materialize every pending buffer among `args` (graph-external
    /// launches). No-op when nothing is pending.
    fn materialize_args(&mut self, args: &[Arg]) {
        if self.pending.is_empty() {
            return;
        }
        for a in args {
            if let Arg::Buffer(id) = a {
                self.materialize_buffer(*id);
            }
        }
    }

    /// Narrow a pending buffer: gather only `segs` (per-owner uncovered
    /// sub-ranges) and remember them as resident-everywhere extras.
    fn partial_gather_pending(
        &mut self,
        buf: BufferId,
        segs: &[GatherSegment],
        stats: &mut ReplayStats,
    ) {
        let Some(pg) = self.pending.get(&buf) else {
            return;
        };
        let (base, len, nodes) = (pg.base, pg.len(), pg.nodes);
        let t0 = self.timeline.clock();
        let label = "partial gather";
        let cost = if self.config.fidelity == ExecutionFidelity::Functional {
            self.sim.partial_gather_region_traced(
                buf,
                base,
                len,
                segs,
                self.config.allgather_algo,
                self.config.placement,
                &mut self.timeline,
                t0,
                label,
            )
        } else {
            let per_owner = owner_bytes(nodes as usize, segs);
            partial_gather_cost_traced(
                &per_owner,
                &self.sim.spec.net,
                self.config.allgather_algo,
                self.config.placement,
                &mut self.timeline,
                t0,
                label,
            )
        };
        if cost.time > 0.0 {
            self.timeline.reserve_lane(Track::Network, t0 + cost.time);
        }
        self.timeline.advance(cost.time);
        stats.gathers_narrowed += 1;
        let pg = self.pending.get_mut(&buf).expect("pending entry");
        let mut extras = std::mem::take(&mut pg.extras);
        extras.extend(segs.iter().map(|s| (base + s.lo, base + s.hi)));
        pg.extras = crate::graph::normalize(extras);
    }

    /// The paper's consistency invariant: after a functional launch every
    /// written buffer must be identical on every node.
    fn verify_written(&self, ck: &CompiledKernel, args: &[Arg]) -> Result<(), MigrateError> {
        if self.config.verify_consistency && self.config.fidelity == ExecutionFidelity::Functional {
            // Dead nodes keep stale pre-recovery bytes; the invariant holds
            // over the surviving communicator.
            let survivors: Vec<usize> = if self.fault_state.is_some() {
                self.alive_ids().iter().map(|&i| i as usize).collect()
            } else {
                (0..self.state.logical_nodes()).collect()
            };
            for p in ck.kernel.written_global_buffers() {
                let Arg::Buffer(id) = args[p.index()] else {
                    continue;
                };
                // A pending (elided-gather) buffer is inconsistent by
                // design until it is materialized; the invariant is
                // checked at materialization points instead.
                if self.pending.contains_key(&id) {
                    continue;
                }
                let ok = if self.fault_state.is_some() {
                    self.sim.consistent_among(id, &survivors)
                } else {
                    self.sim.consistent(id)
                };
                if !ok {
                    return Err(MigrateError::Launch(format!(
                        "consistency violation: buffer `{}` differs across nodes after `{}`",
                        ck.kernel.params[p.index()].name(),
                        ck.name()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Rebuild a launch report's scalar accounting from the timeline
    /// window the launch recorded, asserting it matches the directly
    /// computed values bit-for-bit.
    fn derive_report(&self, mark: Mark, report: LaunchReport, ck: &CompiledKernel) -> LaunchReport {
        let tl = &self.timeline;
        let derived = PhaseTimes {
            // Phase spans are one per node with identical durations
            // (stragglers stretch individual spans; the phase time is the
            // per-node maximum either way).
            partial: tl.max_in_since(mark, Category::Partial),
            // Summing the per-collective parent spans in recording order
            // reproduces the legacy per-region accumulation exactly.
            allgather: tl.time_in_since(mark, Category::Allgather),
            callback: tl.max_in_since(mark, Category::Callback),
            broadcast: tl.time_in_since(mark, Category::Broadcast),
            // Retry spans are wasted wire time: a flat in-order sum.
            retry: tl.time_in_since(mark, Category::Retry),
            // Re-execution rounds are recorded uniformly on every current
            // survivor and survivors only shrink, so the slowest track's
            // in-order sum accumulates every round exactly.
            reexec: tl.max_track_sum_since(mark, Category::Reexec),
        };
        let derived_wire = tl.wire_bytes_since(mark);
        assert_eq!(
            derived.partial.to_bits(),
            report.times.partial.to_bits(),
            "timeline-derived partial time diverged for `{}`",
            ck.name()
        );
        assert_eq!(
            derived.allgather.to_bits(),
            report.times.allgather.to_bits(),
            "timeline-derived allgather time diverged for `{}`",
            ck.name()
        );
        assert_eq!(
            derived.callback.to_bits(),
            report.times.callback.to_bits(),
            "timeline-derived callback time diverged for `{}`",
            ck.name()
        );
        assert_eq!(
            derived.broadcast.to_bits(),
            0.0f64.to_bits(),
            "kernel launches must not record broadcasts (`{}`)",
            ck.name()
        );
        assert_eq!(
            derived.retry.to_bits(),
            report.times.retry.to_bits(),
            "timeline-derived retry time diverged for `{}`",
            ck.name()
        );
        assert_eq!(
            derived.reexec.to_bits(),
            report.times.reexec.to_bits(),
            "timeline-derived re-execution time diverged for `{}`",
            ck.name()
        );
        assert_eq!(
            derived_wire,
            report.wire_bytes,
            "timeline-derived wire bytes diverged for `{}`",
            ck.name()
        );
        LaunchReport {
            times: derived,
            wire_bytes: derived_wire,
            ..report
        }
    }

    /// Compile the kernel for a bytecode-tier launch and attach range
    /// certificates resolved against the live allocation sizes: certified
    /// accesses take the engines' unchecked fast path ([`CertMode::Elide`]).
    /// Under `--sanitize` every certificate is instead *cross-validated* at
    /// runtime ([`CertMode::Validate`]) — a wrong certificate becomes a
    /// hard `CertificateViolation` error, never UB.
    fn compile_certified(
        &self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
    ) -> Result<Program, MigrateError> {
        let mut prog = Program::compile(&ck.kernel, launch, args)?;
        let pool = self.sim.node(0);
        let exts = global_extents(&prog, |b| (b.index() < pool.len()).then(|| pool.size_of(b)));
        let mode = if self.config.sanitize {
            CertMode::Validate
        } else {
            CertMode::Elide
        };
        certify_program(&mut prog, &exts, mode);
        Ok(prog)
    }

    /// The **execution** stage: lay a planned schedule onto the timeline
    /// starting at `t0` (Allgather additionally floored at `net_floor`,
    /// the network lane's ready time) and run the functional blocks.
    /// Returns the launch report and the end time of the launch's last
    /// span. Does not advance the clock — the caller owns that (serially
    /// in [`CuccCluster::launch`], via stream commit in
    /// [`CuccCluster::launch_on`]).
    fn execute_schedule(
        &mut self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
        sched: &LaunchSchedule,
        t0: f64,
        net_floor: f64,
    ) -> Result<(LaunchReport, f64), MigrateError> {
        match &sched.decision {
            ScheduleDecision::ThreePhase {
                plan,
                part,
                has_tail_block,
            } => {
                let plan = plan.clone();
                let part = part.clone();
                let tail = *has_tail_block;
                if self.fault_state.is_some() {
                    self.execute_three_phase_faulty(
                        ck, launch, args, sched, plan, part, tail, t0, net_floor,
                    )
                } else {
                    self.execute_three_phase(
                        ck,
                        launch,
                        args,
                        sched,
                        plan,
                        part,
                        tail,
                        t0,
                        net_floor,
                        &[],
                    )
                }
            }
            ScheduleDecision::Replicated { cause } => {
                let cause = cause.clone();
                if self.fault_state.is_some() {
                    self.execute_replicated_faulty(ck, launch, args, sched, cause, t0)
                } else {
                    self.execute_replicated(ck, launch, args, sched, cause, t0)
                }
            }
        }
    }

    /// `elide` (parallel to `tp.buffers`, or empty for "gather all") marks
    /// regions whose Allgather is deferred by the graph replayer: they
    /// produce no collective spans, no wire bytes, and no functional
    /// gather — each node keeps only its own slice.
    #[allow(clippy::too_many_arguments)]
    fn execute_three_phase(
        &mut self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
        sched: &LaunchSchedule,
        tp: ThreePhasePlan,
        part: Partition,
        has_tail_block: bool,
        t0: f64,
        net_floor: f64,
        elide: &[bool],
    ) -> Result<(LaunchReport, f64), MigrateError> {
        let n = self.state.logical_nodes() as u64;
        let profile = &sched.profile;

        // ---- Phase 1: partial block execution -------------------------
        let pbn = part.partial_blocks_per_node;
        let t_partial = sched.times.partial;
        for i in 0..n {
            self.timeline.span(
                format!("{}: partial ({pbn} blocks)", ck.name()),
                Track::Node(i as u32),
                Category::Partial,
                t0,
                t_partial,
            );
        }

        // ---- Phase 2: balanced in-place Allgather ----------------------
        // `fl(t0 + t_partial) >= t0` for non-negative durations, so with
        // `net_floor == t0` (the synchronous path) the max is exactly the
        // legacy `t0 + t_partial` — serial layouts are preserved
        // bit-for-bit. An async launch may instead wait here for the
        // network lane (an in-flight h2d broadcast).
        let t_ag0 = (t0 + t_partial).max(net_floor);
        let mut t_allgather = 0.0;
        let mut wire_bytes = 0u64;
        for (idx, region) in tp.buffers.iter().enumerate() {
            if elide.get(idx).copied().unwrap_or(false) {
                continue;
            }
            let unit = region.unit * part.chunks_per_node;
            let label = format!(
                "allgather {}",
                ck.kernel.params[region.param.index()].name()
            );
            let cost = allgather_cost_traced(
                n as usize,
                unit,
                &self.sim.spec.net,
                self.config.allgather_algo,
                self.config.placement,
                &mut self.timeline,
                t_ag0 + t_allgather,
                &label,
            );
            t_allgather += cost.time;
            wire_bytes += cost.wire_bytes;
        }
        if t_allgather > 0.0 {
            // Visualization-only: every node blocks in the collective.
            for i in 0..n {
                self.timeline.child_span(
                    "allgather",
                    Track::Node(i as u32),
                    Category::Allgather,
                    t_ag0,
                    t_allgather,
                );
            }
        }

        // ---- Phase 3: callback block execution -------------------------
        let callback_full = part.callback_blocks - u64::from(has_tail_block);
        let t_callback = sched.times.callback;
        let t_cb0 = t_ag0 + t_allgather;
        for i in 0..n {
            self.timeline.span(
                format!("{}: callback ({} blocks)", ck.name(), part.callback_blocks),
                Track::Node(i as u32),
                Category::Callback,
                t_cb0,
                t_callback,
            );
        }

        // ---- Functional execution --------------------------------------
        let mut node_stats = profile.per_block.scaled(pbn + callback_full);
        if has_tail_block {
            node_stats += profile.tail_block;
        }
        if self.config.fidelity == ExecutionFidelity::Functional {
            let assignments: Vec<_> = (0..n).map(|i| i * pbn..(i + 1) * pbn).collect();
            // Three-phase plans are Allgather-distributable — per-block
            // write intervals are disjoint — so intra-node block
            // parallelism is safe to enable here.
            let opts = ExecOptions {
                engine: self.config.engine,
                node_threads: self.config.node_threads,
                block_parallel: true,
            };
            // Compile once per launch; both execution phases reuse it.
            let prog = match opts.engine {
                EngineKind::Bytecode | EngineKind::Simd => {
                    Some(self.compile_certified(ck, launch, args)?)
                }
                EngineKind::TreeWalk => None,
            };
            let stats = if let Some(prog) = &prog {
                self.sim.run_program_parallel(prog, &assignments, &opts)?
            } else {
                self.sim
                    .run_blocks_parallel_opts(&ck.kernel, launch, &assignments, args, &opts)?
            };
            for (idx, region) in tp.buffers.iter().enumerate() {
                if elide.get(idx).copied().unwrap_or(false) {
                    continue;
                }
                let unit = region.unit * part.chunks_per_node;
                let Arg::Buffer(id) = args[region.param.index()] else {
                    return Err(MigrateError::Launch(format!(
                        "parameter {} is not a buffer",
                        region.param
                    )));
                };
                if unit > 0 {
                    self.sim.allgather_region(
                        id,
                        region.base,
                        unit,
                        self.config.allgather_algo,
                        self.config.placement,
                    );
                }
            }
            let cb: Vec<_> = (0..n).map(|_| part.callback_start..tp.num_blocks).collect();
            let cb_stats = if let Some(prog) = &prog {
                self.sim.run_program_parallel(prog, &cb, &opts)?
            } else {
                self.sim
                    .run_blocks_parallel_opts(&ck.kernel, launch, &cb, args, &opts)?
            };
            node_stats = stats[0] + cb_stats[0];
        }

        // Per-node execution statistics as counter samples at launch start.
        for i in 0..n {
            node_stats.emit_counters(&mut self.timeline, Track::Node(i as u32), t0);
        }

        // The launch occupies every node lane until its last phase ends,
        // and the network lane for the Allgather window.
        let end = t_cb0 + t_callback;
        for i in 0..n {
            self.timeline.reserve_lane(Track::Node(i as u32), end);
        }
        if t_allgather > 0.0 {
            self.timeline.reserve_lane(Track::Network, t_cb0);
        }

        Ok((
            LaunchReport {
                mode: ExecMode::ThreePhase {
                    plan: tp,
                    nodes: n,
                    partial_blocks_per_node: pbn,
                    callback_blocks: part.callback_blocks,
                },
                times: PhaseTimes {
                    partial: t_partial,
                    allgather: t_allgather,
                    callback: t_callback,
                    ..PhaseTimes::default()
                },
                node_stats,
                wire_bytes,
                faults: FaultSummary::default(),
            },
            end,
        ))
    }

    fn execute_replicated(
        &mut self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
        sched: &LaunchSchedule,
        cause: ReplicationCause,
        t0: f64,
    ) -> Result<(LaunchReport, f64), MigrateError> {
        let n = self.state.logical_nodes() as u64;
        let t = sched.times.callback;
        let mut node_stats = sched.profile.total;
        if self.config.fidelity == ExecutionFidelity::Functional {
            let all: Vec<_> = (0..n).map(|_| 0..launch.num_blocks()).collect();
            // Replicated launches are exactly the non-distributable ones
            // (atomics, overlapping writes): keep blocks serial per node.
            let opts = ExecOptions {
                engine: self.config.engine,
                node_threads: self.config.node_threads,
                block_parallel: false,
            };
            let stats = self
                .sim
                .run_blocks_parallel_opts(&ck.kernel, launch, &all, args, &opts)?;
            node_stats = stats[0];
        }
        // Every node redundantly runs the whole grid; the legacy accounting
        // files replicated time under the callback phase.
        let end = t0 + t;
        for i in 0..n {
            self.timeline.span(
                format!("{}: replicated ({} blocks)", ck.name(), launch.num_blocks()),
                Track::Node(i as u32),
                Category::Callback,
                t0,
                t,
            );
            node_stats.emit_counters(&mut self.timeline, Track::Node(i as u32), t0);
            self.timeline.reserve_lane(Track::Node(i as u32), end);
        }
        Ok((
            LaunchReport {
                mode: ExecMode::Replicated { cause },
                times: PhaseTimes {
                    callback: t,
                    ..PhaseTimes::default()
                },
                node_stats,
                wire_bytes: 0,
                faults: FaultSummary::default(),
            },
            end,
        ))
    }

    /// Fault-aware three-phase execution. Taken only when a fault plan is
    /// installed, so the fault-free path above keeps its legacy arithmetic
    /// untouched. When the plan fires nothing, the produced report is
    /// bit-identical to the fault-free one (stretches return durations
    /// unchanged, the fallible collective reproduces the clean layout, and
    /// all report scalars are the same derived views `derive_report`
    /// asserts against).
    ///
    /// Recovery protocol on a confirmed node death:
    /// 1. evict the dead node from the surviving communicator;
    /// 2. if the distributed chunk count divides the survivor count,
    ///    re-partition the whole block space across survivors, have each
    ///    survivor re-execute exactly the blocks its new slice adds
    ///    (recorded as `Reexec` spans), and restart the Allgather phase
    ///    over the survivors;
    /// 3. otherwise §6 balance is violated: degrade to replicated
    ///    execution on the survivors (or fail with
    ///    [`MigrateError::Degraded`] when the plan forbids it).
    ///
    /// All functional memory effects are deferred until the timing walk is
    /// complete, so each block runs at most once per surviving pool —
    /// read-modify-write kernels stay correct through recovery.
    #[allow(clippy::too_many_arguments)]
    fn execute_three_phase_faulty(
        &mut self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
        sched: &LaunchSchedule,
        tp: ThreePhasePlan,
        part: Partition,
        has_tail_block: bool,
        t0: f64,
        net_floor: f64,
    ) -> Result<(LaunchReport, f64), MigrateError> {
        let mark = self.timeline.checkpoint();
        let mut survivors: Vec<u32> = self.alive_ids();
        let initial = survivors.clone();
        let n0 = survivors.len() as u64;
        let pbn = part.partial_blocks_per_node;
        let t_partial = sched.times.partial;
        let per_block = if pbn > 0 { t_partial / pbn as f64 } else { 0.0 };

        // ---- Phase 1: partial block execution (stragglers stretch) -----
        let mut t_partial_eff = 0.0f64;
        for &node in &survivors {
            let d = self
                .fault_state
                .as_ref()
                .unwrap()
                .stretch(node, t0, t_partial);
            self.timeline.span(
                format!("{}: partial ({pbn} blocks)", ck.name()),
                Track::Node(node),
                Category::Partial,
                t0,
                d,
            );
            t_partial_eff = t_partial_eff.max(d);
        }

        // ---- Phase 2: Allgather with retry, eviction and re-partition --
        let t_ag_start = (t0 + t_partial_eff).max(net_floor);
        let mut t_cursor = t_ag_start;
        let mut failures = 0u32;
        let mut retries_total = 0u32;
        let mut reexec_blocks = 0u64;
        let mut degraded_ctx: Option<String> = None;
        // The §6 balance invariant: the total distributed chunk count is
        // fixed by the plan; a survivor set can take over the dead node's
        // slice iff it divides that count evenly.
        let dist_chunks = part.chunks_per_node * n0;
        let mut cur_cpn = part.chunks_per_node;
        let mut cur_pbn = pbn;
        // Global block ids each survivor slot currently holds results for
        // (contiguous by construction: re-partition hands each survivor
        // its full new slice).
        let mut owned: Vec<std::ops::Range<u64>> =
            (0..n0).map(|i| i * pbn..(i + 1) * pbn).collect();
        // Deferred re-execution passes (per-pool block ranges), run after
        // the timing walk.
        let mut reexec_passes: Vec<Vec<std::ops::Range<u64>>> = Vec::new();
        // Nodes admitted mid-launch via a `join:` event (they are not in
        // `initial`): the functional section first hands each one the
        // donor's launch-entry pool, and their tracks join the lane floor.
        let mut joined: Vec<u32> = Vec::new();
        // Joins that §6 rejects mid-launch (the in-flight chunk count does
        // not divide the enlarged communicator) wait for the next launch
        // boundary; the cluster keeps its current shape for this launch.
        let mut deferred_joins: Vec<u32> = Vec::new();

        'recover: loop {
            // Mid-launch joins: before (re)starting the Allgather phase
            // over the current communicator, admit any scripted joiner
            // that is ripe. Only existing node slots can rejoin mid-launch
            // — cluster *growth* is a launch-boundary operation — and the
            // §6 balance rule gates admission exactly like the death-side
            // re-partition below.
            while let Some(node) = self
                .fault_state
                .as_ref()
                .unwrap()
                .joins_pending(t_cursor)
                .into_iter()
                .find(|&jn| {
                    // A node that died *this* launch rejoins at the next
                    // launch boundary: its pool already ran partial blocks
                    // here, and a mid-launch readmission would re-apply
                    // them (wrong for read-modify-write kernels).
                    (jn as usize) < self.state.logical_nodes()
                        && !survivors.contains(&jn)
                        && !initial.contains(&jn)
                        && !deferred_joins.contains(&jn)
                })
            {
                let m_new = survivors.len() as u64 + 1;
                if dist_chunks % m_new != 0 {
                    deferred_joins.push(node);
                    continue;
                }
                let inj = self.fault_state.as_mut().unwrap();
                inj.take_join(node, t_cursor);
                // The join supersedes the kill(s) that took the slot down.
                inj.absorb_kills(node, t_cursor);
                self.state.mark_alive(node as usize);
                let slot = survivors
                    .iter()
                    .position(|&s| s > node)
                    .unwrap_or(survivors.len());
                survivors.insert(slot, node);
                if !joined.contains(&node) {
                    joined.push(node);
                }
                // Re-partition onto the enlarged communicator. The joiner
                // owns nothing yet — an empty range at its new slice
                // start — so the slice-diff below hands it exactly its
                // full new slice.
                cur_cpn = dist_chunks / m_new;
                cur_pbn = cur_cpn * tp.chunk_blocks;
                let start = slot as u64 * cur_pbn;
                owned.insert(slot, start..start);
                // The joiner first receives the launch-entry cluster state
                // from one survivor (point-to-point on the wire), then
                // re-executes its slice like any re-partition.
                let xfer_bytes = self.node_state_bytes();
                let xfer = collective_step_time(&self.sim.spec.net, xfer_bytes);
                if xfer_bytes > 0 {
                    self.timeline
                        .counter(WIRE_BYTES, Track::Network, t_cursor, xfer_bytes);
                }
                let mut pass_a = vec![0u64..0u64; self.state.logical_nodes()];
                let mut pass_b = vec![0u64..0u64; self.state.logical_nodes()];
                let mut t_round = 0.0f64;
                let mut new_owned = Vec::with_capacity(survivors.len());
                for (j, &sn) in survivors.iter().enumerate() {
                    let new = j as u64 * cur_pbn..(j as u64 + 1) * cur_pbn;
                    let old = &owned[j];
                    let left = new.start..old.start.clamp(new.start, new.end);
                    let right = old.end.clamp(new.start, new.end)..new.end;
                    let blocks = (left.end - left.start) + (right.end - right.start);
                    let mut d = self.fault_state.as_ref().unwrap().stretch(
                        sn,
                        t_cursor,
                        per_block * blocks as f64,
                    );
                    if sn == node {
                        // The state transfer precedes the joiner's re-run.
                        d += xfer;
                    }
                    t_round = t_round.max(d);
                    reexec_blocks += blocks;
                    pass_a[sn as usize] = left;
                    pass_b[sn as usize] = right;
                    let merged = if old.start <= new.end && new.start <= old.end {
                        old.start.min(new.start)..old.end.max(new.end)
                    } else {
                        new
                    };
                    new_owned.push(merged);
                }
                // Recorded uniformly on every current survivor, joiner
                // included, mirroring the death-side rounds: the derived
                // `reexec` view sums the slowest surviving track.
                for &sn in &survivors {
                    self.timeline.span(
                        format!("{}: re-exec after node {node} join", ck.name()),
                        Track::Node(sn),
                        Category::Reexec,
                        t_cursor,
                        t_round,
                    );
                }
                t_cursor += t_round;
                owned = new_owned;
                if pass_a.iter().any(|r| r.end > r.start) {
                    reexec_passes.push(pass_a);
                }
                if pass_b.iter().any(|r| r.end > r.start) {
                    reexec_passes.push(pass_b);
                }
                // The Allgather phase restarts over the enlarged
                // communicator.
                continue 'recover;
            }
            let m = survivors.len();
            for region in &tp.buffers {
                let unit = region.unit * cur_cpn;
                let label = format!(
                    "allgather {}",
                    ck.kernel.params[region.param.index()].name()
                );
                let res = allgather_cost_traced_fallible(
                    m,
                    unit,
                    &self.sim.spec.net,
                    self.config.allgather_algo,
                    self.config.placement,
                    &survivors,
                    self.fault_state.as_mut().unwrap(),
                    &mut self.timeline,
                    t_cursor,
                    &label,
                );
                match res {
                    Ok(g) => {
                        retries_total += g.retries;
                        t_cursor += g.retry_time + g.cost.time;
                    }
                    Err(abort) => {
                        retries_total += abort.retries;
                        t_cursor += abort.retry_time;
                        let Some(slot) = abort.dead_slot else {
                            return Err(MigrateError::Timeout {
                                context: format!("{label} in `{}`", ck.name()),
                                retries: abort.retries,
                            });
                        };
                        failures += 1;
                        let dead = survivors.remove(slot);
                        // The membership epoch advances; shape-keyed cached
                        // schedules stay put and become valid again only if
                        // this exact shape returns (kill → join back).
                        self.state.mark_dead(dead as usize);
                        owned.remove(slot);
                        if survivors.is_empty() {
                            return Err(MigrateError::NodeFailure {
                                node: Some(dead),
                                context: format!("{label} in `{}`", ck.name()),
                            });
                        }
                        let m_new = survivors.len() as u64;
                        let ctx = format!("node {dead} died during {label} in `{}`", ck.name());
                        if dist_chunks % m_new != 0 {
                            // Re-partitioning would break Allgather balance.
                            if !self.fault_state.as_ref().unwrap().allow_degraded() {
                                return Err(MigrateError::Degraded {
                                    context: ctx,
                                    survivors: m_new as u32,
                                });
                            }
                            degraded_ctx = Some(ctx);
                            break 'recover;
                        }
                        // Re-partition: survivor slot j takes the j-th of
                        // m_new equal slices; it re-executes only the
                        // blocks its new slice adds over what it owns.
                        cur_cpn = dist_chunks / m_new;
                        cur_pbn = cur_cpn * tp.chunk_blocks;
                        let mut pass_a = vec![0u64..0u64; self.state.logical_nodes()];
                        let mut pass_b = vec![0u64..0u64; self.state.logical_nodes()];
                        let mut t_round = 0.0f64;
                        let mut new_owned = Vec::with_capacity(survivors.len());
                        for (j, &node) in survivors.iter().enumerate() {
                            let new = j as u64 * cur_pbn..(j as u64 + 1) * cur_pbn;
                            let old = &owned[j];
                            let left = new.start..old.start.clamp(new.start, new.end);
                            let right = old.end.clamp(new.start, new.end)..new.end;
                            let blocks = (left.end - left.start) + (right.end - right.start);
                            let d = self.fault_state.as_ref().unwrap().stretch(
                                node,
                                t_cursor,
                                per_block * blocks as f64,
                            );
                            t_round = t_round.max(d);
                            reexec_blocks += blocks;
                            pass_a[node as usize] = left;
                            pass_b[node as usize] = right;
                            // The pool now holds results for old ∪ new —
                            // recording only `new` would forget blocks the
                            // node already ran and re-execute them after a
                            // later death (double-applying non-idempotent
                            // kernels). Consecutive slices of one survivor
                            // always overlap, so the union is contiguous;
                            // fall back to `new` defensively if not.
                            let merged = if old.start <= new.end && new.start <= old.end {
                                old.start.min(new.start)..old.end.max(new.end)
                            } else {
                                new
                            };
                            new_owned.push(merged);
                        }
                        // Recorded uniformly (the round's critical path) on
                        // every survivor: the slowest surviving track then
                        // accumulates every round, which is what the
                        // derived `reexec` view sums.
                        for &node in &survivors {
                            self.timeline.span(
                                format!("{}: re-exec after node {dead} death", ck.name()),
                                Track::Node(node),
                                Category::Reexec,
                                t_cursor,
                                t_round,
                            );
                        }
                        t_cursor += t_round;
                        owned = new_owned;
                        if pass_a.iter().any(|r| r.end > r.start) {
                            reexec_passes.push(pass_a);
                        }
                        if pass_b.iter().any(|r| r.end > r.start) {
                            reexec_passes.push(pass_b);
                        }
                        // The whole Allgather phase restarts over the
                        // surviving communicator.
                        continue 'recover;
                    }
                }
            }
            break 'recover;
        }
        let net_end = t_cursor;

        let opts = ExecOptions {
            engine: self.config.engine,
            node_threads: self.config.node_threads,
            block_parallel: true,
        };
        let functional = self.config.fidelity == ExecutionFidelity::Functional;

        // ---- Degraded completion: replicated re-run on survivors -------
        if let Some(ctx) = degraded_ctx {
            let t_deg = sched.degraded_time;
            let mut t_round = 0.0f64;
            for &node in &survivors {
                let d = self
                    .fault_state
                    .as_ref()
                    .unwrap()
                    .stretch(node, t_cursor, t_deg);
                t_round = t_round.max(d);
            }
            for &node in &survivors {
                self.timeline.span(
                    format!(
                        "{}: degraded replicated re-run ({} blocks)",
                        ck.name(),
                        launch.num_blocks()
                    ),
                    Track::Node(node),
                    Category::Reexec,
                    t_cursor,
                    t_round,
                );
            }
            reexec_blocks += launch.num_blocks() * survivors.len() as u64;
            let end = t_cursor + t_round;
            let mut node_stats = sched.profile.total;
            if functional {
                // Partial results may be mid-gather; the simple, correct
                // recovery re-runs the whole grid from the (unmodified by
                // this launch's deferred passes) inputs — so the partial
                // and re-exec passes above are intentionally *not* run.
                let rep_opts = ExecOptions {
                    block_parallel: false,
                    ..opts
                };
                // Mid-launch joiners first receive the launch-entry state
                // from a donor pool (functional effects are deferred, so
                // the donor still holds it).
                for &jn in &joined {
                    self.sim.copy_node_state(initial[0] as usize, jn as usize);
                }
                let mut all = vec![0u64..0u64; self.state.logical_nodes()];
                for &node in &survivors {
                    all[node as usize] = 0..launch.num_blocks();
                }
                let stats = self
                    .sim
                    .run_blocks_parallel_opts(&ck.kernel, launch, &all, args, &rep_opts)?;
                node_stats = stats[survivors[0] as usize];
            }
            for &node in &survivors {
                node_stats.emit_counters(&mut self.timeline, Track::Node(node), t0);
            }
            for &node in initial.iter().chain(&joined) {
                self.timeline.reserve_lane(Track::Node(node), end);
            }
            if net_end > t_ag_start {
                self.timeline.reserve_lane(Track::Network, net_end);
            }
            let report = LaunchReport {
                mode: ExecMode::Replicated {
                    cause: ReplicationCause::NodeLoss(ctx),
                },
                times: self.derived_times(mark),
                node_stats,
                wire_bytes: self.timeline.wire_bytes_since(mark),
                faults: FaultSummary {
                    failures,
                    retries: retries_total,
                    reexecuted_blocks: reexec_blocks,
                    degraded: true,
                },
            };
            return Ok((report, end));
        }

        // ---- Phase 3: callback on survivors ----------------------------
        if t_cursor > t_ag_start {
            // Visualization-only: every survivor blocks in the collective
            // (including its retry and re-execution windows).
            for &node in &survivors {
                self.timeline.child_span(
                    "allgather",
                    Track::Node(node),
                    Category::Allgather,
                    t_ag_start,
                    t_cursor - t_ag_start,
                );
            }
        }
        let t_callback = sched.times.callback;
        let mut t_cb_eff = 0.0f64;
        for &node in &survivors {
            let d = self
                .fault_state
                .as_ref()
                .unwrap()
                .stretch(node, t_cursor, t_callback);
            self.timeline.span(
                format!("{}: callback ({} blocks)", ck.name(), part.callback_blocks),
                Track::Node(node),
                Category::Callback,
                t_cursor,
                d,
            );
            t_cb_eff = t_cb_eff.max(d);
        }
        let end = t_cursor + t_cb_eff;

        // ---- Deferred functional execution ------------------------------
        let callback_full = part.callback_blocks - u64::from(has_tail_block);
        let mut node_stats = sched.profile.per_block.scaled(pbn + callback_full);
        if has_tail_block {
            node_stats += sched.profile.tail_block;
        }
        if functional {
            let prog = match opts.engine {
                EngineKind::Bytecode | EngineKind::Simd => {
                    Some(self.compile_certified(ck, launch, args)?)
                }
                EngineKind::TreeWalk => None,
            };
            // Mid-launch joiners first receive the launch-entry state from
            // a donor pool; their blocks then come from the re-exec passes
            // (Pass B) recorded at admission time.
            for &jn in &joined {
                self.sim.copy_node_state(initial[0] as usize, jn as usize);
            }
            // Pass A: the original partial slices, on every node that was
            // alive at launch entry (mid-launch deaths are detected at the
            // collective; the dead pool's stale bytes are never gathered).
            let mut assignments = vec![0u64..0u64; self.state.logical_nodes()];
            for (j, &node) in initial.iter().enumerate() {
                assignments[node as usize] = j as u64 * pbn..(j as u64 + 1) * pbn;
            }
            let stats = run_pass(
                &mut self.sim,
                prog.as_ref(),
                ck,
                launch,
                args,
                &assignments,
                &opts,
            )?;
            let first = survivors[0] as usize;
            node_stats = stats[first];
            // Pass B: recovery re-execution rounds, in order.
            for pass in &reexec_passes {
                let s = run_pass(&mut self.sim, prog.as_ref(), ck, launch, args, pass, &opts)?;
                node_stats += s[first];
            }
            // Pass C: the Allgather over the surviving communicator, with
            // the final re-partitioned unit.
            let nodes: Vec<usize> = survivors.iter().map(|&s| s as usize).collect();
            for region in &tp.buffers {
                let unit = region.unit * cur_cpn;
                let Arg::Buffer(id) = args[region.param.index()] else {
                    return Err(MigrateError::Launch(format!(
                        "parameter {} is not a buffer",
                        region.param
                    )));
                };
                if unit > 0 {
                    self.sim.allgather_region_among(
                        id,
                        region.base,
                        unit,
                        &nodes,
                        self.config.allgather_algo,
                        self.config.placement,
                    );
                }
            }
            // Pass D: callbacks on survivors.
            let mut cb = vec![0u64..0u64; self.state.logical_nodes()];
            for &node in &survivors {
                cb[node as usize] = part.callback_start..tp.num_blocks;
            }
            let cb_stats = run_pass(&mut self.sim, prog.as_ref(), ck, launch, args, &cb, &opts)?;
            node_stats += cb_stats[first];
        }

        for &node in &survivors {
            node_stats.emit_counters(&mut self.timeline, Track::Node(node), t0);
        }
        for &node in initial.iter().chain(&joined) {
            self.timeline.reserve_lane(Track::Node(node), end);
        }
        if net_end > t_ag_start {
            self.timeline.reserve_lane(Track::Network, net_end);
        }

        let report = LaunchReport {
            mode: ExecMode::ThreePhase {
                plan: tp,
                nodes: survivors.len() as u64,
                partial_blocks_per_node: cur_pbn,
                callback_blocks: part.callback_blocks,
            },
            times: self.derived_times(mark),
            node_stats,
            wire_bytes: self.timeline.wire_bytes_since(mark),
            faults: FaultSummary {
                failures,
                retries: retries_total,
                reexecuted_blocks: reexec_blocks,
                degraded: false,
            },
        };
        Ok((report, end))
    }

    /// Fault-aware replicated execution: the launch runs on the surviving
    /// nodes only, with straggler stretch. Replicated launches run no
    /// collective, so a scripted kill is *not detected* here — the node
    /// simply keeps its stale replica (excluded from the consistency
    /// check) until a three-phase launch's collective confirms the death.
    fn execute_replicated_faulty(
        &mut self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
        sched: &LaunchSchedule,
        cause: ReplicationCause,
        t0: f64,
    ) -> Result<(LaunchReport, f64), MigrateError> {
        let mark = self.timeline.checkpoint();
        let survivors = self.alive_ids();
        let t = sched.times.callback;
        let mut t_eff = 0.0f64;
        for &node in &survivors {
            let d = self.fault_state.as_ref().unwrap().stretch(node, t0, t);
            self.timeline.span(
                format!("{}: replicated ({} blocks)", ck.name(), launch.num_blocks()),
                Track::Node(node),
                Category::Callback,
                t0,
                d,
            );
            t_eff = t_eff.max(d);
        }
        let end = t0 + t_eff;
        let mut node_stats = sched.profile.total;
        if self.config.fidelity == ExecutionFidelity::Functional {
            let opts = ExecOptions {
                engine: self.config.engine,
                node_threads: self.config.node_threads,
                block_parallel: false,
            };
            let mut all = vec![0u64..0u64; self.state.logical_nodes()];
            for &node in &survivors {
                all[node as usize] = 0..launch.num_blocks();
            }
            let stats = self
                .sim
                .run_blocks_parallel_opts(&ck.kernel, launch, &all, args, &opts)?;
            node_stats = stats[survivors[0] as usize];
        }
        for &node in &survivors {
            node_stats.emit_counters(&mut self.timeline, Track::Node(node), t0);
            self.timeline.reserve_lane(Track::Node(node), end);
        }
        let report = LaunchReport {
            mode: ExecMode::Replicated { cause },
            times: self.derived_times(mark),
            node_stats,
            wire_bytes: self.timeline.wire_bytes_since(mark),
            faults: FaultSummary::default(),
        };
        Ok((report, end))
    }

    /// The derived [`PhaseTimes`] of the window since `mark` — the same
    /// views [`CuccCluster::derive_report`] re-computes and asserts
    /// against, so fault-path reports are consistent by construction.
    fn derived_times(&self, mark: Mark) -> PhaseTimes {
        let tl = &self.timeline;
        PhaseTimes {
            partial: tl.max_in_since(mark, Category::Partial),
            allgather: tl.time_in_since(mark, Category::Allgather),
            callback: tl.max_in_since(mark, Category::Callback),
            broadcast: tl.time_in_since(mark, Category::Broadcast),
            retry: tl.time_in_since(mark, Category::Retry),
            reexec: tl.max_track_sum_since(mark, Category::Reexec),
        }
    }
}

/// Run one deferred block pass through the configured engine.
fn run_pass(
    sim: &mut SimCluster,
    prog: Option<&Program>,
    ck: &CompiledKernel,
    launch: LaunchConfig,
    args: &[Arg],
    ranges: &[std::ops::Range<u64>],
    opts: &ExecOptions,
) -> Result<Vec<cucc_exec::BlockStats>, MigrateError> {
    if let Some(p) = prog {
        Ok(sim.run_program_parallel(p, ranges, opts)?)
    } else {
        Ok(sim.run_blocks_parallel_opts(&ck.kernel, launch, ranges, args, opts)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_source;
    use cucc_gpu_model::{GpuDevice, GpuSpec};

    const LISTING1: &str = "__global__ void vec_copy(char* src, char* dest, int n) {
        int id = blockDim.x * blockIdx.x + threadIdx.x;
        if (id < n) dest[id] = src[id];
    }";

    fn spec(n: u32) -> ClusterSpec {
        ClusterSpec::simd_focused().with_nodes(n)
    }

    #[test]
    fn three_phase_copies_correctly_on_two_nodes() {
        let ck = compile_source(LISTING1).unwrap();
        let mut cl = CuccCluster::with_options(spec(2), RuntimeConfig::default());
        let src = cl.alloc(1200);
        let dest = cl.alloc(1200);
        let data: Vec<u8> = (0..1200).map(|i| (i % 251) as u8).collect();
        cl.upload(src, &data).unwrap();
        let report = cl
            .launch(
                &ck,
                LaunchConfig::cover1(1200, 256),
                &[Arg::Buffer(src), Arg::Buffer(dest), Arg::int(1200)],
            )
            .unwrap();
        {
            let shape = report.mode.three_phase().unwrap();
            assert_eq!(shape.partial_blocks_per_node, 2);
            assert_eq!(shape.callback_blocks, 1);
        }
        assert_eq!(cl.download::<u8>(dest).unwrap(), data);
        assert!(report.times.allgather > 0.0);
        assert!(report.times.partial > 0.0);
    }

    #[test]
    fn matches_gpu_reference_across_node_counts() {
        let ck = compile_source(
            "__global__ void saxpy(float* x, float* y, float a, int n) {
                int id = blockDim.x * blockIdx.x + threadIdx.x;
                if (id < n) y[id] = a * x[id] + y[id];
            }",
        )
        .unwrap();
        let n = 5000usize;
        let xs: Vec<f32> = (0..n).map(|i| i as f32 * 0.25).collect();
        let ys: Vec<f32> = (0..n).map(|i| (n - i) as f32).collect();
        let launch = LaunchConfig::cover1(n as u64, 128);

        // GPU reference.
        let mut gpu = GpuDevice::new(GpuSpec::a100());
        let gx = gpu.alloc(n * 4);
        let gy = gpu.alloc(n * 4);
        gpu.pool_mut().write_f32(gx, &xs);
        gpu.pool_mut().write_f32(gy, &ys);
        gpu.launch(
            &ck.kernel,
            launch,
            &[
                Arg::Buffer(gx),
                Arg::Buffer(gy),
                Arg::float(1.5),
                Arg::int(n as i64),
            ],
        )
        .unwrap();
        let reference = gpu.d2h(gy);

        for nodes in [1u32, 2, 3, 4, 8] {
            let mut cl = CuccCluster::with_options(spec(nodes), RuntimeConfig::default());
            let cx = cl.alloc(n * 4);
            let cy = cl.alloc(n * 4);
            cl.upload(cx, &xs).unwrap();
            cl.upload(cy, &ys).unwrap();
            cl.launch(
                &ck,
                launch,
                &[
                    Arg::Buffer(cx),
                    Arg::Buffer(cy),
                    Arg::float(1.5),
                    Arg::int(n as i64),
                ],
            )
            .unwrap();
            assert_eq!(cl.download::<u8>(cy).unwrap(), reference, "nodes={nodes}");
        }
    }

    #[test]
    fn replicated_fallback_still_correct() {
        // Histogram with atomics: not distributable, must replicate and
        // still match the GPU.
        let ck = compile_source(
            "__global__ void hist(int* bins, int* data, int n) {
                int id = blockDim.x * blockIdx.x + threadIdx.x;
                if (id < n) atomicAdd(&bins[data[id] % 16], 1);
            }",
        )
        .unwrap();
        assert!(!ck.is_distributable());
        let n = 4096usize;
        let data: Vec<i32> = (0..n as i32).map(|i| i * 37 % 1000).collect();
        let launch = LaunchConfig::cover1(n as u64, 256);

        let mut gpu = GpuDevice::new(GpuSpec::a100());
        let gb = gpu.alloc(16 * 4);
        let gd = gpu.alloc(n * 4);
        gpu.pool_mut().write_i32(gd, &data);
        gpu.launch(
            &ck.kernel,
            launch,
            &[Arg::Buffer(gb), Arg::Buffer(gd), Arg::int(n as i64)],
        )
        .unwrap();
        let reference = gpu.d2h(gb);

        let mut cl = CuccCluster::with_options(spec(4), RuntimeConfig::default());
        let cb = cl.alloc(16 * 4);
        let cd = cl.alloc(n * 4);
        let mut bytes = Vec::new();
        for v in &data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        cl.upload(cd, &bytes).unwrap();
        let report = cl
            .launch(
                &ck,
                launch,
                &[Arg::Buffer(cb), Arg::Buffer(cd), Arg::int(n as i64)],
            )
            .unwrap();
        assert!(matches!(report.mode, ExecMode::Replicated { .. }));
        assert_eq!(report.wire_bytes, 0);
        assert_eq!(cl.download::<u8>(cb).unwrap(), reference);
    }

    #[test]
    fn scaling_reduces_partial_time() {
        let ck = compile_source(
            "__global__ void heavy(float* out, int n, int iters) {
                int id = blockDim.x * blockIdx.x + threadIdx.x;
                float acc = 0.0f;
                for (int i = 0; i < iters; i++)
                    acc += (float)(i) * 0.5f;
                if (id < n) out[id] = acc;
            }",
        )
        .unwrap();
        // 1024 blocks of heavy compute: enough blocks to keep every core of
        // a 16-node cluster busy, enough work per block to dwarf the
        // Allgather.
        let n = 262_144u64;
        let launch = LaunchConfig::cover1(n, 256);
        let mut t1 = 0.0;
        for nodes in [1u32, 4, 16] {
            let mut cl = CuccCluster::with_options(spec(nodes), RuntimeConfig::modeled());
            let out = cl.alloc(n as usize * 4);
            let report = cl
                .launch(
                    &ck,
                    launch,
                    &[Arg::Buffer(out), Arg::int(n as i64), Arg::int(2000)],
                )
                .unwrap();
            if nodes == 1 {
                t1 = report.time();
            } else {
                let speedup = t1 / report.time();
                assert!(
                    speedup > nodes as f64 * 0.5,
                    "nodes={nodes} speedup={speedup}"
                );
            }
        }
    }

    #[test]
    fn modeled_mode_does_not_touch_memory() {
        let ck = compile_source(LISTING1).unwrap();
        let mut cl = CuccCluster::with_options(spec(2), RuntimeConfig::modeled());
        let src = cl.alloc(1024);
        let dest = cl.alloc(1024);
        cl.upload(src, &[9u8; 1024]).unwrap();
        cl.launch(
            &ck,
            LaunchConfig::cover1(1024, 256),
            &[Arg::Buffer(src), Arg::Buffer(dest), Arg::int(1024)],
        )
        .unwrap();
        assert_eq!(
            cl.download::<u8>(dest).unwrap(),
            vec![0u8; 1024],
            "modeled mode leaves memory"
        );
    }

    #[test]
    fn clock_accumulates_and_resets() {
        let ck = compile_source(LISTING1).unwrap();
        let mut cl = CuccCluster::with_options(spec(2), RuntimeConfig::default());
        let src = cl.alloc(512);
        let dest = cl.alloc(512);
        cl.upload(src, &[1u8; 512]).unwrap();
        assert!(cl.clock() > 0.0, "h2d broadcast costs time");
        let before = cl.clock();
        cl.launch(
            &ck,
            LaunchConfig::cover1(512, 256),
            &[Arg::Buffer(src), Arg::Buffer(dest), Arg::int(512)],
        )
        .unwrap();
        assert!(cl.clock() > before);
        cl.reset_clock();
        assert_eq!(cl.clock(), 0.0);
    }

    #[test]
    fn engines_produce_identical_launches() {
        // Same kernel, same data: tree-walk and bytecode (with intra-node
        // parallelism) must agree on memory, stats, times and wire bytes.
        let ck = compile_source(
            "__global__ void saxpy(float* x, float* y, float a, int n) {
                int id = blockDim.x * blockIdx.x + threadIdx.x;
                if (id < n) y[id] = a * x[id] + y[id];
            }",
        )
        .unwrap();
        let n = 10_000usize;
        let xs: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        let ys: Vec<f32> = (0..n).map(|i| i as f32 * 0.125).collect();
        let launch = LaunchConfig::cover1(n as u64, 128);
        let run = |engine: EngineKind, node_threads: usize| {
            let cfg = RuntimeConfig {
                engine,
                node_threads,
                ..RuntimeConfig::default()
            };
            let mut cl = CuccCluster::with_options(spec(3), cfg);
            let cx = cl.alloc(n * 4);
            let cy = cl.alloc(n * 4);
            cl.upload(cx, &xs).unwrap();
            cl.upload(cy, &ys).unwrap();
            let report = cl
                .launch(
                    &ck,
                    launch,
                    &[
                        Arg::Buffer(cx),
                        Arg::Buffer(cy),
                        Arg::float(0.75),
                        Arg::int(n as i64),
                    ],
                )
                .unwrap();
            (cl.download::<f32>(cy).unwrap(), report)
        };
        let (mem_tree, rep_tree) = run(EngineKind::TreeWalk, 0);
        let (mem_byte, rep_byte) = run(EngineKind::Bytecode, 0);
        let (mem_par, rep_par) = run(EngineKind::Bytecode, 4);
        let (mem_simd, rep_simd) = run(EngineKind::Simd, 0);
        let (mem_spar, rep_spar) = run(EngineKind::Simd, 4);
        assert_eq!(mem_tree, mem_byte);
        assert_eq!(mem_tree, mem_par);
        assert_eq!(mem_tree, mem_simd);
        assert_eq!(mem_tree, mem_spar);
        assert_eq!(rep_tree.node_stats, rep_byte.node_stats);
        assert_eq!(rep_tree.node_stats, rep_par.node_stats);
        assert_eq!(rep_tree.node_stats, rep_simd.node_stats);
        assert_eq!(rep_tree.node_stats, rep_spar.node_stats);
        assert_eq!(rep_tree.times, rep_byte.times);
        assert_eq!(rep_tree.times, rep_simd.times);
        assert_eq!(rep_tree.wire_bytes, rep_byte.wire_bytes);
        assert_eq!(rep_tree.wire_bytes, rep_simd.wire_bytes);
    }

    #[test]
    fn empty_grid_rejected() {
        let ck = compile_source(LISTING1).unwrap();
        let mut cl = CuccCluster::with_options(spec(1), RuntimeConfig::default());
        let b = cl.alloc(4);
        let err = cl.launch(
            &ck,
            LaunchConfig::new(0u32, 32u32),
            &[Arg::Buffer(b), Arg::Buffer(b), Arg::int(0)],
        );
        assert!(matches!(err, Err(MigrateError::Launch(_))));
    }

    #[test]
    fn async_default_stream_matches_sync_reports_and_memory() {
        use crate::stream::DEFAULT_STREAM;
        let ck = compile_source(LISTING1).unwrap();
        let data: Vec<u8> = (0..4096).map(|i| (i % 239) as u8).collect();
        let launch = LaunchConfig::cover1(4096, 256);

        let mut sync = CuccCluster::with_options(spec(3), RuntimeConfig::default());
        let (s_src, s_dest) = (sync.alloc(4096), sync.alloc(4096));
        sync.upload(s_src, &data).unwrap();
        let args = [Arg::Buffer(s_src), Arg::Buffer(s_dest), Arg::int(4096)];
        let r1 = sync.launch(&ck, launch, &args).unwrap();
        let r2 = sync.launch(&ck, launch, &args).unwrap();
        let sync_mem = sync.download::<u8>(s_dest).unwrap();

        let mut asy = CuccCluster::with_options(spec(3), RuntimeConfig::default());
        let (a_src, a_dest) = (asy.alloc(4096), asy.alloc(4096));
        asy.upload_on(a_src, &data, DEFAULT_STREAM).unwrap();
        let args = [Arg::Buffer(a_src), Arg::Buffer(a_dest), Arg::int(4096)];
        let q1 = asy.launch_on(&ck, launch, &args, DEFAULT_STREAM).unwrap();
        let q2 = asy.launch_on(&ck, launch, &args, DEFAULT_STREAM).unwrap();
        asy.synchronize().unwrap();
        let asy_mem = asy.download::<u8>(a_dest).unwrap();

        // Per-launch durations and wire traffic are clock-independent:
        // the async default stream reproduces them bit-for-bit.
        assert_eq!(r1.times, q1.times);
        assert_eq!(r2.times, q2.times);
        assert_eq!(r1.wire_bytes, q1.wire_bytes);
        assert_eq!(sync_mem, asy_mem);
        assert_eq!(sync_mem, data);
        // Span *positions* chain physical end times, so the elapsed clock
        // may differ from the serial sum by float association only.
        let (a, b) = (sync.clock(), asy.clock());
        assert!((a - b).abs() <= 1e-12 * a.max(b), "sync={a} async={b}");
    }

    #[test]
    fn independent_streams_overlap_on_the_simulated_clock() {
        // Broadcast an unrelated buffer on one stream while a heavy kernel
        // computes on another: the prefetch should hide under the compute
        // (the kernel's node lanes are free; it only meets the transfer on
        // the network lane, at its Allgather).
        let ck = compile_source(
            "__global__ void heavy(float* out, int n, int iters) {
                int id = blockDim.x * blockIdx.x + threadIdx.x;
                float acc = 0.0f;
                for (int i = 0; i < iters; i++)
                    acc += (float)(i) * 0.5f;
                if (id < n) out[id] = acc;
            }",
        )
        .unwrap();
        let n = 16_384u64;
        let launch = LaunchConfig::cover1(n, 256);
        let payload = vec![1u8; 1 << 20];

        let elapsed = |overlap: bool| {
            let mut cl = CuccCluster::with_options(spec(4), RuntimeConfig::default());
            let out = cl.alloc(n as usize * 4);
            let other = cl.alloc(payload.len());
            let args = [Arg::Buffer(out), Arg::int(n as i64), Arg::int(400)];
            if overlap {
                let s1 = cl.stream_create();
                let s2 = cl.stream_create();
                cl.upload_on(other, &payload, s2).unwrap();
                cl.launch_on(&ck, launch, &args, s1).unwrap();
                cl.synchronize().unwrap()
            } else {
                cl.upload(other, &payload).unwrap();
                cl.launch(&ck, launch, &args).unwrap();
                cl.clock()
            }
        };
        let serial = elapsed(false);
        let overlapped = elapsed(true);
        assert!(
            overlapped < serial * 0.95,
            "expected overlap: serial={serial} overlapped={overlapped}"
        );
    }

    #[test]
    fn cross_stream_hazard_serializes_bitwise() {
        // Stream 2's kernel reads the buffer stream 1 is broadcasting:
        // the RAW hazard must serialize it exactly like a single stream.
        let ck = compile_source(LISTING1).unwrap();
        let data = vec![7u8; 8192];
        let launch = LaunchConfig::cover1(8192, 256);

        let run = |two_streams: bool| {
            let mut cl = CuccCluster::with_options(spec(3), RuntimeConfig::default());
            let src = cl.alloc(8192);
            let dest = cl.alloc(8192);
            let s1 = cl.stream_create();
            let s2 = if two_streams { cl.stream_create() } else { s1 };
            cl.upload_on(src, &data, s1).unwrap();
            let args = [Arg::Buffer(src), Arg::Buffer(dest), Arg::int(8192)];
            cl.launch_on(&ck, launch, &args, s2).unwrap();
            (cl.synchronize().unwrap(), cl.download::<u8>(dest).unwrap())
        };
        let (t_one, mem_one) = run(false);
        let (t_two, mem_two) = run(true);
        assert_eq!(t_one.to_bits(), t_two.to_bits());
        assert_eq!(mem_one, mem_two);
        assert_eq!(mem_one, data);
    }

    #[test]
    fn events_order_cross_stream_work() {
        let ck = compile_source(LISTING1).unwrap();
        let data = vec![3u8; 4096];
        let launch = LaunchConfig::cover1(4096, 256);
        let mut cl = CuccCluster::with_options(spec(2), RuntimeConfig::default());
        let src = cl.alloc(4096);
        let dest = cl.alloc(4096);
        let scratch = cl.alloc(64);
        let s1 = cl.stream_create();
        let s2 = cl.stream_create();
        cl.upload_on(src, &data, s1).unwrap();
        let ready = cl.event_record(s1);
        // Unrelated tiny transfer keeps s2 formally busy first.
        cl.upload_on(scratch, &[1u8; 64], s2).unwrap();
        cl.stream_wait_event(s2, ready);
        let args = [Arg::Buffer(src), Arg::Buffer(dest), Arg::int(4096)];
        cl.launch_on(&ck, launch, &args, s2).unwrap();
        cl.synchronize().unwrap();
        assert_eq!(cl.download::<u8>(dest).unwrap(), data);
    }

    #[test]
    fn sync_ops_drain_pending_async_work() {
        let ck = compile_source(LISTING1).unwrap();
        let data = vec![9u8; 2048];
        let mut cl = CuccCluster::with_options(spec(2), RuntimeConfig::default());
        let src = cl.alloc(2048);
        let dest = cl.alloc(2048);
        let s = cl.stream_create();
        cl.upload_on(src, &data, s).unwrap();
        // The synchronous launch must see the broadcast completed — both
        // functionally and on the clock.
        let before = cl.clock();
        let args = [Arg::Buffer(src), Arg::Buffer(dest), Arg::int(2048)];
        cl.launch(&ck, LaunchConfig::cover1(2048, 256), &args)
            .unwrap();
        assert_eq!(cl.download::<u8>(dest).unwrap(), data);
        assert!(cl.clock() > before);
        assert!(cl.timeline().lanes_horizon() <= cl.clock());
    }

    #[test]
    fn single_node_is_cupbop_baseline() {
        // One node ⇒ no communication at all, but still the partial phase.
        let ck = compile_source(LISTING1).unwrap();
        let mut cl = CuccCluster::with_options(spec(1), RuntimeConfig::default());
        let src = cl.alloc(2048);
        let dest = cl.alloc(2048);
        cl.upload(src, &[3u8; 2048]).unwrap();
        let r = cl
            .launch(
                &ck,
                LaunchConfig::cover1(2048, 256),
                &[Arg::Buffer(src), Arg::Buffer(dest), Arg::int(2048)],
            )
            .unwrap();
        assert_eq!(r.times.allgather, 0.0);
        assert_eq!(r.wire_bytes, 0);
        assert_eq!(cl.download::<u8>(dest).unwrap(), vec![3u8; 2048]);
    }

    /// Run one copy launch of `bytes` bytes on `nodes` nodes under `faults`
    /// and return the report, the output memory, and the cluster.
    fn fault_run(
        ck: &CompiledKernel,
        nodes: u32,
        bytes: usize,
        data: &[u8],
        faults: FaultPlan,
    ) -> (Result<LaunchReport, MigrateError>, Vec<u8>, CuccCluster) {
        let cfg = RuntimeConfig::builder().faults(faults).build();
        let mut cl = CuccCluster::with_options(spec(nodes), cfg);
        let src = cl.alloc(bytes);
        let dest = cl.alloc(bytes);
        cl.upload(src, data).unwrap();
        let args = [Arg::Buffer(src), Arg::Buffer(dest), Arg::int(bytes as i64)];
        let report = cl.launch(ck, LaunchConfig::cover1(bytes as u64, 256), &args);
        let mem = if report.is_ok() {
            cl.download::<u8>(dest).unwrap()
        } else {
            Vec::new()
        };
        (report, mem, cl)
    }

    #[test]
    fn node_kill_recovers_bit_identical_memory() {
        let ck = compile_source(LISTING1).unwrap();
        // 25 blocks on 3 nodes: 8 chunks/node, so 2 survivors re-partition
        // the 24 distributed chunks evenly (12 each).
        let bytes = 25 * 256;
        let data: Vec<u8> = (0..bytes).map(|i| (i % 241) as u8).collect();

        let (clean, mem_clean, _) = fault_run(&ck, 3, bytes, &data, FaultPlan::none());
        let (faulty, mem_faulty, cl) =
            fault_run(&ck, 3, bytes, &data, FaultPlan::none().kill(1, 0.0));
        let clean = clean.unwrap();
        let faulty = faulty.unwrap();

        // Recovered output is bit-identical to the fault-free run.
        assert_eq!(mem_faulty, mem_clean);
        assert_eq!(mem_faulty, data);
        assert!(faulty.mode.is_three_phase());
        assert_eq!(faulty.faults.failures, 1);
        assert!(faulty.faults.retries > 0);
        assert!(faulty.faults.reexecuted_blocks > 0);
        assert!(!faulty.faults.degraded);
        assert!(faulty.times.retry > 0.0);
        assert!(faulty.times.reexec > 0.0);
        assert!(faulty.time() > clean.time());
        // The death persists: the communicator shrank for good.
        assert_eq!(cl.active_nodes(), 2);
        assert!(!cl.is_alive(1));
        // The timeline shows the retry and re-execution spans.
        let tl = cl.timeline();
        assert!(tl.spans().iter().any(|s| s.category == Category::Retry));
        assert!(tl.spans().iter().any(|s| s.category == Category::Reexec));
    }

    #[test]
    fn infeasible_repartition_degrades_to_replicated() {
        let ck = compile_source(LISTING1).unwrap();
        // 10 blocks on 3 nodes: 3 chunks/node, 9 distributed chunks — not
        // divisible across 2 survivors, so recovery must degrade.
        let bytes = 10 * 256;
        let data: Vec<u8> = (0..bytes).map(|i| (i % 97) as u8).collect();

        let (report, mem, cl) = fault_run(&ck, 3, bytes, &data, FaultPlan::none().kill(2, 0.0));
        let report = report.unwrap();
        assert_eq!(mem, data);
        assert!(matches!(
            &report.mode,
            ExecMode::Replicated {
                cause: cucc_analysis::ReplicationCause::NodeLoss(_)
            }
        ));
        assert!(report.faults.degraded);
        assert_eq!(report.faults.failures, 1);
        assert!(report.times.reexec > 0.0);
        assert_eq!(cl.active_nodes(), 2);

        // The same death with degraded execution disallowed is an error.
        let plan = FaultPlan {
            allow_degraded: false,
            ..FaultPlan::none().kill(2, 0.0)
        };
        let (report, _, _) = fault_run(&ck, 3, bytes, &data, plan);
        assert!(matches!(
            report.unwrap_err(),
            MigrateError::Degraded { survivors: 2, .. }
        ));
    }

    #[test]
    fn straggler_stretches_but_stays_clean() {
        let ck = compile_source(LISTING1).unwrap();
        let bytes = 16 * 256;
        let data = vec![5u8; bytes];
        let (clean, mem_clean, _) = fault_run(&ck, 4, bytes, &data, FaultPlan::none());
        let (slow, mem_slow, _) = fault_run(
            &ck,
            4,
            bytes,
            &data,
            FaultPlan::none().straggle(0, 0.0, 4.0),
        );
        let clean = clean.unwrap();
        let slow = slow.unwrap();
        assert_eq!(mem_slow, mem_clean);
        // A whole-launch straggler stretches the partial phase by exactly
        // its factor (the max over nodes is the stretched span).
        assert_eq!(
            slow.times.partial.to_bits(),
            (clean.times.partial * 4.0).to_bits()
        );
        assert!(slow.time() > clean.time());
        // Stragglers are not failures: the summary stays clean.
        assert!(slow.faults.is_clean());
    }

    #[test]
    fn dropped_step_is_retried() {
        let ck = compile_source(LISTING1).unwrap();
        let bytes = 16 * 256;
        let data = vec![9u8; bytes];
        let (clean, mem_clean, _) = fault_run(&ck, 4, bytes, &data, FaultPlan::none());
        let (report, mem, _) = fault_run(&ck, 4, bytes, &data, FaultPlan::none().drop_step(0.0));
        let report = report.unwrap();
        assert_eq!(mem, mem_clean);
        assert_eq!(report.faults.retries, 1);
        assert_eq!(report.faults.failures, 0);
        assert!(report.times.retry > 0.0);
        // The collective itself still costs the analytic fault-free time.
        assert_eq!(
            report.times.allgather.to_bits(),
            clean.unwrap().times.allgather.to_bits()
        );
    }

    #[test]
    fn exhausted_retries_without_a_corpse_is_a_timeout() {
        let ck = compile_source(LISTING1).unwrap();
        let bytes = 16 * 256;
        let data = vec![1u8; bytes];
        // Three scripted drops exhaust the default three attempts with no
        // dead peer to evict.
        let plan = FaultPlan::none()
            .drop_step(0.0)
            .drop_step(0.0)
            .drop_step(0.0);
        let (report, _, _) = fault_run(&ck, 4, bytes, &data, plan);
        assert!(matches!(
            report.unwrap_err(),
            MigrateError::Timeout { retries: 3, .. }
        ));
    }

    #[test]
    fn armed_but_silent_fault_plan_reproduces_reports_bitwise() {
        let ck = compile_source(LISTING1).unwrap();
        let bytes = 25 * 256;
        let data: Vec<u8> = (0..bytes).map(|i| (i % 199) as u8).collect();
        let (clean, mem_clean, _) = fault_run(&ck, 3, bytes, &data, FaultPlan::none());
        // A kill scheduled far beyond the launch never fires, but the
        // injector is active — the fault-aware path must reproduce the
        // fault-free report bit-for-bit.
        let (armed, mem_armed, _) = fault_run(&ck, 3, bytes, &data, FaultPlan::none().kill(2, 1e9));
        let clean = clean.unwrap();
        let armed = armed.unwrap();
        assert_eq!(mem_armed, mem_clean);
        assert_eq!(armed.times.partial.to_bits(), clean.times.partial.to_bits());
        assert_eq!(
            armed.times.allgather.to_bits(),
            clean.times.allgather.to_bits()
        );
        assert_eq!(
            armed.times.callback.to_bits(),
            clean.times.callback.to_bits()
        );
        assert_eq!(armed.time().to_bits(), clean.time().to_bits());
        assert_eq!(armed, clean);
    }

    #[test]
    fn transfer_validation_is_typed() {
        let mut cl = CuccCluster::with_options(spec(2), RuntimeConfig::default());
        let buf = cl.alloc(8);
        // Wrong payload size.
        assert!(matches!(
            cl.upload(buf, &[1u8; 7]).unwrap_err(),
            MigrateError::Transfer(_)
        ));
        // Unknown buffer.
        assert!(matches!(
            cl.upload(BufferId(99), &[0u8; 4]).unwrap_err(),
            MigrateError::Transfer(_)
        ));
        // Non-divisible element size.
        let odd = cl.alloc(10);
        assert!(matches!(
            cl.download::<f32>(odd).unwrap_err(),
            MigrateError::Transfer(_)
        ));
        // The generic surface round-trips typed data.
        cl.upload(buf, &[1.5f32, -2.0]).unwrap();
        assert_eq!(cl.download::<f32>(buf).unwrap(), vec![1.5, -2.0]);
        assert_eq!(cl.download::<u8>(buf).unwrap().len(), 8);
    }

    /// The deprecated untyped shims stay behaviorally intact until they
    /// are removed: same bytes, panicking contract preserved.
    #[test]
    #[allow(deprecated)]
    fn deprecated_transfer_shims_still_work() {
        let mut cl = CuccCluster::new(spec(2), RuntimeConfig::default());
        let buf = cl.alloc(8);
        cl.h2d(buf, &[7u8; 8]);
        assert_eq!(cl.d2h(buf), vec![7u8; 8]);
        cl.h2d_f32(buf, &[1.0, 2.0]);
        assert_eq!(cl.d2h_f32(buf), vec![1.0, 2.0]);
        let s = cl.stream_create();
        cl.h2d_async(buf, &[9u8; 8], s);
        cl.synchronize().unwrap();
        assert_eq!(cl.d2h_async(buf, s), vec![9u8; 8]);
    }
}
