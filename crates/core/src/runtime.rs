//! The CuCC cluster runtime: CUDA-like API over a simulated CPU cluster,
//! executing launches with the three-phase workflow.

use crate::compile::CompiledKernel;
use crate::error::MigrateError;
use crate::report::{ExecMode, LaunchReport, PhaseTimes};
use cucc_analysis::{plan_launch, Plan, ReplicationCause, ThreePhasePlan};
use cucc_cluster::{block_compute_time, node_time_profiled, ClusterSpec, SimCluster};
use cucc_exec::{profile_launch, Arg, BufferId, EngineKind, ExecOptions, LaunchProfile, Program};
use cucc_ir::LaunchConfig;
use cucc_net::{allgather_cost_traced, broadcast_traced, AllgatherAlgo, AllgatherPlacement};
use cucc_trace::{Category, Mark, Timeline, Track};

/// Whether launches execute functionally or are only timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionFidelity {
    /// Every block really executes on its node's memory; collectives really
    /// move bytes; results are exact. Use for correctness work.
    Functional,
    /// Only representative blocks are interpreted (sampled profile); memory
    /// is not updated. Use for paper-scale performance sweeps where full
    /// interpretation would be prohibitive.
    Modeled,
}

/// Runtime knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeConfig {
    /// Functional vs modeled execution.
    pub fidelity: ExecutionFidelity,
    /// Allgather algorithm (paper uses ring-style MPI allgather).
    pub allgather_algo: AllgatherAlgo,
    /// Buffer placement (§2.3: CuCC uses balanced **in-place**).
    pub placement: AllgatherPlacement,
    /// After every functional launch, assert that all written buffers are
    /// identical on every node (the paper's consistency invariant).
    pub verify_consistency: bool,
    /// Blocks sampled per profile.
    pub profile_samples: usize,
    /// Which executor runs functional blocks (bytecode engine by default;
    /// the tree-walk interpreter remains available as the oracle).
    pub engine: EngineKind,
    /// Worker threads per node for intra-node block parallelism
    /// (`0` = derive from host parallelism and the node's core count).
    pub node_threads: usize,
}

impl Default for RuntimeConfig {
    fn default() -> RuntimeConfig {
        RuntimeConfig {
            fidelity: ExecutionFidelity::Functional,
            allgather_algo: AllgatherAlgo::Ring,
            placement: AllgatherPlacement::InPlace,
            verify_consistency: true,
            profile_samples: 3,
            engine: EngineKind::default(),
            node_threads: 0,
        }
    }
}

impl RuntimeConfig {
    /// Timing-only configuration for performance sweeps.
    pub fn modeled() -> RuntimeConfig {
        RuntimeConfig {
            fidelity: ExecutionFidelity::Modeled,
            verify_consistency: false,
            ..RuntimeConfig::default()
        }
    }
}

/// A CUDA-context-like handle to a simulated CPU cluster.
#[derive(Debug, Clone)]
pub struct CuccCluster {
    sim: SimCluster,
    config: RuntimeConfig,
    /// Unified event record. All time accounting lives here: launches and
    /// host transfers lay spans out on the simulated clock and advance it;
    /// [`CuccCluster::clock`], [`LaunchReport`] phase times and wire bytes
    /// are derived views over the recorded spans and counters.
    timeline: Timeline,
    /// Logical cluster size. In [`ExecutionFidelity::Modeled`] only one
    /// physical node memory is materialized (paper-scale sweeps would
    /// otherwise replicate gigabytes across 32 pools); the time model still
    /// uses the logical node count.
    logical_nodes: usize,
}

impl CuccCluster {
    /// Build a runtime over `spec.nodes` simulated nodes.
    pub fn new(spec: ClusterSpec, config: RuntimeConfig) -> CuccCluster {
        let logical_nodes = spec.nodes as usize;
        let sim_spec = if config.fidelity == ExecutionFidelity::Modeled {
            spec.with_nodes(1)
        } else {
            spec
        };
        CuccCluster {
            sim: SimCluster::new(sim_spec),
            config,
            timeline: Timeline::new(),
            logical_nodes,
        }
    }

    /// Number of (logical) nodes.
    pub fn num_nodes(&self) -> usize {
        self.logical_nodes
    }

    /// Cluster hardware description.
    pub fn spec(&self) -> &ClusterSpec {
        &self.sim.spec
    }

    /// Simulated seconds elapsed (kernel launches + host transfers).
    /// Derived from the trace timeline, which owns the simulated clock.
    pub fn clock(&self) -> f64 {
        self.timeline.clock()
    }

    /// Reset the simulated clock and drop the recorded trace (e.g. to time
    /// a region).
    pub fn reset_clock(&mut self) {
        self.timeline.reset();
    }

    /// The recorded trace timeline (spans, counters, simulated clock).
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Session-wide phase breakdown derived from the timeline: every launch
    /// and host transfer since construction (or the last
    /// [`CuccCluster::reset_clock`]). Unlike per-launch [`LaunchReport`]
    /// times, this includes h2d broadcast time under
    /// [`PhaseTimes::broadcast`].
    pub fn session_times(&self) -> PhaseTimes {
        PhaseTimes {
            // Within one launch every node's phase span has the same
            // duration, so node 0's track carries the per-launch phase
            // times; summing it in recording order reproduces the legacy
            // per-launch accumulation exactly.
            partial: self.timeline.time_in_on(Track::Node(0), Category::Partial),
            allgather: self.timeline.time_in(Category::Allgather),
            callback: self.timeline.time_in_on(Track::Node(0), Category::Callback),
            broadcast: self.timeline.time_in(Category::Broadcast),
        }
    }

    /// Total bytes moved across the network since construction (or the last
    /// [`CuccCluster::reset_clock`]) — Allgathers *and* h2d broadcasts —
    /// derived from the timeline's wire-byte counters.
    pub fn wire_bytes(&self) -> u64 {
        self.timeline.wire_bytes()
    }

    /// Direct access to the underlying simulator (tests, diagnostics).
    pub fn sim(&self) -> &SimCluster {
        &self.sim
    }

    /// Mutable access to the underlying simulator — intended for fault
    /// injection in tests (e.g. corrupting one node's memory to verify the
    /// consistency checker fires). Not part of the stable API surface.
    pub fn sim_mut(&mut self) -> &mut SimCluster {
        &mut self.sim
    }

    /// `cudaMalloc`: replicated allocation on every node.
    pub fn alloc(&mut self, bytes: usize) -> BufferId {
        self.sim.alloc(bytes)
    }

    /// Host→device copy, broadcast to every node (charged to the clock).
    /// Records the broadcast on the timeline — including the wire traffic
    /// the pre-timeline accounting never attributed anywhere.
    pub fn h2d(&mut self, buf: BufferId, data: &[u8]) {
        self.sim.write_all(buf, data);
        let t0 = self.timeline.clock();
        let bt = broadcast_traced(
            &self.sim.spec.net,
            self.logical_nodes,
            data.len() as u64,
            &mut self.timeline,
            t0,
            "h2d broadcast",
        );
        self.timeline
            .span("h2d", Track::Host, Category::H2d, t0, bt);
        self.timeline.advance(bt);
    }

    /// Device→host copy (from node 0). Free in the time model, but recorded
    /// on the timeline's host track.
    pub fn d2h(&mut self, buf: BufferId) -> Vec<u8> {
        let t = self.timeline.clock();
        self.timeline
            .span("d2h", Track::Host, Category::D2h, t, 0.0);
        self.sim.read(0, buf).to_vec()
    }

    /// Typed convenience reads from node 0.
    pub fn d2h_f32(&mut self, buf: BufferId) -> Vec<f32> {
        let t = self.timeline.clock();
        self.timeline
            .span("d2h", Track::Host, Category::D2h, t, 0.0);
        self.sim.node(0).read_f32(buf)
    }

    /// Typed convenience writes (broadcast).
    pub fn h2d_f32(&mut self, buf: BufferId, data: &[f32]) {
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.h2d(buf, &bytes);
    }

    /// Launch a compiled kernel on the cluster.
    ///
    /// Decides between the three-phase workflow and the replicated fallback
    /// via the launch-time planner, executes (or models) the phases, and
    /// returns the time breakdown.
    pub fn launch(
        &mut self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
    ) -> Result<LaunchReport, MigrateError> {
        if launch.num_blocks() == 0 {
            return Err(MigrateError::Launch("empty grid".into()));
        }
        let plan = plan_launch(
            &ck.kernel,
            &ck.analysis.verdict,
            launch,
            args,
            self.sim.node(0),
        );
        let profile = profile_launch(
            &ck.kernel,
            launch,
            args,
            self.sim.node(0),
            self.config.profile_samples,
        )?;
        let mark = self.timeline.checkpoint();
        let report = match plan {
            Plan::ThreePhase(tp) => self.launch_three_phase(ck, launch, args, tp, &profile)?,
            Plan::Replicated(cause) => self.launch_replicated(ck, launch, args, cause, &profile)?,
        };
        // The report's times and wire bytes are *derived* from the spans
        // and counters this launch recorded; the invariant check asserts
        // they reproduce the directly-computed legacy values bit-for-bit.
        let report = self.derive_report(mark, report, ck);
        self.timeline.advance(report.time());
        if self.config.verify_consistency && self.config.fidelity == ExecutionFidelity::Functional {
            for p in ck.kernel.written_global_buffers() {
                let Arg::Buffer(id) = args[p.index()] else {
                    continue;
                };
                if !self.sim.consistent(id) {
                    return Err(MigrateError::Launch(format!(
                        "consistency violation: buffer `{}` differs across nodes after `{}`",
                        ck.kernel.params[p.index()].name(),
                        ck.name()
                    )));
                }
            }
        }
        Ok(report)
    }

    /// Rebuild a launch report's scalar accounting from the timeline
    /// window the launch recorded, asserting it matches the directly
    /// computed values bit-for-bit.
    fn derive_report(&self, mark: Mark, report: LaunchReport, ck: &CompiledKernel) -> LaunchReport {
        let tl = &self.timeline;
        let derived = PhaseTimes {
            // Phase spans are one per node with identical durations
            // (stragglers are folded into the jitter multiplier), so the
            // phase time is the per-node maximum.
            partial: tl.max_in_since(mark, Category::Partial),
            // Summing the per-collective parent spans in recording order
            // reproduces the legacy per-region accumulation exactly.
            allgather: tl.time_in_since(mark, Category::Allgather),
            callback: tl.max_in_since(mark, Category::Callback),
            broadcast: tl.time_in_since(mark, Category::Broadcast),
        };
        let derived_wire = tl.wire_bytes_since(mark);
        assert_eq!(
            derived.partial.to_bits(),
            report.times.partial.to_bits(),
            "timeline-derived partial time diverged for `{}`",
            ck.name()
        );
        assert_eq!(
            derived.allgather.to_bits(),
            report.times.allgather.to_bits(),
            "timeline-derived allgather time diverged for `{}`",
            ck.name()
        );
        assert_eq!(
            derived.callback.to_bits(),
            report.times.callback.to_bits(),
            "timeline-derived callback time diverged for `{}`",
            ck.name()
        );
        assert_eq!(
            derived.broadcast.to_bits(),
            0.0f64.to_bits(),
            "kernel launches must not record broadcasts (`{}`)",
            ck.name()
        );
        assert_eq!(
            derived_wire,
            report.wire_bytes,
            "timeline-derived wire bytes diverged for `{}`",
            ck.name()
        );
        LaunchReport {
            times: derived,
            wire_bytes: derived_wire,
            ..report
        }
    }

    fn launch_three_phase(
        &mut self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
        tp: ThreePhasePlan,
        profile: &LaunchProfile,
    ) -> Result<LaunchReport, MigrateError> {
        let n = self.logical_nodes as u64;
        let part = tp.partition(n);
        let cpu = self.sim.spec.cpu.clone();
        let simd_eff = ck.analysis.simd.efficiency;

        let bt_full = block_compute_time(&profile.per_block, simd_eff, &cpu);
        let bt_tail = block_compute_time(&profile.tail_block, simd_eff, &cpu);
        // A kernel is "staged" when it round-trips a substantial share of its
        // global traffic through emulated shared-memory tiles (transpose-like
        // reshaping) — small reduction scratchpads don't count.
        let staged = profile.per_block.shared_bytes * 4 >= profile.per_block.global_bytes().max(1);
        let tail_divergent = ck
            .analysis
            .verdict
            .meta()
            .map(|m| m.tail_divergent())
            .unwrap_or(false);

        // Multi-node straggler/jitter inefficiency on distributed phases.
        let jitter = 1.0 + self.sim.spec.jitter * (n - 1) as f64;

        // Launch phases are laid out on the timeline starting at the
        // current simulated time; the clock itself advances in `launch`.
        let t0 = self.timeline.clock();

        // ---- Phase 1: partial block execution -------------------------
        let pbn = part.partial_blocks_per_node;
        let t_partial = node_time_profiled(
            bt_full,
            pbn,
            None,
            pbn * profile.per_block.global_bytes(),
            staged,
            &cpu,
        ) * jitter;
        for i in 0..n {
            self.timeline.span(
                format!("{}: partial ({pbn} blocks)", ck.name()),
                Track::Node(i as u32),
                Category::Partial,
                t0,
                t_partial,
            );
        }

        // ---- Phase 2: balanced in-place Allgather ----------------------
        let t_ag0 = t0 + t_partial;
        let mut t_allgather = 0.0;
        let mut wire_bytes = 0u64;
        for region in &tp.buffers {
            let unit = region.unit * part.chunks_per_node;
            let label = format!(
                "allgather {}",
                ck.kernel.params[region.param.index()].name()
            );
            let cost = allgather_cost_traced(
                n as usize,
                unit,
                &self.sim.spec.net,
                self.config.allgather_algo,
                self.config.placement,
                &mut self.timeline,
                t_ag0 + t_allgather,
                &label,
            );
            t_allgather += cost.time;
            wire_bytes += cost.wire_bytes;
        }
        if t_allgather > 0.0 {
            // Visualization-only: every node blocks in the collective.
            for i in 0..n {
                self.timeline.child_span(
                    "allgather",
                    Track::Node(i as u32),
                    Category::Allgather,
                    t_ag0,
                    t_allgather,
                );
            }
        }

        // ---- Phase 3: callback block execution -------------------------
        let has_tail_block = tail_divergent && part.callback_blocks > 0;
        let callback_full = part.callback_blocks - u64::from(has_tail_block);
        let t_callback = node_time_profiled(
            bt_full,
            callback_full,
            has_tail_block.then_some(bt_tail),
            callback_full * profile.per_block.global_bytes()
                + if has_tail_block {
                    profile.tail_block.global_bytes()
                } else {
                    0
                },
            staged,
            &cpu,
        ) * jitter;
        let t_cb0 = t_ag0 + t_allgather;
        for i in 0..n {
            self.timeline.span(
                format!("{}: callback ({} blocks)", ck.name(), part.callback_blocks),
                Track::Node(i as u32),
                Category::Callback,
                t_cb0,
                t_callback,
            );
        }

        // ---- Functional execution --------------------------------------
        let mut node_stats = profile.per_block.scaled(pbn + callback_full);
        if has_tail_block {
            node_stats += profile.tail_block;
        }
        if self.config.fidelity == ExecutionFidelity::Functional {
            let assignments: Vec<_> = (0..n).map(|i| i * pbn..(i + 1) * pbn).collect();
            // Three-phase plans are Allgather-distributable — per-block
            // write intervals are disjoint — so intra-node block
            // parallelism is safe to enable here.
            let opts = ExecOptions {
                engine: self.config.engine,
                node_threads: self.config.node_threads,
                block_parallel: true,
            };
            // Compile once per launch; both execution phases reuse it.
            let prog = match opts.engine {
                EngineKind::Bytecode => Some(Program::compile(&ck.kernel, launch, args)?),
                EngineKind::TreeWalk => None,
            };
            let stats = if let Some(prog) = &prog {
                self.sim.run_program_parallel(prog, &assignments, &opts)?
            } else {
                self.sim
                    .run_blocks_parallel_opts(&ck.kernel, launch, &assignments, args, &opts)?
            };
            for region in &tp.buffers {
                let unit = region.unit * part.chunks_per_node;
                let Arg::Buffer(id) = args[region.param.index()] else {
                    return Err(MigrateError::Launch(format!(
                        "parameter {} is not a buffer",
                        region.param
                    )));
                };
                if unit > 0 {
                    self.sim.allgather_region(
                        id,
                        region.base,
                        unit,
                        self.config.allgather_algo,
                        self.config.placement,
                    );
                }
            }
            let cb: Vec<_> = (0..n).map(|_| part.callback_start..tp.num_blocks).collect();
            let cb_stats = if let Some(prog) = &prog {
                self.sim.run_program_parallel(prog, &cb, &opts)?
            } else {
                self.sim
                    .run_blocks_parallel_opts(&ck.kernel, launch, &cb, args, &opts)?
            };
            node_stats = stats[0] + cb_stats[0];
        }

        // Per-node execution statistics as counter samples at launch start.
        for i in 0..n {
            node_stats.emit_counters(&mut self.timeline, Track::Node(i as u32), t0);
        }

        Ok(LaunchReport {
            mode: ExecMode::ThreePhase {
                plan: tp,
                nodes: n,
                partial_blocks_per_node: pbn,
                callback_blocks: part.callback_blocks,
            },
            times: PhaseTimes {
                partial: t_partial,
                allgather: t_allgather,
                callback: t_callback,
                broadcast: 0.0,
            },
            node_stats,
            wire_bytes,
        })
    }

    fn launch_replicated(
        &mut self,
        ck: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
        cause: ReplicationCause,
        profile: &LaunchProfile,
    ) -> Result<LaunchReport, MigrateError> {
        let n = self.logical_nodes as u64;
        let cpu = self.sim.spec.cpu.clone();
        let simd_eff = ck.analysis.simd.efficiency;
        let bt_full = block_compute_time(&profile.per_block, simd_eff, &cpu);
        let bt_tail = block_compute_time(&profile.tail_block, simd_eff, &cpu);
        let full = profile.num_blocks - 1;
        // A kernel is "staged" when it round-trips a substantial share of its
        // global traffic through emulated shared-memory tiles (transpose-like
        // reshaping) — small reduction scratchpads don't count.
        let staged = profile.per_block.shared_bytes * 4 >= profile.per_block.global_bytes().max(1);
        let t = node_time_profiled(
            bt_full,
            full,
            Some(bt_tail),
            profile.total.global_bytes(),
            staged,
            &cpu,
        );
        let mut node_stats = profile.total;
        if self.config.fidelity == ExecutionFidelity::Functional {
            let all: Vec<_> = (0..n).map(|_| 0..launch.num_blocks()).collect();
            // Replicated launches are exactly the non-distributable ones
            // (atomics, overlapping writes): keep blocks serial per node.
            let opts = ExecOptions {
                engine: self.config.engine,
                node_threads: self.config.node_threads,
                block_parallel: false,
            };
            let stats = self
                .sim
                .run_blocks_parallel_opts(&ck.kernel, launch, &all, args, &opts)?;
            node_stats = stats[0];
        }
        // Every node redundantly runs the whole grid; the legacy accounting
        // files replicated time under the callback phase.
        let t0 = self.timeline.clock();
        for i in 0..n {
            self.timeline.span(
                format!("{}: replicated ({} blocks)", ck.name(), launch.num_blocks()),
                Track::Node(i as u32),
                Category::Callback,
                t0,
                t,
            );
            node_stats.emit_counters(&mut self.timeline, Track::Node(i as u32), t0);
        }
        Ok(LaunchReport {
            mode: ExecMode::Replicated { cause },
            times: PhaseTimes {
                partial: 0.0,
                allgather: 0.0,
                callback: t,
                broadcast: 0.0,
            },
            node_stats,
            wire_bytes: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_source;
    use cucc_gpu_model::{GpuDevice, GpuSpec};

    const LISTING1: &str = "__global__ void vec_copy(char* src, char* dest, int n) {
        int id = blockDim.x * blockIdx.x + threadIdx.x;
        if (id < n) dest[id] = src[id];
    }";

    fn spec(n: u32) -> ClusterSpec {
        ClusterSpec::simd_focused().with_nodes(n)
    }

    #[test]
    fn three_phase_copies_correctly_on_two_nodes() {
        let ck = compile_source(LISTING1).unwrap();
        let mut cl = CuccCluster::new(spec(2), RuntimeConfig::default());
        let src = cl.alloc(1200);
        let dest = cl.alloc(1200);
        let data: Vec<u8> = (0..1200).map(|i| (i % 251) as u8).collect();
        cl.h2d(src, &data);
        let report = cl
            .launch(
                &ck,
                LaunchConfig::cover1(1200, 256),
                &[Arg::Buffer(src), Arg::Buffer(dest), Arg::int(1200)],
            )
            .unwrap();
        match &report.mode {
            ExecMode::ThreePhase {
                partial_blocks_per_node,
                callback_blocks,
                ..
            } => {
                assert_eq!(*partial_blocks_per_node, 2);
                assert_eq!(*callback_blocks, 1);
            }
            other => panic!("expected three-phase, got {other:?}"),
        }
        assert_eq!(cl.d2h(dest), data);
        assert!(report.times.allgather > 0.0);
        assert!(report.times.partial > 0.0);
    }

    #[test]
    fn matches_gpu_reference_across_node_counts() {
        let ck = compile_source(
            "__global__ void saxpy(float* x, float* y, float a, int n) {
                int id = blockDim.x * blockIdx.x + threadIdx.x;
                if (id < n) y[id] = a * x[id] + y[id];
            }",
        )
        .unwrap();
        let n = 5000usize;
        let xs: Vec<f32> = (0..n).map(|i| i as f32 * 0.25).collect();
        let ys: Vec<f32> = (0..n).map(|i| (n - i) as f32).collect();
        let launch = LaunchConfig::cover1(n as u64, 128);

        // GPU reference.
        let mut gpu = GpuDevice::new(GpuSpec::a100());
        let gx = gpu.alloc(n * 4);
        let gy = gpu.alloc(n * 4);
        gpu.pool_mut().write_f32(gx, &xs);
        gpu.pool_mut().write_f32(gy, &ys);
        gpu.launch(
            &ck.kernel,
            launch,
            &[
                Arg::Buffer(gx),
                Arg::Buffer(gy),
                Arg::float(1.5),
                Arg::int(n as i64),
            ],
        )
        .unwrap();
        let reference = gpu.d2h(gy);

        for nodes in [1u32, 2, 3, 4, 8] {
            let mut cl = CuccCluster::new(spec(nodes), RuntimeConfig::default());
            let cx = cl.alloc(n * 4);
            let cy = cl.alloc(n * 4);
            cl.h2d_f32(cx, &xs);
            cl.h2d_f32(cy, &ys);
            cl.launch(
                &ck,
                launch,
                &[
                    Arg::Buffer(cx),
                    Arg::Buffer(cy),
                    Arg::float(1.5),
                    Arg::int(n as i64),
                ],
            )
            .unwrap();
            assert_eq!(cl.d2h(cy), reference, "nodes={nodes}");
        }
    }

    #[test]
    fn replicated_fallback_still_correct() {
        // Histogram with atomics: not distributable, must replicate and
        // still match the GPU.
        let ck = compile_source(
            "__global__ void hist(int* bins, int* data, int n) {
                int id = blockDim.x * blockIdx.x + threadIdx.x;
                if (id < n) atomicAdd(&bins[data[id] % 16], 1);
            }",
        )
        .unwrap();
        assert!(!ck.is_distributable());
        let n = 4096usize;
        let data: Vec<i32> = (0..n as i32).map(|i| i * 37 % 1000).collect();
        let launch = LaunchConfig::cover1(n as u64, 256);

        let mut gpu = GpuDevice::new(GpuSpec::a100());
        let gb = gpu.alloc(16 * 4);
        let gd = gpu.alloc(n * 4);
        gpu.pool_mut().write_i32(gd, &data);
        gpu.launch(
            &ck.kernel,
            launch,
            &[Arg::Buffer(gb), Arg::Buffer(gd), Arg::int(n as i64)],
        )
        .unwrap();
        let reference = gpu.d2h(gb);

        let mut cl = CuccCluster::new(spec(4), RuntimeConfig::default());
        let cb = cl.alloc(16 * 4);
        let cd = cl.alloc(n * 4);
        let mut bytes = Vec::new();
        for v in &data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        cl.h2d(cd, &bytes);
        let report = cl
            .launch(
                &ck,
                launch,
                &[Arg::Buffer(cb), Arg::Buffer(cd), Arg::int(n as i64)],
            )
            .unwrap();
        assert!(matches!(report.mode, ExecMode::Replicated { .. }));
        assert_eq!(report.wire_bytes, 0);
        assert_eq!(cl.d2h(cb), reference);
    }

    #[test]
    fn scaling_reduces_partial_time() {
        let ck = compile_source(
            "__global__ void heavy(float* out, int n, int iters) {
                int id = blockDim.x * blockIdx.x + threadIdx.x;
                float acc = 0.0f;
                for (int i = 0; i < iters; i++)
                    acc += (float)(i) * 0.5f;
                if (id < n) out[id] = acc;
            }",
        )
        .unwrap();
        // 1024 blocks of heavy compute: enough blocks to keep every core of
        // a 16-node cluster busy, enough work per block to dwarf the
        // Allgather.
        let n = 262_144u64;
        let launch = LaunchConfig::cover1(n, 256);
        let mut t1 = 0.0;
        for nodes in [1u32, 4, 16] {
            let mut cl = CuccCluster::new(spec(nodes), RuntimeConfig::modeled());
            let out = cl.alloc(n as usize * 4);
            let report = cl
                .launch(
                    &ck,
                    launch,
                    &[Arg::Buffer(out), Arg::int(n as i64), Arg::int(2000)],
                )
                .unwrap();
            if nodes == 1 {
                t1 = report.time();
            } else {
                let speedup = t1 / report.time();
                assert!(
                    speedup > nodes as f64 * 0.5,
                    "nodes={nodes} speedup={speedup}"
                );
            }
        }
    }

    #[test]
    fn modeled_mode_does_not_touch_memory() {
        let ck = compile_source(LISTING1).unwrap();
        let mut cl = CuccCluster::new(spec(2), RuntimeConfig::modeled());
        let src = cl.alloc(1024);
        let dest = cl.alloc(1024);
        cl.h2d(src, &[9u8; 1024]);
        cl.launch(
            &ck,
            LaunchConfig::cover1(1024, 256),
            &[Arg::Buffer(src), Arg::Buffer(dest), Arg::int(1024)],
        )
        .unwrap();
        assert_eq!(cl.d2h(dest), vec![0u8; 1024], "modeled mode leaves memory");
    }

    #[test]
    fn clock_accumulates_and_resets() {
        let ck = compile_source(LISTING1).unwrap();
        let mut cl = CuccCluster::new(spec(2), RuntimeConfig::default());
        let src = cl.alloc(512);
        let dest = cl.alloc(512);
        cl.h2d(src, &[1u8; 512]);
        assert!(cl.clock() > 0.0, "h2d broadcast costs time");
        let before = cl.clock();
        cl.launch(
            &ck,
            LaunchConfig::cover1(512, 256),
            &[Arg::Buffer(src), Arg::Buffer(dest), Arg::int(512)],
        )
        .unwrap();
        assert!(cl.clock() > before);
        cl.reset_clock();
        assert_eq!(cl.clock(), 0.0);
    }

    #[test]
    fn engines_produce_identical_launches() {
        // Same kernel, same data: tree-walk and bytecode (with intra-node
        // parallelism) must agree on memory, stats, times and wire bytes.
        let ck = compile_source(
            "__global__ void saxpy(float* x, float* y, float a, int n) {
                int id = blockDim.x * blockIdx.x + threadIdx.x;
                if (id < n) y[id] = a * x[id] + y[id];
            }",
        )
        .unwrap();
        let n = 10_000usize;
        let xs: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        let ys: Vec<f32> = (0..n).map(|i| i as f32 * 0.125).collect();
        let launch = LaunchConfig::cover1(n as u64, 128);
        let run = |engine: EngineKind, node_threads: usize| {
            let cfg = RuntimeConfig {
                engine,
                node_threads,
                ..RuntimeConfig::default()
            };
            let mut cl = CuccCluster::new(spec(3), cfg);
            let cx = cl.alloc(n * 4);
            let cy = cl.alloc(n * 4);
            cl.h2d_f32(cx, &xs);
            cl.h2d_f32(cy, &ys);
            let report = cl
                .launch(
                    &ck,
                    launch,
                    &[
                        Arg::Buffer(cx),
                        Arg::Buffer(cy),
                        Arg::float(0.75),
                        Arg::int(n as i64),
                    ],
                )
                .unwrap();
            (cl.d2h_f32(cy), report)
        };
        let (mem_tree, rep_tree) = run(EngineKind::TreeWalk, 0);
        let (mem_byte, rep_byte) = run(EngineKind::Bytecode, 0);
        let (mem_par, rep_par) = run(EngineKind::Bytecode, 4);
        assert_eq!(mem_tree, mem_byte);
        assert_eq!(mem_tree, mem_par);
        assert_eq!(rep_tree.node_stats, rep_byte.node_stats);
        assert_eq!(rep_tree.node_stats, rep_par.node_stats);
        assert_eq!(rep_tree.times, rep_byte.times);
        assert_eq!(rep_tree.wire_bytes, rep_byte.wire_bytes);
    }

    #[test]
    fn empty_grid_rejected() {
        let ck = compile_source(LISTING1).unwrap();
        let mut cl = CuccCluster::new(spec(1), RuntimeConfig::default());
        let b = cl.alloc(4);
        let err = cl.launch(
            &ck,
            LaunchConfig::new(0u32, 32u32),
            &[Arg::Buffer(b), Arg::Buffer(b), Arg::int(0)],
        );
        assert!(matches!(err, Err(MigrateError::Launch(_))));
    }

    #[test]
    fn single_node_is_cupbop_baseline() {
        // One node ⇒ no communication at all, but still the partial phase.
        let ck = compile_source(LISTING1).unwrap();
        let mut cl = CuccCluster::new(spec(1), RuntimeConfig::default());
        let src = cl.alloc(2048);
        let dest = cl.alloc(2048);
        cl.h2d(src, &[3u8; 2048]);
        let r = cl
            .launch(
                &ck,
                LaunchConfig::cover1(2048, 256),
                &[Arg::Buffer(src), Arg::Buffer(dest), Arg::int(2048)],
            )
            .unwrap();
        assert_eq!(r.times.allgather, 0.0);
        assert_eq!(r.wire_bytes, 0);
        assert_eq!(cl.d2h(dest), vec![3u8; 2048]);
    }
}
