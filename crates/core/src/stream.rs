//! CUDA-like streams and events: hazard-aware placement of async work on
//! the simulated clock.
//!
//! A [`StreamSet`] is the host-side bookkeeping behind the cluster's async
//! command-queue API (`stream_create` / `launch_on` / `h2d_async` /
//! `d2h_async` / `event_record` / `stream_wait_event` / `synchronize`).
//! It tracks, purely in simulated time:
//!
//! * **per-stream order** — ops on one stream serialize (each op's
//!   dependency floor includes the stream's last op end);
//! * **cross-stream hazards** — every op declares the buffers it reads and
//!   writes; RAW (read-after-write), WAW (write-after-write) and WAR
//!   (write-after-read) conflicts on a shared buffer add dependency edges
//!   to the conflicting ops' end times, so conflicting work serializes on
//!   the clock no matter which streams it was issued on;
//! * **events** — [`StreamSet::record_event`] snapshots a stream's
//!   position; [`StreamSet::wait_event`] floors another stream behind it.
//!
//! The tracker only decides *when* an op may start. Functional effects
//! (memory writes, collectives) execute eagerly in submission order, which
//! is always legal: dependency edges can only point to earlier-submitted
//! ops (an event must be recorded before it can be waited on, and hazards
//! refer to previously committed buffer accesses), so the submission order
//! is a valid serialization of every schedulable DAG. Hazard-free streams
//! therefore overlap **on the simulated clock** while memory contents stay
//! byte-identical to default-stream serial execution.

use cucc_exec::BufferId;
use std::collections::BTreeMap;

/// Handle to one command stream. Stream 0 is the default stream, which
/// exists from cluster construction; issuing every op on it reproduces the
/// serial layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u32);

/// The default stream (id 0).
pub const DEFAULT_STREAM: StreamId = StreamId(0);

/// Handle to a recorded event (a point in one stream's timeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(pub u32);

/// Last recorded access times of one buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct BufferHazard {
    /// End time of the last op that wrote the buffer.
    write_end: f64,
    /// Latest end time over ops that read the buffer since that write.
    read_end: f64,
}

/// Host-side stream/event state plus the RAW/WAW/WAR hazard tracker.
#[derive(Debug, Clone)]
pub struct StreamSet {
    /// Per-stream ready time: the end of the stream's last op, raised
    /// further by `wait_event`.
    streams: Vec<f64>,
    /// Recorded event times.
    events: Vec<f64>,
    /// Per-buffer hazard state.
    hazards: BTreeMap<BufferId, BufferHazard>,
    /// Whether any async op was committed since the last settle.
    pending: bool,
}

impl Default for StreamSet {
    fn default() -> StreamSet {
        StreamSet::new()
    }
}

impl StreamSet {
    /// A fresh set containing only the default stream.
    pub fn new() -> StreamSet {
        StreamSet {
            streams: vec![0.0],
            events: Vec::new(),
            hazards: BTreeMap::new(),
            pending: false,
        }
    }

    /// Create a new stream, ready immediately.
    pub fn create(&mut self) -> StreamId {
        self.streams.push(0.0);
        StreamId(self.streams.len() as u32 - 1)
    }

    /// Number of streams (including the default stream).
    pub fn num_streams(&self) -> usize {
        self.streams.len()
    }

    /// True if async work was committed since the last
    /// [`StreamSet::settle`] — i.e. lane/hazard state may be ahead of the
    /// serial clock.
    pub fn pending(&self) -> bool {
        self.pending
    }

    fn ready(&self, s: StreamId) -> f64 {
        self.streams[s.0 as usize]
    }

    /// Earliest simulated time an op on `stream` touching `reads`/`writes`
    /// may start: the stream's own position, plus every hazard edge.
    pub fn dep_floor(&self, stream: StreamId, reads: &[BufferId], writes: &[BufferId]) -> f64 {
        let mut t = self.ready(stream);
        for b in reads {
            // RAW: a read must wait for the last write.
            if let Some(h) = self.hazards.get(b) {
                t = t.max(h.write_end);
            }
        }
        for b in writes {
            // WAW and WAR: a write must wait for the last write *and* for
            // every read issued since (it would otherwise clobber the
            // bytes the reader still observes on the simulated clock).
            if let Some(h) = self.hazards.get(b) {
                t = t.max(h.write_end).max(h.read_end);
            }
        }
        t
    }

    /// Commit an op that ends at `end`: advance the stream and record its
    /// buffer accesses for future hazard edges.
    pub fn commit(&mut self, stream: StreamId, reads: &[BufferId], writes: &[BufferId], end: f64) {
        let s = &mut self.streams[stream.0 as usize];
        if end > *s {
            *s = end;
        }
        for b in reads {
            let h = self.hazards.entry(*b).or_default();
            if end > h.read_end {
                h.read_end = end;
            }
        }
        for b in writes {
            let h = self.hazards.entry(*b).or_default();
            if end > h.write_end {
                h.write_end = end;
            }
        }
        self.pending = true;
    }

    /// Record an event at the stream's current position.
    pub fn record_event(&mut self, stream: StreamId) -> EventId {
        self.events.push(self.ready(stream));
        EventId(self.events.len() as u32 - 1)
    }

    /// Make every later op on `stream` start no earlier than the event.
    pub fn wait_event(&mut self, stream: StreamId, event: EventId) {
        let t = self.events[event.0 as usize];
        let s = &mut self.streams[stream.0 as usize];
        if t > *s {
            *s = t;
        }
    }

    /// Latest op end across all streams.
    pub fn horizon(&self) -> f64 {
        self.streams.iter().fold(0.0f64, |acc, &t| acc.max(t))
    }

    /// Forget all recorded times and events (the simulated clock was
    /// reset). Stream handles stay valid.
    pub fn reset(&mut self) {
        for s in &mut self.streams {
            *s = 0.0;
        }
        self.events.clear();
        self.hazards.clear();
        self.pending = false;
    }

    /// Synchronization point: every stream has drained at time `t`.
    /// Streams stay usable; hazard state is cleared (all accesses are in
    /// the past of `t`).
    pub fn settle(&mut self, t: f64) {
        for s in &mut self.streams {
            if t > *s {
                *s = t;
            }
        }
        self.hazards.clear();
        self.pending = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: BufferId = BufferId(0);
    const B: BufferId = BufferId(1);

    #[test]
    fn same_stream_serializes() {
        let mut ss = StreamSet::new();
        assert_eq!(ss.dep_floor(DEFAULT_STREAM, &[], &[]), 0.0);
        ss.commit(DEFAULT_STREAM, &[], &[A], 2.0);
        // Even a hazard-free op on the same stream waits.
        assert_eq!(ss.dep_floor(DEFAULT_STREAM, &[], &[B]), 2.0);
    }

    #[test]
    fn independent_streams_overlap() {
        let mut ss = StreamSet::new();
        let s1 = ss.create();
        let s2 = ss.create();
        ss.commit(s1, &[], &[A], 5.0);
        // Disjoint buffers on another stream: no dependency.
        assert_eq!(ss.dep_floor(s2, &[B], &[]), 0.0);
        assert_eq!(ss.horizon(), 5.0);
    }

    #[test]
    fn raw_waw_war_edges() {
        let mut ss = StreamSet::new();
        let s1 = ss.create();
        let s2 = ss.create();
        // s1 writes A at [0,3).
        ss.commit(s1, &[], &[A], 3.0);
        // RAW: s2 reading A waits for the write.
        assert_eq!(ss.dep_floor(s2, &[A], &[]), 3.0);
        // WAW: s2 writing A waits too.
        assert_eq!(ss.dep_floor(s2, &[], &[A]), 3.0);
        // s2 reads A until 7.0.
        ss.commit(s2, &[A], &[], 7.0);
        // WAR: a later write to A waits for the read...
        assert_eq!(ss.dep_floor(s1, &[], &[A]), 7.0);
        // ...but another read only waits for the write.
        assert_eq!(ss.dep_floor(s1, &[A], &[]), 3.0);
    }

    #[test]
    fn events_order_streams() {
        let mut ss = StreamSet::new();
        let s1 = ss.create();
        let s2 = ss.create();
        ss.commit(s1, &[], &[A], 4.0);
        let ev = ss.record_event(s1);
        ss.commit(s1, &[], &[A], 9.0);
        // s2 waits on the event: floored at 4.0, not at s1's later 9.0.
        ss.wait_event(s2, ev);
        assert_eq!(ss.dep_floor(s2, &[B], &[]), 4.0);
        // Waiting never moves a stream backward.
        ss.commit(s2, &[], &[B], 6.0);
        ss.wait_event(s2, ev);
        assert_eq!(ss.dep_floor(s2, &[], &[]), 6.0);
    }

    #[test]
    fn settle_clears_hazards_and_floors_streams() {
        let mut ss = StreamSet::new();
        let s1 = ss.create();
        ss.commit(s1, &[], &[A], 3.0);
        assert!(ss.pending());
        ss.settle(5.0);
        assert!(!ss.pending());
        assert_eq!(ss.dep_floor(DEFAULT_STREAM, &[A], &[A]), 5.0);
        assert_eq!(ss.dep_floor(s1, &[], &[]), 5.0);
        assert_eq!(ss.horizon(), 5.0);
    }
}
