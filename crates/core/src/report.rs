//! Launch reports: what happened, where the time went.

use crate::error::MigrateError;
use cucc_analysis::{ReplicationCause, ThreePhasePlan};
use cucc_exec::BlockStats;

/// How a launch was executed.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecMode {
    /// The CuCC three-phase workflow with the given plan and node count.
    ThreePhase {
        /// The resolved plan.
        plan: ThreePhasePlan,
        /// Nodes used.
        nodes: u64,
        /// Blocks each node ran in phase 1.
        partial_blocks_per_node: u64,
        /// Blocks run redundantly in phase 3.
        callback_blocks: u64,
    },
    /// Replicated fallback (trivial Allgather distribution).
    Replicated {
        /// Why the fallback was taken.
        cause: ReplicationCause,
    },
}

impl ExecMode {
    /// True for the distributed path.
    pub fn is_three_phase(&self) -> bool {
        matches!(self, ExecMode::ThreePhase { .. })
    }

    /// The three-phase geometry, or a typed error naming the fallback
    /// cause. Replaces the old pattern of panicking on the unexpected arm.
    pub fn three_phase(&self) -> Result<ThreePhaseShape<'_>, MigrateError> {
        match self {
            ExecMode::ThreePhase {
                plan,
                nodes,
                partial_blocks_per_node,
                callback_blocks,
            } => Ok(ThreePhaseShape {
                plan,
                nodes: *nodes,
                partial_blocks_per_node: *partial_blocks_per_node,
                callback_blocks: *callback_blocks,
            }),
            ExecMode::Replicated { cause } => Err(MigrateError::Launch(format!(
                "expected three-phase execution, got replicated ({cause})"
            ))),
        }
    }
}

/// Borrowed view of [`ExecMode::ThreePhase`]'s fields.
#[derive(Debug, Clone, Copy)]
pub struct ThreePhaseShape<'a> {
    /// The resolved plan.
    pub plan: &'a ThreePhasePlan,
    /// Nodes used.
    pub nodes: u64,
    /// Blocks each node ran in phase 1.
    pub partial_blocks_per_node: u64,
    /// Blocks run redundantly in phase 3.
    pub callback_blocks: u64,
}

/// Simulated time breakdown of one launch (drives Figures 8–13).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseTimes {
    /// Phase 1: partial block execution (max over nodes).
    pub partial: f64,
    /// Phase 2: balanced in-place Allgather.
    pub allgather: f64,
    /// Phase 3: callback block execution.
    pub callback: f64,
    /// Broadcast collectives (replicated h2d distribution). Always zero for
    /// kernel launches; populated by session-level views that include host
    /// transfers.
    pub broadcast: f64,
    /// Time wasted on collective retries (timeout + backoff) while
    /// detecting faults. Zero unless faults fired.
    pub retry: f64,
    /// Recovery re-execution time: slowest surviving node's total across
    /// all re-partition rounds (and a degraded re-run, if one happened).
    /// Zero unless faults fired.
    pub reexec: f64,
}

impl PhaseTimes {
    /// Total simulated time.
    pub fn total(&self) -> f64 {
        self.partial + self.allgather + self.callback + self.broadcast + self.retry + self.reexec
    }

    /// Fraction of total time spent in communication (Figure 9). Retry time
    /// is fabric time (timeouts on the wire), so it counts as
    /// communication; re-execution is compute.
    pub fn comm_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            (self.allgather + self.broadcast + self.retry) / t
        }
    }
}

/// What the fault subsystem saw and did during one launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSummary {
    /// Confirmed node deaths during this launch.
    pub failures: u32,
    /// Wasted collective attempts (timeouts that were retried).
    pub retries: u32,
    /// Blocks re-executed by survivors during recovery (including a full
    /// degraded re-run).
    pub reexecuted_blocks: u64,
    /// True when recovery fell back to replicated execution on survivors.
    pub degraded: bool,
}

impl FaultSummary {
    /// True when no fault left any mark on this launch.
    pub fn is_clean(&self) -> bool {
        *self == FaultSummary::default()
    }
}

/// Everything the runtime reports about one launch.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchReport {
    /// Distribution decision.
    pub mode: ExecMode,
    /// Simulated time breakdown.
    pub times: PhaseTimes,
    /// Dynamic statistics of the work one node performed (phase 1 +
    /// callbacks). In replicated mode: the whole launch.
    pub node_stats: BlockStats,
    /// Bytes moved across the network by this launch.
    pub wire_bytes: u64,
    /// Fault activity. [`FaultSummary::default`] (all zeros) when no fault
    /// fired, so fault-free reports compare bit-for-bit with pre-fault
    /// ones.
    pub faults: FaultSummary,
}

impl LaunchReport {
    /// Simulated kernel time in seconds.
    pub fn time(&self) -> f64 {
        self.times.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_times_math() {
        let t = PhaseTimes {
            partial: 0.6,
            allgather: 0.3,
            callback: 0.1,
            ..PhaseTimes::default()
        };
        assert!((t.total() - 1.0).abs() < 1e-12);
        assert!((t.comm_fraction() - 0.3).abs() < 1e-12);
        assert_eq!(PhaseTimes::default().comm_fraction(), 0.0);
    }

    #[test]
    fn broadcast_counts_as_communication() {
        let t = PhaseTimes {
            partial: 0.5,
            allgather: 0.2,
            callback: 0.1,
            broadcast: 0.2,
            ..PhaseTimes::default()
        };
        assert!((t.total() - 1.0).abs() < 1e-12);
        assert!((t.comm_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn retry_is_comm_and_reexec_is_compute() {
        let t = PhaseTimes {
            partial: 0.3,
            allgather: 0.2,
            callback: 0.1,
            retry: 0.2,
            reexec: 0.2,
            ..PhaseTimes::default()
        };
        assert!((t.total() - 1.0).abs() < 1e-12);
        assert!((t.comm_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn fault_summary_cleanliness() {
        assert!(FaultSummary::default().is_clean());
        let s = FaultSummary {
            retries: 1,
            ..FaultSummary::default()
        };
        assert!(!s.is_clean());
    }

    #[test]
    fn three_phase_accessor_is_typed() {
        let mode = ExecMode::Replicated {
            cause: ReplicationCause::NoFullBlocks,
        };
        let err = mode.three_phase().unwrap_err();
        assert!(err.to_string().contains("no full blocks"));
    }
}
