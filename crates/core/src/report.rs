//! Launch reports: what happened, where the time went.

use cucc_analysis::{ReplicationCause, ThreePhasePlan};
use cucc_exec::BlockStats;

/// How a launch was executed.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecMode {
    /// The CuCC three-phase workflow with the given plan and node count.
    ThreePhase {
        /// The resolved plan.
        plan: ThreePhasePlan,
        /// Nodes used.
        nodes: u64,
        /// Blocks each node ran in phase 1.
        partial_blocks_per_node: u64,
        /// Blocks run redundantly in phase 3.
        callback_blocks: u64,
    },
    /// Replicated fallback (trivial Allgather distribution).
    Replicated {
        /// Why the fallback was taken.
        cause: ReplicationCause,
    },
}

impl ExecMode {
    /// True for the distributed path.
    pub fn is_three_phase(&self) -> bool {
        matches!(self, ExecMode::ThreePhase { .. })
    }
}

/// Simulated time breakdown of one launch (drives Figures 8–13).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseTimes {
    /// Phase 1: partial block execution (max over nodes).
    pub partial: f64,
    /// Phase 2: balanced in-place Allgather.
    pub allgather: f64,
    /// Phase 3: callback block execution.
    pub callback: f64,
    /// Broadcast collectives (replicated h2d distribution). Always zero for
    /// kernel launches; populated by session-level views that include host
    /// transfers.
    pub broadcast: f64,
}

impl PhaseTimes {
    /// Total simulated time.
    pub fn total(&self) -> f64 {
        self.partial + self.allgather + self.callback + self.broadcast
    }

    /// Fraction of total time spent in communication (Figure 9).
    pub fn comm_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            (self.allgather + self.broadcast) / t
        }
    }
}

/// Everything the runtime reports about one launch.
#[derive(Debug, Clone, PartialEq)]
pub struct LaunchReport {
    /// Distribution decision.
    pub mode: ExecMode,
    /// Simulated time breakdown.
    pub times: PhaseTimes,
    /// Dynamic statistics of the work one node performed (phase 1 +
    /// callbacks). In replicated mode: the whole launch.
    pub node_stats: BlockStats,
    /// Bytes moved across the network by this launch.
    pub wire_bytes: u64,
}

impl LaunchReport {
    /// Simulated kernel time in seconds.
    pub fn time(&self) -> f64 {
        self.times.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_times_math() {
        let t = PhaseTimes {
            partial: 0.6,
            allgather: 0.3,
            callback: 0.1,
            broadcast: 0.0,
        };
        assert!((t.total() - 1.0).abs() < 1e-12);
        assert!((t.comm_fraction() - 0.3).abs() < 1e-12);
        assert_eq!(PhaseTimes::default().comm_fraction(), 0.0);
    }

    #[test]
    fn broadcast_counts_as_communication() {
        let t = PhaseTimes {
            partial: 0.5,
            allgather: 0.2,
            callback: 0.1,
            broadcast: 0.2,
        };
        assert!((t.total() - 1.0).abs() < 1e-12);
        assert!((t.comm_fraction() - 0.4).abs() < 1e-12);
    }
}
