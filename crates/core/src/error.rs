//! Error type of the migration pipeline.

use std::fmt;

/// Anything that can go wrong between GPU source and cluster execution.
#[derive(Debug, Clone, PartialEq)]
pub enum MigrateError {
    /// Front-end failure.
    Parse(cucc_ir::ParseError),
    /// IR validation failure.
    Validate(cucc_ir::ValidateError),
    /// Runtime interpretation failure (out-of-bounds, div-by-zero, …).
    Exec(cucc_exec::ExecError),
    /// A launch was attempted with malformed arguments or geometry.
    Launch(String),
}

impl fmt::Display for MigrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrateError::Parse(e) => write!(f, "{e}"),
            MigrateError::Validate(e) => write!(f, "validation error: {e}"),
            MigrateError::Exec(e) => write!(f, "execution error: {e}"),
            MigrateError::Launch(m) => write!(f, "launch error: {m}"),
        }
    }
}

impl std::error::Error for MigrateError {}

impl From<cucc_ir::ParseError> for MigrateError {
    fn from(e: cucc_ir::ParseError) -> Self {
        MigrateError::Parse(e)
    }
}

impl From<cucc_ir::ValidateError> for MigrateError {
    fn from(e: cucc_ir::ValidateError) -> Self {
        MigrateError::Validate(e)
    }
}

impl From<cucc_exec::ExecError> for MigrateError {
    fn from(e: cucc_exec::ExecError) -> Self {
        MigrateError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: MigrateError = cucc_exec::ExecError::DivByZero.into();
        assert!(e.to_string().contains("division"));
        let e = MigrateError::Launch("bad grid".into());
        assert!(e.to_string().contains("bad grid"));
    }
}
