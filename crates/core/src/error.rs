//! Error type of the migration pipeline.

use std::fmt;

/// Anything that can go wrong between GPU source and cluster execution.
#[derive(Debug, Clone, PartialEq)]
pub enum MigrateError {
    /// Front-end failure.
    Parse(cucc_ir::ParseError),
    /// IR validation failure.
    Validate(cucc_ir::ValidateError),
    /// Runtime interpretation failure (out-of-bounds, div-by-zero, …).
    Exec(cucc_exec::ExecError),
    /// A launch was attempted with malformed arguments or geometry.
    Launch(String),
    /// A host transfer targeted a missing buffer or mismatched its size.
    Transfer(String),
    /// A node was confirmed dead and the launch could not complete on the
    /// survivors (or no survivors remain).
    NodeFailure {
        /// The dead node, when one was identified.
        node: Option<u32>,
        /// What was being attempted.
        context: String,
    },
    /// A collective exhausted its retries without a dead peer to evict — a
    /// persistent link fault.
    Timeout {
        /// What timed out.
        context: String,
        /// Wasted attempts before giving up.
        retries: u32,
    },
    /// Recovery would have required degraded (replicated-on-survivors)
    /// execution but the fault plan forbids it.
    Degraded {
        /// Why re-partitioning across the survivors was not possible.
        context: String,
        /// Surviving nodes at the point of failure.
        survivors: u32,
    },
    /// A checkpoint could not be written, read, or restored (I/O failure,
    /// corrupt or incompatible payload, mismatched fault plan).
    Checkpoint(String),
    /// The serving front-end refused a job at admission: the submitting
    /// tenant's queue is at its configured depth limit. Rejected jobs are
    /// never partially executed — the cluster is untouched.
    Rejected {
        /// The tenant whose job was refused.
        tenant: u32,
        /// Queued jobs the tenant already holds.
        depth: usize,
        /// The per-tenant queue-depth admission limit.
        limit: usize,
    },
}

impl fmt::Display for MigrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrateError::Parse(e) => write!(f, "{e}"),
            MigrateError::Validate(e) => write!(f, "validation error: {e}"),
            MigrateError::Exec(e) => write!(f, "execution error: {e}"),
            MigrateError::Launch(m) => write!(f, "launch error: {m}"),
            MigrateError::Transfer(m) => write!(f, "transfer error: {m}"),
            MigrateError::NodeFailure { node, context } => match node {
                Some(n) => write!(f, "node failure: node {n} died during {context}"),
                None => write!(f, "node failure: no surviving nodes for {context}"),
            },
            MigrateError::Timeout { context, retries } => {
                write!(f, "timeout: {context} failed after {retries} retries")
            }
            MigrateError::Degraded { context, survivors } => write!(
                f,
                "degraded execution required but disallowed: {context} ({survivors} survivors)"
            ),
            MigrateError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            MigrateError::Rejected {
                tenant,
                depth,
                limit,
            } => write!(
                f,
                "admission rejected: tenant {tenant} already queues {depth} job(s) \
                 at the depth limit {limit}"
            ),
        }
    }
}

impl std::error::Error for MigrateError {}

impl From<cucc_ir::ParseError> for MigrateError {
    fn from(e: cucc_ir::ParseError) -> Self {
        MigrateError::Parse(e)
    }
}

impl From<cucc_ir::ValidateError> for MigrateError {
    fn from(e: cucc_ir::ValidateError) -> Self {
        MigrateError::Validate(e)
    }
}

impl From<cucc_exec::ExecError> for MigrateError {
    fn from(e: cucc_exec::ExecError) -> Self {
        MigrateError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: MigrateError = cucc_exec::ExecError::DivByZero.into();
        assert!(e.to_string().contains("division"));
        let e = MigrateError::Launch("bad grid".into());
        assert!(e.to_string().contains("bad grid"));
    }

    #[test]
    fn fault_variant_display() {
        let e = MigrateError::NodeFailure {
            node: Some(3),
            context: "allgather y".into(),
        };
        assert!(e.to_string().contains("node 3"));
        let e = MigrateError::Timeout {
            context: "allgather y".into(),
            retries: 3,
        };
        assert!(e.to_string().contains("3 retries"));
        let e = MigrateError::Degraded {
            context: "5 chunks over 2 survivors".into(),
            survivors: 2,
        };
        assert!(e.to_string().contains("disallowed"));
        let e = MigrateError::Transfer("buffer 9 does not exist".into());
        assert!(e.to_string().contains("transfer error"));
        let e = MigrateError::Checkpoint("bad magic".into());
        assert!(e.to_string().contains("checkpoint error"));
        let e = MigrateError::Rejected {
            tenant: 7,
            depth: 64,
            limit: 64,
        };
        assert!(e.to_string().contains("tenant 7"));
        assert!(e.to_string().contains("limit 64"));
    }
}
