//! Block-resizing compiler transformation — the paper's §8.3
//! "Workload Redistribution" future-work proposal, implemented.
//!
//! GPU programs with few blocks cannot feed large CPU clusters (§8.1: a
//! `C`-node cluster with `T` cores needs ≥ `C·T` blocks), and hard-coded
//! block sizes prevent adjusting the block count. [`split_blocks`] performs
//! the adjustment as an IR transformation: each original block of `B`
//! threads becomes `factor` blocks of `B/factor` threads, multiplying the
//! grid's parallelism without changing semantics.
//!
//! The rewrite keeps every index expression **affine** so the transformed
//! kernel stays Allgather distributable: the sub-block index is carried in
//! a new leading grid dimension rather than by `%`/`/` arithmetic —
//!
//! ```text
//! threadIdx.x  ↦  blockIdx.x · blockDim.x + threadIdx.x   (position in old block)
//! blockIdx.x   ↦  blockIdx.y                              (old block id)
//! blockDim.x   ↦  blockDim.x · factor                     (old block size)
//! gridDim.x    ↦  gridDim.y                               (old grid size)
//! grid (G)     ↦  (factor, G);   block (B) ↦ (B / factor)
//! ```
//!
//! With the x-axis fastest in linear block order, the `factor` sub-blocks
//! of one original block are consecutive: for dense per-block footprints
//! the planner distributes at sub-block granularity directly, and for
//! interleaved ones its grid-row chunking reconstructs exactly the original
//! per-block write footprints.

use crate::error::MigrateError;
use cucc_ir::{Axis, Expr, Kernel, LaunchConfig, Stmt};

/// Check whether a kernel is eligible for [`split_blocks`].
///
/// Requirements: no `__syncthreads()` and no `__shared__` arrays (threads
/// of the original block would land in different new blocks), and no use of
/// the y/z thread/block axes (the transform repurposes the grid's y axis).
pub fn can_split_blocks(kernel: &Kernel) -> Result<(), String> {
    if kernel.has_barrier() {
        return Err("kernel uses __syncthreads(): threads of a block cannot be separated".into());
    }
    if !kernel.shared.is_empty() {
        return Err("kernel uses __shared__ memory: threads of a block share state".into());
    }
    let mut bad: Option<String> = None;
    kernel.visit_stmts(&mut |s: &Stmt| {
        s.visit_exprs(&mut |e: &Expr| {
            e.visit(&mut |node| {
                let uses_hi_axis = matches!(
                    node,
                    Expr::ThreadIdx(Axis::Y | Axis::Z)
                        | Expr::BlockIdx(Axis::Y | Axis::Z)
                        | Expr::BlockDim(Axis::Y | Axis::Z)
                        | Expr::GridDim(Axis::Y | Axis::Z)
                );
                if uses_hi_axis && bad.is_none() {
                    bad = Some("kernel uses y/z axes, which the transform repurposes".into());
                }
            });
        });
    });
    match bad {
        Some(b) => Err(b),
        None => Ok(()),
    }
}

/// Split every block of a 1-D kernel into `factor` smaller blocks.
///
/// Returns the transformed kernel and launch configuration. The original
/// `launch.block.x` must be divisible by `factor`.
pub fn split_blocks(
    kernel: &Kernel,
    launch: LaunchConfig,
    factor: u32,
) -> Result<(Kernel, LaunchConfig), MigrateError> {
    if factor == 0 {
        return Err(MigrateError::Launch("split factor must be ≥ 1".into()));
    }
    if factor == 1 {
        return Ok((kernel.clone(), launch));
    }
    can_split_blocks(kernel).map_err(MigrateError::Launch)?;
    if launch.block.y != 1 || launch.block.z != 1 || launch.grid.y != 1 || launch.grid.z != 1 {
        return Err(MigrateError::Launch(
            "split_blocks requires a 1-D launch".into(),
        ));
    }
    if launch.block.x % factor != 0 {
        return Err(MigrateError::Launch(format!(
            "block size {} not divisible by split factor {factor}",
            launch.block.x
        )));
    }
    let mut out = kernel.clone();
    out.name = format!("{}_split{}", kernel.name, factor);
    rewrite_block(&mut out.body);
    let new_launch = LaunchConfig::new((factor, launch.grid.x), launch.block.x / factor);
    Ok((out, new_launch))
}

fn rewrite_block(stmts: &mut [Stmt]) {
    for s in stmts {
        match s {
            Stmt::Assign { value, .. } => rewrite_expr(value),
            Stmt::Store { index, value, .. } | Stmt::AtomicRmw { index, value, .. } => {
                rewrite_expr(index);
                rewrite_expr(value);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                rewrite_expr(cond);
                rewrite_block(then_body);
                rewrite_block(else_body);
            }
            Stmt::For {
                start,
                end,
                step,
                body,
                ..
            } => {
                rewrite_expr(start);
                rewrite_expr(end);
                rewrite_expr(step);
                rewrite_block(body);
            }
            Stmt::SyncThreads | Stmt::Return => {}
        }
    }
}

fn rewrite_expr(e: &mut Expr) {
    // Bottom-up replacement of the four index registers.
    match e {
        Expr::ThreadIdx(Axis::X) => {
            *e = Expr::BlockIdx(Axis::X)
                .mul(Expr::BlockDim(Axis::X))
                .add(Expr::ThreadIdx(Axis::X));
        }
        Expr::BlockIdx(Axis::X) => *e = Expr::BlockIdx(Axis::Y),
        Expr::BlockDim(Axis::X) => {
            *e = Expr::BlockDim(Axis::X).mul(Expr::GridDim(Axis::X));
        }
        Expr::GridDim(Axis::X) => *e = Expr::GridDim(Axis::Y),
        Expr::Unary { arg, .. } => rewrite_expr(arg),
        Expr::Binary { lhs, rhs, .. } => {
            rewrite_expr(lhs);
            rewrite_expr(rhs);
        }
        Expr::Select {
            cond,
            then_value,
            else_value,
        } => {
            rewrite_expr(cond);
            rewrite_expr(then_value);
            rewrite_expr(else_value);
        }
        Expr::Cast { arg, .. } => rewrite_expr(arg),
        Expr::Load { index, .. } => rewrite_expr(index),
        Expr::Call { args, .. } => args.iter_mut().for_each(rewrite_expr),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use cucc_exec::{execute_launch, Arg, MemPool};
    use cucc_ir::{parse_kernel, Scalar};

    const SAXPY: &str = "__global__ void saxpy(float* x, float* y, float a, int n) {
        int id = blockIdx.x * blockDim.x + threadIdx.x;
        if (id < n) y[id] = a * x[id] + y[id];
    }";

    fn run_variant(src: &str, launch: LaunchConfig, factor: u32, n: usize) -> Vec<u8> {
        let k = parse_kernel(src).unwrap();
        let (k, launch) = split_blocks(&k, launch, factor).unwrap();
        cucc_ir::validate(&k).unwrap();
        let mut pool = MemPool::new();
        let x = pool.alloc_elems(Scalar::F32, n);
        let y = pool.alloc_elems(Scalar::F32, n);
        let xs: Vec<f32> = (0..n).map(|i| i as f32 * 0.25).collect();
        let ys: Vec<f32> = (0..n).map(|i| (n - i) as f32).collect();
        pool.write_f32(x, &xs);
        pool.write_f32(y, &ys);
        execute_launch(
            &k,
            launch,
            &[
                Arg::Buffer(x),
                Arg::Buffer(y),
                Arg::float(1.5),
                Arg::int(n as i64),
            ],
            &mut pool,
        )
        .unwrap();
        pool.bytes(y).to_vec()
    }

    #[test]
    fn split_preserves_semantics() {
        let n = 3000;
        let launch = LaunchConfig::cover1(n as u64, 256);
        let baseline = run_variant(SAXPY, launch, 1, n);
        for factor in [2u32, 4, 8, 256] {
            assert_eq!(
                run_variant(SAXPY, launch, factor, n),
                baseline,
                "factor {factor}"
            );
        }
    }

    #[test]
    fn split_multiplies_blocks() {
        let k = parse_kernel(SAXPY).unwrap();
        let launch = LaunchConfig::cover1(4096, 256); // 16 blocks
        let (k4, l4) = split_blocks(&k, launch, 4).unwrap();
        assert_eq!(l4.num_blocks(), 64);
        assert_eq!(l4.threads_per_block(), 64);
        assert_eq!(l4.total_threads(), launch.total_threads());
        assert_eq!(k4.name, "saxpy_split4");
    }

    #[test]
    fn split_kernel_stays_distributable() {
        let k = parse_kernel(SAXPY).unwrap();
        let launch = LaunchConfig::cover1(4096, 256);
        let (k4, _l4) = split_blocks(&k, launch, 4).unwrap();
        let ck = compile(k4).unwrap();
        assert!(
            ck.is_distributable(),
            "split kernel lost distributability: {:?}",
            ck.analysis.verdict.reasons()
        );
    }

    #[test]
    fn split_plan_chunks_by_original_block() {
        use cucc_analysis::{plan_launch, Plan};
        let k = parse_kernel(SAXPY).unwrap();
        let n = 4096usize;
        let launch = LaunchConfig::cover1(n as u64, 256);
        let (k4, l4) = split_blocks(&k, launch, 4).unwrap();
        let ck = compile(k4).unwrap();
        let mut pool = MemPool::new();
        let x = pool.alloc_elems(Scalar::F32, n);
        let y = pool.alloc_elems(Scalar::F32, n);
        let args = vec![
            Arg::Buffer(x),
            Arg::Buffer(y),
            Arg::float(1.0),
            Arg::int(n as i64),
        ];
        let Plan::ThreePhase(tp) = plan_launch(&ck.kernel, &ck.analysis.verdict, l4, &args, &pool)
        else {
            panic!("expected plan");
        };
        // Sub-blocks of the same original block write consecutive dense
        // slices, so the planner can distribute at single-sub-block
        // granularity — strictly finer than the original kernel.
        assert_eq!(tp.chunk_blocks, 1);
        assert_eq!(tp.full_chunks, 64);
        assert_eq!(tp.buffers[0].unit, 64 * 4);
    }

    #[test]
    fn barrier_kernels_rejected() {
        let src = "__global__ void k(float* o) {
            __shared__ float t[32];
            t[threadIdx.x] = 1.0f;
            __syncthreads();
            o[blockIdx.x * blockDim.x + threadIdx.x] = t[threadIdx.x];
        }";
        let k = parse_kernel(src).unwrap();
        assert!(can_split_blocks(&k).is_err());
        assert!(split_blocks(&k, LaunchConfig::new(2u32, 32u32), 2).is_err());
    }

    #[test]
    fn two_d_kernels_rejected() {
        let src = "__global__ void k(float* o, int w) {
            int x = blockIdx.x * blockDim.x + threadIdx.x;
            int y = blockIdx.y;
            o[y * w + x] = 1.0f;
        }";
        let k = parse_kernel(src).unwrap();
        assert!(can_split_blocks(&k).is_err());
    }

    #[test]
    fn indivisible_factor_rejected() {
        let k = parse_kernel(SAXPY).unwrap();
        assert!(split_blocks(&k, LaunchConfig::new(4u32, 100u32), 3).is_err());
    }

    #[test]
    fn factor_one_is_identity() {
        let k = parse_kernel(SAXPY).unwrap();
        let launch = LaunchConfig::cover1(1000, 128);
        let (k1, l1) = split_blocks(&k, launch, 1).unwrap();
        assert_eq!(k1.body, k.body);
        assert_eq!(l1, launch);
    }
}
