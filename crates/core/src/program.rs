//! Whole-program migration: the end-to-end framework surface.
//!
//! The paper's CuCC is not a kernel tool but an **end-to-end framework**
//! that translates complete CUDA programs — host code with allocations,
//! transfers and (possibly many) kernel launches — into CPU cluster
//! executables (§5). [`GpuProgram`] models that host module: a named
//! sequence of [`HostOp`]s over named buffers and compiled kernels, and
//! [`GpuProgram::run_with`] executes it on any [`ProgramBackend`] — the
//! CuCC cluster, the GPU reference device, or the PGAS baseline — so whole
//! applications can be compared functionally and in simulated time.

use crate::compile::{compile_source, CompiledKernel};
use crate::error::MigrateError;
use crate::report::LaunchReport;
use crate::runtime::CuccCluster;
use crate::stream::StreamId;
use cucc_exec::{Arg, BufferId};
use cucc_ir::{LaunchConfig, Value};
use cucc_trace::{Category, Track};
use std::collections::BTreeMap;

/// A launch argument referring to program state by name.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgSpec {
    /// A named program buffer.
    Buffer(String),
    /// Integer scalar.
    Int(i64),
    /// Float scalar.
    Float(f64),
}

/// One host-side operation.
#[derive(Debug, Clone, PartialEq)]
pub enum HostOp {
    /// `cudaMalloc`: allocate a named zeroed buffer.
    Alloc { name: String, bytes: usize },
    /// `cudaMemcpy` host→device of the embedded data.
    H2d { buf: String, data: Vec<u8> },
    /// Kernel launch by kernel name.
    Launch {
        kernel: String,
        launch: LaunchConfig,
        args: Vec<ArgSpec>,
    },
    /// `cudaMemcpy` device→host: marks `buf` as a program output.
    D2h { buf: String },
}

/// A complete migratable GPU program.
#[derive(Debug, Clone)]
pub struct GpuProgram {
    /// Program name.
    pub name: String,
    /// Compiled kernels, looked up by kernel name at launch ops.
    pub kernels: Vec<CompiledKernel>,
    /// Host operation sequence.
    pub ops: Vec<HostOp>,
}

/// Result of running a program on a backend.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramResult {
    /// Final contents of every buffer read back with [`HostOp::D2h`],
    /// keyed by buffer name (later reads overwrite earlier ones).
    pub outputs: BTreeMap<String, Vec<u8>>,
    /// Total simulated kernel time (host transfers excluded, matching the
    /// paper's kernel-execution-time measurements).
    pub kernel_time: f64,
    /// Simulated host-transfer time this run spent (h2d broadcasts plus
    /// d2h reads), derived from the backend's timeline so whole-program
    /// comparisons don't silently drop transfer cost. Zero on backends
    /// without a transfer-time model.
    pub transfer_time: f64,
    /// Number of kernel launches executed.
    pub launches: usize,
}

/// Anything a [`GpuProgram`] can run on.
pub trait ProgramBackend {
    /// Allocate zeroed device memory.
    fn prog_alloc(&mut self, bytes: usize) -> BufferId;
    /// Host→device copy.
    fn prog_h2d(&mut self, buf: BufferId, data: &[u8]);
    /// Device→host copy.
    fn prog_d2h(&mut self, buf: BufferId) -> Vec<u8>;
    /// Launch a compiled kernel; returns simulated kernel seconds.
    fn prog_launch(
        &mut self,
        kernel: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
    ) -> Result<f64, MigrateError>;
    /// Cumulative simulated host-transfer seconds (h2d + d2h) so far.
    /// Backends without a transfer-time model report zero.
    fn prog_transfer_time(&self) -> f64 {
        0.0
    }
}

impl ProgramBackend for CuccCluster {
    fn prog_alloc(&mut self, bytes: usize) -> BufferId {
        self.alloc(bytes)
    }
    fn prog_h2d(&mut self, buf: BufferId, data: &[u8]) {
        self.upload(buf, data).expect("program h2d");
    }
    fn prog_d2h(&mut self, buf: BufferId) -> Vec<u8> {
        self.download::<u8>(buf).expect("program d2h")
    }
    fn prog_launch(
        &mut self,
        kernel: &CompiledKernel,
        launch: LaunchConfig,
        args: &[Arg],
    ) -> Result<f64, MigrateError> {
        self.launch(kernel, launch, args)
            .map(|r: LaunchReport| r.time())
    }
    fn prog_transfer_time(&self) -> f64 {
        let tl = self.timeline();
        tl.time_in_on(Track::Host, Category::H2d) + tl.time_in_on(Track::Host, Category::D2h)
    }
}

impl GpuProgram {
    /// Start building a program.
    pub fn builder(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            program: GpuProgram {
                name: name.into(),
                kernels: Vec::new(),
                ops: Vec::new(),
            },
        }
    }

    /// Look a kernel up by name.
    pub fn kernel(&self, name: &str) -> Option<&CompiledKernel> {
        self.kernels.iter().find(|k| k.name() == name)
    }

    /// Execute on a backend.
    pub fn run_with<B: ProgramBackend>(
        &self,
        backend: &mut B,
    ) -> Result<ProgramResult, MigrateError> {
        let mut buffers: BTreeMap<String, BufferId> = BTreeMap::new();
        let transfers_before = backend.prog_transfer_time();
        let mut result = ProgramResult {
            outputs: BTreeMap::new(),
            kernel_time: 0.0,
            transfer_time: 0.0,
            launches: 0,
        };
        for op in &self.ops {
            match op {
                HostOp::Alloc { name, bytes } => {
                    if buffers.contains_key(name) {
                        return Err(MigrateError::Launch(format!(
                            "buffer `{name}` allocated twice"
                        )));
                    }
                    let id = backend.prog_alloc(*bytes);
                    buffers.insert(name.clone(), id);
                }
                HostOp::H2d { buf, data } => {
                    let id = *buffers.get(buf).ok_or_else(|| {
                        MigrateError::Launch(format!("h2d to unknown buffer `{buf}`"))
                    })?;
                    backend.prog_h2d(id, data);
                }
                HostOp::Launch {
                    kernel,
                    launch,
                    args,
                } => {
                    let ck = self.kernel(kernel).ok_or_else(|| {
                        MigrateError::Launch(format!("unknown kernel `{kernel}`"))
                    })?;
                    let mut resolved = Vec::with_capacity(args.len());
                    for a in args {
                        resolved.push(match a {
                            ArgSpec::Buffer(name) => {
                                Arg::Buffer(*buffers.get(name).ok_or_else(|| {
                                    MigrateError::Launch(format!("unknown buffer `{name}`"))
                                })?)
                            }
                            ArgSpec::Int(v) => Arg::Scalar(Value::I64(*v)),
                            ArgSpec::Float(v) => Arg::Scalar(Value::F64(*v)),
                        });
                    }
                    result.kernel_time += backend.prog_launch(ck, *launch, &resolved)?;
                    result.launches += 1;
                }
                HostOp::D2h { buf } => {
                    let id = *buffers.get(buf).ok_or_else(|| {
                        MigrateError::Launch(format!("d2h from unknown buffer `{buf}`"))
                    })?;
                    result.outputs.insert(buf.clone(), backend.prog_d2h(id));
                }
            }
        }
        result.transfer_time = backend.prog_transfer_time() - transfers_before;
        Ok(result)
    }

    /// Execute on a [`CuccCluster`] through the async command-queue API,
    /// spreading independent op chains over up to `max_streams` streams.
    ///
    /// Dependencies are auto-derived from buffer names: an op lands on the
    /// stream of the first already-assigned buffer it touches (keeping
    /// each producer→consumer chain on one stream), and an op touching
    /// only fresh buffers starts the next chain, round-robin over lazily
    /// created streams. Cross-chain conflicts the name-based assignment
    /// misses are still caught by the runtime's RAW/WAW/WAR hazard
    /// tracker, so outputs are byte-identical to [`GpuProgram::run_with`]
    /// for every assignment — only the simulated elapsed time changes.
    ///
    /// The cluster is synchronized before returning; `cl.clock()` then
    /// reflects the overlapped end-to-end time.
    pub fn run_streams_with(
        &self,
        cl: &mut CuccCluster,
        max_streams: usize,
    ) -> Result<ProgramResult, MigrateError> {
        let max_streams = max_streams.max(1);
        let mut buffers: BTreeMap<String, BufferId> = BTreeMap::new();
        let mut stream_of: BTreeMap<String, StreamId> = BTreeMap::new();
        let mut streams: Vec<StreamId> = Vec::new();
        let mut next = 0usize;
        let transfers_before = cl.prog_transfer_time();
        let mut result = ProgramResult {
            outputs: BTreeMap::new(),
            kernel_time: 0.0,
            transfer_time: 0.0,
            launches: 0,
        };
        let mut pick = |touched: &[&String], cl: &mut CuccCluster| -> StreamId {
            let s = touched
                .iter()
                .find_map(|b| stream_of.get(*b).copied())
                .unwrap_or_else(|| {
                    if streams.len() < max_streams {
                        streams.push(cl.stream_create());
                    }
                    let s = streams[next % streams.len()];
                    next += 1;
                    s
                });
            for b in touched {
                stream_of.entry((*b).clone()).or_insert(s);
            }
            s
        };
        for op in &self.ops {
            match op {
                HostOp::Alloc { name, bytes } => {
                    if buffers.contains_key(name) {
                        return Err(MigrateError::Launch(format!(
                            "buffer `{name}` allocated twice"
                        )));
                    }
                    let id = cl.alloc(*bytes);
                    buffers.insert(name.clone(), id);
                }
                HostOp::H2d { buf, data } => {
                    let id = *buffers.get(buf).ok_or_else(|| {
                        MigrateError::Launch(format!("h2d to unknown buffer `{buf}`"))
                    })?;
                    let s = pick(&[buf], cl);
                    cl.upload_on(id, data, s)?;
                }
                HostOp::Launch {
                    kernel,
                    launch,
                    args,
                } => {
                    let ck = self.kernel(kernel).ok_or_else(|| {
                        MigrateError::Launch(format!("unknown kernel `{kernel}`"))
                    })?;
                    let mut resolved = Vec::with_capacity(args.len());
                    let mut touched = Vec::new();
                    for a in args {
                        resolved.push(match a {
                            ArgSpec::Buffer(name) => {
                                touched.push(name);
                                Arg::Buffer(*buffers.get(name).ok_or_else(|| {
                                    MigrateError::Launch(format!("unknown buffer `{name}`"))
                                })?)
                            }
                            ArgSpec::Int(v) => Arg::Scalar(Value::I64(*v)),
                            ArgSpec::Float(v) => Arg::Scalar(Value::F64(*v)),
                        });
                    }
                    let s = pick(&touched, cl);
                    result.kernel_time += cl.launch_on(ck, *launch, &resolved, s)?.time();
                    result.launches += 1;
                }
                HostOp::D2h { buf } => {
                    let id = *buffers.get(buf).ok_or_else(|| {
                        MigrateError::Launch(format!("d2h from unknown buffer `{buf}`"))
                    })?;
                    let s = pick(&[buf], cl);
                    result
                        .outputs
                        .insert(buf.clone(), cl.download_on::<u8>(id, s)?);
                }
            }
        }
        cl.synchronize()?;
        result.transfer_time = cl.prog_transfer_time() - transfers_before;
        Ok(result)
    }
}

/// Fluent construction of [`GpuProgram`]s.
#[derive(Debug)]
pub struct ProgramBuilder {
    program: GpuProgram,
}

impl ProgramBuilder {
    /// Compile and register a kernel from mini-CUDA source.
    pub fn kernel_source(mut self, src: &str) -> Result<ProgramBuilder, MigrateError> {
        let ck = compile_source(src)?;
        if self.program.kernel(ck.name()).is_some() {
            return Err(MigrateError::Launch(format!(
                "duplicate kernel `{}`",
                ck.name()
            )));
        }
        self.program.kernels.push(ck);
        Ok(self)
    }

    /// Register an already-compiled kernel.
    pub fn kernel(mut self, ck: CompiledKernel) -> ProgramBuilder {
        self.program.kernels.push(ck);
        self
    }

    /// Allocate a named buffer.
    pub fn alloc(mut self, name: impl Into<String>, bytes: usize) -> ProgramBuilder {
        self.program.ops.push(HostOp::Alloc {
            name: name.into(),
            bytes,
        });
        self
    }

    /// Upload data to a named buffer.
    pub fn h2d(mut self, buf: impl Into<String>, data: Vec<u8>) -> ProgramBuilder {
        self.program.ops.push(HostOp::H2d {
            buf: buf.into(),
            data,
        });
        self
    }

    /// Launch a registered kernel.
    pub fn launch(
        mut self,
        kernel: impl Into<String>,
        launch: LaunchConfig,
        args: Vec<ArgSpec>,
    ) -> ProgramBuilder {
        self.program.ops.push(HostOp::Launch {
            kernel: kernel.into(),
            launch,
            args,
        });
        self
    }

    /// Read a buffer back as a program output.
    pub fn d2h(mut self, buf: impl Into<String>) -> ProgramBuilder {
        self.program.ops.push(HostOp::D2h { buf: buf.into() });
        self
    }

    /// Finish building.
    pub fn build(self) -> GpuProgram {
        self.program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::RuntimeConfig;
    use cucc_cluster::ClusterSpec;

    fn pipeline_program() -> GpuProgram {
        // Two-kernel pipeline: scale, then prefix-free square — the second
        // kernel consumes the first one's distributed output, so the
        // Allgather between launches is load-bearing.
        GpuProgram::builder("pipeline")
            .kernel_source(
                "__global__ void scale(float* x, float* y, float a, int n) {
                    int id = blockIdx.x * blockDim.x + threadIdx.x;
                    if (id < n) y[id] = x[id] * a;
                }",
            )
            .unwrap()
            .kernel_source(
                "__global__ void square(float* y, float* z, int n) {
                    int id = blockIdx.x * blockDim.x + threadIdx.x;
                    if (id < n) z[id] = y[id] * y[id];
                }",
            )
            .unwrap()
            .alloc("x", 1000 * 4)
            .alloc("y", 1000 * 4)
            .alloc("z", 1000 * 4)
            .h2d(
                "x",
                (0..1000u32)
                    .flat_map(|i| (i as f32 * 0.5).to_le_bytes())
                    .collect(),
            )
            .launch(
                "scale",
                LaunchConfig::cover1(1000, 128),
                vec![
                    ArgSpec::Buffer("x".into()),
                    ArgSpec::Buffer("y".into()),
                    ArgSpec::Float(2.0),
                    ArgSpec::Int(1000),
                ],
            )
            .launch(
                "square",
                LaunchConfig::cover1(1000, 128),
                vec![
                    ArgSpec::Buffer("y".into()),
                    ArgSpec::Buffer("z".into()),
                    ArgSpec::Int(1000),
                ],
            )
            .d2h("z")
            .build()
    }

    #[test]
    fn pipeline_runs_on_cucc_cluster() {
        let prog = pipeline_program();
        let mut cl = CuccCluster::with_options(
            ClusterSpec::simd_focused().with_nodes(4),
            RuntimeConfig::default(),
        );
        let res = prog.run_with(&mut cl).unwrap();
        assert_eq!(res.launches, 2);
        assert!(res.kernel_time > 0.0);
        let z: Vec<f32> = res.outputs["z"]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        for (i, v) in z.iter().enumerate() {
            let want = (i as f32) * (i as f32); // (i·0.5·2)²
            assert_eq!(*v, want, "z[{i}]");
        }
    }

    #[test]
    fn result_reports_transfer_time() {
        let prog = pipeline_program();
        let mut cl = CuccCluster::with_options(
            ClusterSpec::simd_focused().with_nodes(4),
            RuntimeConfig::default(),
        );
        let res = prog.run_with(&mut cl).unwrap();
        // Multi-node h2d broadcasts cost simulated time; d2h is free but
        // recorded. The derived transfer time must show up in the result.
        assert!(res.transfer_time > 0.0);
        let tl = cl.timeline();
        assert_eq!(
            res.transfer_time,
            tl.time_in_on(cucc_trace::Track::Host, cucc_trace::Category::H2d)
                + tl.time_in_on(cucc_trace::Track::Host, cucc_trace::Category::D2h)
        );
    }

    #[test]
    fn streamed_run_matches_serial_outputs() {
        let prog = pipeline_program();
        let spec = ClusterSpec::simd_focused().with_nodes(4);
        let mut serial = CuccCluster::with_options(spec.clone(), RuntimeConfig::default());
        let res_serial = prog.run_with(&mut serial).unwrap();
        for max_streams in [1usize, 2, 4] {
            let mut cl = CuccCluster::with_options(spec.clone(), RuntimeConfig::default());
            let res = prog.run_streams_with(&mut cl, max_streams).unwrap();
            assert_eq!(res.outputs, res_serial.outputs, "streams={max_streams}");
            assert_eq!(res.launches, res_serial.launches);
            // Whatever the stream assignment, hazards keep the overlapped
            // layout no slower than... never slower than serial.
            assert!(
                cl.clock() <= serial.clock() * (1.0 + 1e-12),
                "streams={max_streams}: {} > {}",
                cl.clock(),
                serial.clock()
            );
        }
    }

    #[test]
    fn independent_chains_overlap_under_streams() {
        // Two completely independent scale chains: with two streams the
        // second chain's h2d hides under the first chain's kernel.
        let n = 20_000u32;
        let data: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
        let mut b = GpuProgram::builder("indep")
            .kernel_source(
                "__global__ void scale(float* x, float* y, float a, int n) {
                    int id = blockIdx.x * blockDim.x + threadIdx.x;
                    if (id < n) y[id] = x[id] * a;
                }",
            )
            .unwrap();
        for chain in ["a", "b"] {
            b = b
                .alloc(format!("x_{chain}"), n as usize * 4)
                .alloc(format!("y_{chain}"), n as usize * 4)
                .h2d(format!("x_{chain}"), data.clone())
                .launch(
                    "scale",
                    LaunchConfig::cover1(n as u64, 256),
                    vec![
                        ArgSpec::Buffer(format!("x_{chain}")),
                        ArgSpec::Buffer(format!("y_{chain}")),
                        ArgSpec::Float(3.0),
                        ArgSpec::Int(n as i64),
                    ],
                )
                .d2h(format!("y_{chain}"));
        }
        let prog = b.build();
        let spec = ClusterSpec::simd_focused().with_nodes(4);
        let mut serial = CuccCluster::with_options(spec.clone(), RuntimeConfig::default());
        let mut streamed = CuccCluster::with_options(spec, RuntimeConfig::default());
        let res_serial = prog.run_with(&mut serial).unwrap();
        let res = prog.run_streams_with(&mut streamed, 2).unwrap();
        assert_eq!(res.outputs, res_serial.outputs);
        assert!(
            streamed.clock() < serial.clock(),
            "expected overlap: {} !< {}",
            streamed.clock(),
            serial.clock()
        );
    }

    #[test]
    fn unknown_names_rejected() {
        let prog = GpuProgram::builder("bad")
            .alloc("a", 16)
            .d2h("missing")
            .build();
        let mut cl = CuccCluster::with_options(
            ClusterSpec::simd_focused().with_nodes(1),
            RuntimeConfig::default(),
        );
        assert!(matches!(
            prog.run_with(&mut cl),
            Err(MigrateError::Launch(_))
        ));
    }

    #[test]
    fn duplicate_alloc_rejected() {
        let prog = GpuProgram::builder("dup")
            .alloc("a", 16)
            .alloc("a", 16)
            .build();
        let mut cl = CuccCluster::with_options(
            ClusterSpec::simd_focused().with_nodes(1),
            RuntimeConfig::default(),
        );
        assert!(prog.run_with(&mut cl).is_err());
    }

    #[test]
    fn duplicate_kernel_rejected() {
        let src = "__global__ void k(int* o) { o[threadIdx.x] = 1; }";
        let b = GpuProgram::builder("dupk").kernel_source(src).unwrap();
        assert!(b.kernel_source(src).is_err());
    }
}
