//! Multi-tenant serving front-end: job queue, admission control, and
//! backfill placement over the simulated cluster.
//!
//! Every benchmark before this module launched one kernel at a time. The
//! paper's end state is migrated GPU workloads running as *sustained
//! traffic* on a CPU fleet, so this is the layer where the pieces that
//! already exist finally meet:
//!
//! * **Queue** — each submitted [`JobSpec`] waits in its tenant's FIFO
//!   queue; admission control bounds the per-tenant depth and refuses
//!   excess submissions with a typed [`MigrateError::Rejected`].
//! * **Placement** — an EASY-backfill
//!   [`PlacementEngine`](cucc_slurm::PlacementEngine) (the library form of
//!   `cucc-slurm`'s trace scheduler) packs jobs onto the node pool; under
//!   the [`ServePolicy::Fair`] policy tenants are served by a weighted
//!   deficit counter (deadline-class weights), and blocked heads get EASY
//!   reservations that backfilled jobs may never delay.
//! * **Execution** — placed jobs really run on the shared [`CuccCluster`]
//!   (upload once, launch per job, download digests at drain), so
//!   schedule-cache reuse, fault injection with recovery, and membership
//!   epochs all behave exactly as they do for one-shot launches. Service
//!   *time* on the serving clock comes from the pure planner
//!   ([`plan_schedule`]) evaluated at the job's allocated node count, via
//!   a shared [`ScheduleCache`] so repeated tenant kernels plan once.
//! * **Observability** — the serving [`Timeline`] lays every job out on
//!   dedicated `Queue`/`Admit`/`Place` tracks (exportable as Chrome
//!   trace JSON), and [`ServeReport`] carries sustained launches/sec plus
//!   per-class and per-tenant p50/p99 latency and cache hit rates.
//!
//! A cluster that loses or gains nodes mid-stream (a `kill:`+`join:`
//! fault plan) resizes the placement capacity at the membership epoch
//! boundary; admitted jobs still complete bit-identically to a fault-free
//! run because per-tenant launch order is preserved and the runtime's
//! recovery path is bit-exact.

use crate::compile::{compile_source, CompiledKernel};
use crate::error::MigrateError;
use crate::options::RunOptions;
use crate::runtime::{CuccCluster, RuntimeConfig};
use crate::schedule::{plan_schedule, schedule_key, CacheStats, LaunchSchedule, ScheduleCache};
use cucc_cluster::ClusterSpec;
use cucc_exec::{Arg, BufferId};
use cucc_ir::LaunchConfig;
use cucc_slurm::PlacementEngine;
use cucc_trace::{Category, Timeline, Track};
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// Latency expectations of a job, mapped to a fairness weight: a tenant
/// holding interactive traffic drains its deficit four times faster than
/// best-effort batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeadlineClass {
    /// User-facing traffic: weight 4.
    Interactive,
    /// Throughput-oriented batch: weight 2.
    Batch,
    /// Scavenger work: weight 1.
    BestEffort,
}

impl DeadlineClass {
    /// All classes, in report order.
    pub const ALL: [DeadlineClass; 3] = [
        DeadlineClass::Interactive,
        DeadlineClass::Batch,
        DeadlineClass::BestEffort,
    ];

    /// Deficit-counter weight.
    pub fn weight(self) -> f64 {
        match self {
            DeadlineClass::Interactive => 4.0,
            DeadlineClass::Batch => 2.0,
            DeadlineClass::BestEffort => 1.0,
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DeadlineClass::Interactive => "interactive",
            DeadlineClass::Batch => "batch",
            DeadlineClass::BestEffort => "best-effort",
        }
    }
}

/// One launch request from one tenant: everything the serving layer needs
/// to queue, admit, place, and execute it.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Submitting tenant.
    pub tenant: u32,
    /// Latency class (drives the fairness weight).
    pub class: DeadlineClass,
    /// Index into the server's kernel catalog ([`JobServer::KERNELS`]).
    pub kernel: usize,
    /// Problem size in `f32` elements (the tenant's working-set buffers
    /// hold `4 * elems` bytes each).
    pub elems: usize,
    /// Nodes requested for placement (clamped to the live capacity).
    pub nodes: u32,
    /// Submission time on the serving clock, seconds.
    pub arrival: f64,
    /// Kernel scalar argument (keeps repeated jobs from collapsing into
    /// one arithmetic fixpoint).
    pub scale: f64,
}

impl JobSpec {
    fn launch(&self) -> LaunchConfig {
        LaunchConfig::cover1(self.elems as u64, 128)
    }
}

/// Queue discipline of the serving front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServePolicy {
    /// One global FIFO queue, strict head-of-line order, no backfill, no
    /// admission control — the naive baseline.
    Fifo,
    /// Per-tenant queues served by a weighted deficit counter, EASY
    /// backfill behind blocked heads, and queue-depth admission control.
    Fair,
}

impl ServePolicy {
    /// Parse a CLI policy name.
    pub fn parse(s: &str) -> Option<ServePolicy> {
        match s {
            "fifo" => Some(ServePolicy::Fifo),
            "fair" => Some(ServePolicy::Fair),
            _ => None,
        }
    }

    /// Lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ServePolicy::Fifo => "fifo",
            ServePolicy::Fair => "fair",
        }
    }
}

/// Serving-layer configuration: queue policy and admission limit on top
/// of the unified [`RunOptions`] front-end (fidelity, engine, fault plan).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Queue discipline.
    pub policy: ServePolicy,
    /// Per-tenant admission limit: a tenant already queueing this many
    /// jobs has further submissions rejected. `0` disables admission
    /// control.
    pub queue_depth: usize,
    /// Runtime and session options shared with `cucc run`.
    pub options: RunOptions,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            policy: ServePolicy::Fair,
            queue_depth: 0,
            options: RunOptions::default(),
        }
    }
}

/// Latency percentiles for one deadline class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassStats {
    /// The class.
    pub class: DeadlineClass,
    /// Completed jobs in the class.
    pub jobs: usize,
    /// Median queue wait (arrival → placement), seconds.
    pub p50_queue: f64,
    /// 99th-percentile queue wait, seconds.
    pub p99_queue: f64,
    /// Median execution time (placement → completion), seconds.
    pub p50_exec: f64,
    /// 99th-percentile execution time, seconds.
    pub p99_exec: f64,
    /// Median end-to-end latency, seconds.
    pub p50_total: f64,
    /// 99th-percentile end-to-end latency, seconds.
    pub p99_total: f64,
}

/// Per-tenant serving outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantStats {
    /// The tenant.
    pub tenant: u32,
    /// Jobs accepted into the queue.
    pub admitted: usize,
    /// Jobs refused by admission control.
    pub rejected: usize,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Planner-cache hits attributed to this tenant's placements.
    pub cache_hits: u64,
    /// Planner-cache misses attributed to this tenant's placements.
    pub cache_misses: u64,
    /// Median end-to-end latency, seconds.
    pub p50_total: f64,
    /// 99th-percentile end-to-end latency, seconds.
    pub p99_total: f64,
}

impl TenantStats {
    /// Planner-cache hit rate of this tenant's placements.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Everything one serving run produced: throughput, latency percentiles
/// per class and tenant, cache behavior, fault counts, and per-tenant
/// output digests (the bit-identity witness).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Queue discipline the run used.
    pub policy: ServePolicy,
    /// Jobs submitted (admitted + rejected).
    pub submitted: usize,
    /// Jobs accepted into the queues.
    pub admitted: usize,
    /// Jobs refused by admission control.
    pub rejected: usize,
    /// Jobs that ran to completion (every admitted job).
    pub completed: usize,
    /// Serving-clock time from first arrival to last completion, seconds.
    pub makespan: f64,
    /// Sustained completed launches per simulated second.
    pub launches_per_sec: f64,
    /// Median end-to-end latency over all completed jobs, seconds.
    pub p50_total: f64,
    /// 99th-percentile end-to-end latency over all completed jobs.
    pub p99_total: f64,
    /// Latency percentiles per deadline class (classes with no completed
    /// jobs are omitted).
    pub per_class: Vec<ClassStats>,
    /// Per-tenant outcomes, ascending tenant id.
    pub per_tenant: Vec<TenantStats>,
    /// Whole-run planner-cache counters.
    pub cache: CacheStats,
    /// Node failures the fault plan injected (and recovery absorbed).
    pub node_failures: u32,
    /// FNV-1a digest of each tenant's final working-set memory — equal
    /// across fault-free and fault-injected runs of the same admitted
    /// stream.
    pub digests: BTreeMap<u32, u64>,
}

impl ServeReport {
    /// The one-line summary the CLI prints (and CI greps).
    pub fn summary_line(&self) -> String {
        format!(
            "serving[{}]: {} submitted, {} completed, {} rejected, \
             {:.1} launches/sec, p50 {:.3} ms, p99 {:.3} ms",
            self.policy.label(),
            self.submitted,
            self.completed,
            self.rejected,
            self.launches_per_sec,
            self.p50_total * 1e3,
            self.p99_total * 1e3,
        )
    }
}

/// One job in flight on the placement engine: completion event in a
/// min-heap, with the record index for attribution.
#[derive(Debug, Clone, Copy, PartialEq)]
struct InFlight {
    end: f64,
    idx: usize,
}

impl Eq for InFlight {}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: earliest completion first, ties by record index.
        other
            .end
            .partial_cmp(&self.end)
            .unwrap()
            .then(other.idx.cmp(&self.idx))
    }
}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Per-job bookkeeping across queue → placement → completion.
#[derive(Debug, Clone)]
struct JobRecord {
    spec: JobSpec,
    placed: f64,
    end: f64,
}

/// Tally counters accumulated while the stream runs.
#[derive(Debug, Clone, Copy, Default)]
struct TenantTally {
    admitted: usize,
    rejected: usize,
    completed: usize,
    cache_hits: u64,
    cache_misses: u64,
    served_work: f64,
}

/// The serving front-end: queues, admission control, placement, and the
/// execution backend, driven by [`JobServer::run`] over a synthetic (or
/// recorded) arrival stream.
#[derive(Debug)]
pub struct JobServer {
    config: ServeConfig,
    runtime: RuntimeConfig,
    cluster: CuccCluster,
    placement: PlacementEngine,
    kernels: Vec<CompiledKernel>,
    plans: ScheduleCache,
    timeline: Timeline,
    /// Working-set buffers per (tenant, elems).
    buffers: BTreeMap<(u32, usize), (BufferId, BufferId)>,
    /// Per-tenant FIFO queues of record indices (Fair policy order).
    queues: BTreeMap<u32, VecDeque<usize>>,
    /// Global FIFO order of record indices (Fifo policy order).
    fifo: VecDeque<usize>,
    records: Vec<JobRecord>,
    tallies: BTreeMap<u32, TenantTally>,
    inflight: BinaryHeap<InFlight>,
    node_failures: u32,
    last_epoch: u64,
}

impl JobServer {
    /// The built-in kernel catalog (both entries share the
    /// `(float* x, float* y, float a, int n)` signature [`JobSpec`]
    /// assumes). Index with [`JobSpec::kernel`] modulo this length.
    pub const KERNELS: [&'static str; 2] = [
        "__global__ void saxpy(float* x, float* y, float a, int n) {
            int id = blockIdx.x * blockDim.x + threadIdx.x;
            if (id < n) y[id] = a * x[id] + y[id];
        }",
        "__global__ void scale_add(float* x, float* y, float a, int n) {
            int id = blockIdx.x * blockDim.x + threadIdx.x;
            if (id < n) y[id] = a * y[id] + x[id];
        }",
    ];

    /// Build a server over `spec.nodes` simulated nodes.
    pub fn new(spec: ClusterSpec, config: ServeConfig) -> Result<JobServer, MigrateError> {
        let kernels = Self::KERNELS
            .iter()
            .map(|src| compile_source(src))
            .collect::<Result<Vec<_>, _>>()?;
        let runtime = config.options.runtime.clone();
        let nodes = spec.nodes;
        let cluster = CuccCluster::with_options(spec, config.options.clone());
        let last_epoch = cluster.epoch();
        Ok(JobServer {
            config,
            runtime,
            cluster,
            placement: PlacementEngine::new(nodes),
            kernels,
            plans: ScheduleCache::new(),
            timeline: Timeline::new(),
            buffers: BTreeMap::new(),
            queues: BTreeMap::new(),
            fifo: VecDeque::new(),
            records: Vec::new(),
            tallies: BTreeMap::new(),
            inflight: BinaryHeap::new(),
            node_failures: 0,
            last_epoch,
        })
    }

    /// The serving timeline: `Queue`/`Admit`/`Place` spans on the serving
    /// clock, exportable with [`Timeline::to_chrome_json`].
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// The execution backend.
    pub fn cluster(&self) -> &CuccCluster {
        &self.cluster
    }

    /// Planner-cache counters for the serving-side (per-node-count)
    /// schedule cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.plans.stats()
    }

    /// Jobs currently queued for `tenant`.
    pub fn queue_depth(&self, tenant: u32) -> usize {
        self.queues.get(&tenant).map_or(0, |q| q.len())
    }

    /// Admission-check and enqueue one job at its arrival time. Returns
    /// the typed [`MigrateError::Rejected`] (and counts the rejection)
    /// when the tenant's queue is at the configured depth limit; the
    /// cluster is untouched in that case.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<(), MigrateError> {
        let tenant = spec.tenant;
        let tally = self.tallies.entry(tenant).or_default();
        let depth = self.queues.get(&tenant).map_or(0, |q| q.len());
        let limit = self.config.queue_depth;
        if limit > 0 && depth >= limit {
            tally.rejected += 1;
            self.timeline.span(
                format!("job reject (tenant {tenant})"),
                Track::Admit,
                Category::Admit,
                spec.arrival,
                0.0,
            );
            return Err(MigrateError::Rejected {
                tenant,
                depth,
                limit,
            });
        }
        tally.admitted += 1;
        let idx = self.records.len();
        self.timeline.span(
            format!("job {idx} admit (tenant {tenant})"),
            Track::Admit,
            Category::Admit,
            spec.arrival,
            0.0,
        );
        self.ensure_working_set(spec)?;
        self.records.push(JobRecord {
            spec: spec.clone(),
            placed: f64::NAN,
            end: f64::NAN,
        });
        self.queues.entry(tenant).or_default().push_back(idx);
        self.fifo.push_back(idx);
        Ok(())
    }

    /// Allocate (and deterministically initialize) the tenant's working
    /// set for this problem size, once.
    fn ensure_working_set(&mut self, spec: &JobSpec) -> Result<(), MigrateError> {
        let key = (spec.tenant, spec.elems);
        if self.buffers.contains_key(&key) {
            return Ok(());
        }
        let bytes = spec.elems * 4;
        let x = self.cluster.alloc(bytes);
        let y = self.cluster.alloc(bytes);
        let xs: Vec<f32> = (0..spec.elems)
            .map(|i| (i % 97) as f32 * 0.03125 + spec.tenant as f32)
            .collect();
        self.cluster.upload(x, &xs)?;
        self.buffers.insert(key, (x, y));
        Ok(())
    }

    /// Plan one job at `k` logical nodes through the serving-side
    /// schedule cache, attributing hits/misses to the tenant.
    fn plan_at(
        &mut self,
        spec: &JobSpec,
        args: &[Arg],
        k: u32,
    ) -> Result<LaunchSchedule, MigrateError> {
        let ck = &self.kernels[spec.kernel % Self::KERNELS.len()];
        let key = schedule_key(ck, spec.launch(), args, k as usize, k as u64, &self.runtime);
        let before = self.plans.stats();
        let sched = match self.plans.get(&key) {
            Some(s) => s,
            None => {
                let read_node = self
                    .cluster
                    .cluster_state()
                    .alive()
                    .iter()
                    .position(|&a| a)
                    .unwrap_or(0);
                let sched = plan_schedule(
                    ck,
                    spec.launch(),
                    args,
                    self.cluster.sim().node(read_node),
                    self.cluster.spec(),
                    k as usize,
                    &self.runtime,
                )?;
                self.plans.insert(key, sched.clone());
                sched
            }
        };
        let delta = self.plans.stats().since(&before);
        let tally = self.tallies.entry(spec.tenant).or_default();
        tally.cache_hits += delta.hits;
        tally.cache_misses += delta.misses;
        Ok(sched)
    }

    fn job_args(&self, spec: &JobSpec) -> Vec<Arg> {
        let (x, y) = self.buffers[&(spec.tenant, spec.elems)];
        vec![
            Arg::Buffer(x),
            Arg::Buffer(y),
            Arg::float(spec.scale),
            Arg::int(spec.elems as i64),
        ]
    }

    /// Node allocation a job actually gets: its request, clamped to the
    /// live capacity (which shrinks and grows with membership epochs).
    fn effective_nodes(&self, spec: &JobSpec) -> u32 {
        spec.nodes.max(1).min(self.placement.total_nodes().max(1))
    }

    /// Functionally execute a placed job on the shared cluster and record
    /// its spans and completion on the serving timeline.
    fn commit_placement(
        &mut self,
        idx: usize,
        clock: f64,
        k: u32,
        service: f64,
    ) -> Result<(), MigrateError> {
        let spec = self.records[idx].spec.clone();
        let args = self.job_args(&spec);
        let ck = &self.kernels[spec.kernel % Self::KERNELS.len()];
        let before_epoch = self.cluster.epoch();
        let report = self.cluster.launch(ck, spec.launch(), &args)?;
        self.node_failures += report.faults.failures;
        if self.cluster.epoch() != before_epoch {
            // Membership changed mid-stream (kill, join, growth): resize
            // the placement capacity at the epoch boundary.
            self.placement.set_total(self.cluster.active_nodes() as u32);
            self.last_epoch = self.cluster.epoch();
        }
        let tenant = spec.tenant;
        self.timeline.span(
            format!("job {idx} wait (tenant {tenant})"),
            Track::Queue,
            Category::Queue,
            spec.arrival,
            clock - spec.arrival,
        );
        self.timeline.span(
            format!("job {idx} x{k} (tenant {tenant})"),
            Track::Place,
            Category::Place,
            clock,
            service,
        );
        self.records[idx].placed = clock;
        self.records[idx].end = clock + service;
        self.inflight.push(InFlight {
            end: clock + service,
            idx,
        });
        let tally = self.tallies.entry(tenant).or_default();
        tally.completed += 1;
        tally.served_work += k as f64 * service;
        Ok(())
    }

    /// The tenant the deficit counter serves next: smallest weighted
    /// served-work among tenants with queued jobs (ties to the lowest
    /// id). A starving tenant's served-work is frozen, so it is
    /// eventually always chosen and its head holds the EASY reservation —
    /// the no-starvation argument.
    fn pick_tenant(&self) -> Option<u32> {
        let mut best: Option<(f64, u32)> = None;
        for (&tenant, q) in &self.queues {
            let Some(&head) = q.front() else { continue };
            let weight = self.records[head].spec.class.weight();
            let tally = self.tallies.get(&tenant).copied().unwrap_or_default();
            let key = tally.served_work / weight;
            if best.is_none_or(|(k, _)| key < k) {
                best = Some((key, tenant));
            }
        }
        best.map(|(_, t)| t)
    }

    fn pop_queued(&mut self, idx: usize) {
        if let Some(q) = self.queues.get_mut(&self.records[idx].spec.tenant) {
            if q.front() == Some(&idx) {
                q.pop_front();
            }
        }
        if let Some(pos) = self.fifo.iter().position(|&i| i == idx) {
            self.fifo.remove(pos);
        }
    }

    /// Try to place and execute the job at `idx` right now. Returns
    /// whether it started.
    fn try_place(&mut self, idx: usize, clock: f64) -> Result<bool, MigrateError> {
        let spec = self.records[idx].spec.clone();
        let k = self.effective_nodes(&spec);
        let args = self.job_args(&spec);
        let service = self.plan_at(&spec, &args, k)?.time();
        if !self.placement.try_start(clock, k, service) {
            return Ok(false);
        }
        self.pop_queued(idx);
        self.commit_placement(idx, clock, k, service)?;
        Ok(true)
    }

    /// Place everything that may start at `clock` under the configured
    /// policy.
    fn dispatch(&mut self, clock: f64) -> Result<(), MigrateError> {
        match self.config.policy {
            ServePolicy::Fifo => {
                // Strict arrival order with head-of-line blocking.
                while let Some(&head) = self.fifo.front() {
                    if !self.try_place(head, clock)? {
                        break;
                    }
                }
            }
            ServePolicy::Fair => {
                while let Some(tenant) = self.pick_tenant() {
                    let head = *self.queues[&tenant].front().unwrap();
                    if self.try_place(head, clock)? {
                        continue;
                    }
                    // The chosen head blocks: give it the EASY reservation and
                    // sweep the *other* tenants' heads for backfill (same-tenant
                    // order is never reordered, which keeps per-tenant launch
                    // order — and therefore memory — deterministic).
                    let spec = self.records[head].spec.clone();
                    let k = self.effective_nodes(&spec);
                    let mut res = self.placement.reserve(clock, k);
                    loop {
                        let mut placed_any = false;
                        let tenants: Vec<u32> = self.queues.keys().copied().collect();
                        for other in tenants {
                            if other == tenant {
                                continue;
                            }
                            let Some(&cand) = self.queues[&other].front() else {
                                continue;
                            };
                            let cspec = self.records[cand].spec.clone();
                            let ck = self.effective_nodes(&cspec);
                            let cargs = self.job_args(&cspec);
                            let cservice = self.plan_at(&cspec, &cargs, ck)?.time();
                            if self.placement.try_backfill(clock, ck, cservice, &mut res) {
                                self.pop_queued(cand);
                                self.commit_placement(cand, clock, ck, cservice)?;
                                placed_any = true;
                            }
                        }
                        if !placed_any {
                            break;
                        }
                    }
                    break;
                }
            }
        }
        Ok(())
    }

    /// Drive one arrival stream to completion: admit (or reject) each job
    /// at its arrival time, place queued jobs under the policy at every
    /// event, execute placements on the cluster, and drain completions on
    /// the serving clock. Jobs are processed in arrival order.
    pub fn run(&mut self, jobs: &[JobSpec]) -> Result<ServeReport, MigrateError> {
        let mut stream: Vec<JobSpec> = jobs.to_vec();
        stream.sort_by(|a, b| a.arrival.partial_cmp(&b.arrival).unwrap());
        let mut next = 0usize;
        let mut clock = 0.0f64;
        loop {
            self.dispatch(clock)?;
            let t_arr = stream.get(next).map(|j| j.arrival);
            let t_end = self.inflight.peek().map(|f| f.end);
            let t = match (t_arr, t_end) {
                (Some(a), Some(e)) => a.min(e),
                (Some(a), None) => a,
                (None, Some(e)) => e,
                (None, None) => break,
            };
            clock = clock.max(t);
            self.timeline.advance_to(clock);
            while self
                .inflight
                .peek()
                .map(|f| f.end <= clock)
                .unwrap_or(false)
            {
                self.inflight.pop();
            }
            self.placement.release_until(clock);
            while next < stream.len() && stream[next].arrival <= clock {
                match self.submit(&stream[next]) {
                    Ok(()) | Err(MigrateError::Rejected { .. }) => {}
                    Err(e) => return Err(e),
                }
                next += 1;
            }
        }
        debug_assert!(
            self.queues.values().all(VecDeque::is_empty) && self.fifo.is_empty(),
            "the event loop drains every admitted job"
        );
        self.report()
    }

    /// FNV-1a over a byte slice.
    fn fnv1a(acc: u64, bytes: &[u8]) -> u64 {
        let mut h = acc;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Assemble the final report (and per-tenant memory digests).
    fn report(&mut self) -> Result<ServeReport, MigrateError> {
        // Digest every tenant's working-set memory, in deterministic
        // (tenant, elems) order.
        let mut digests: BTreeMap<u32, u64> = BTreeMap::new();
        let keys: Vec<((u32, usize), (BufferId, BufferId))> =
            self.buffers.iter().map(|(&k, &v)| (k, v)).collect();
        for ((tenant, _), (x, y)) in keys {
            let mut h = *digests.get(&tenant).unwrap_or(&0xcbf2_9ce4_8422_2325);
            h = Self::fnv1a(h, &self.cluster.download::<u8>(x)?);
            h = Self::fnv1a(h, &self.cluster.download::<u8>(y)?);
            digests.insert(tenant, h);
        }

        let done: Vec<&JobRecord> = self.records.iter().filter(|r| r.end.is_finite()).collect();
        let completed = done.len();
        let makespan = done.iter().map(|r| r.end).fold(0.0f64, f64::max);
        let totals_of = |recs: &[&JobRecord]| -> (Vec<f64>, Vec<f64>, Vec<f64>) {
            let mut q: Vec<f64> = recs.iter().map(|r| r.placed - r.spec.arrival).collect();
            let mut e: Vec<f64> = recs.iter().map(|r| r.end - r.placed).collect();
            let mut t: Vec<f64> = recs.iter().map(|r| r.end - r.spec.arrival).collect();
            let by = |a: &f64, b: &f64| a.partial_cmp(b).unwrap();
            q.sort_by(by);
            e.sort_by(by);
            t.sort_by(by);
            (q, e, t)
        };
        let (_, _, all_totals) = totals_of(&done);

        let mut per_class = Vec::new();
        for class in DeadlineClass::ALL {
            let recs: Vec<&JobRecord> = done
                .iter()
                .filter(|r| r.spec.class == class)
                .copied()
                .collect();
            if recs.is_empty() {
                continue;
            }
            let (q, e, t) = totals_of(&recs);
            per_class.push(ClassStats {
                class,
                jobs: recs.len(),
                p50_queue: pct(&q, 0.50),
                p99_queue: pct(&q, 0.99),
                p50_exec: pct(&e, 0.50),
                p99_exec: pct(&e, 0.99),
                p50_total: pct(&t, 0.50),
                p99_total: pct(&t, 0.99),
            });
        }

        let mut per_tenant = Vec::new();
        for (&tenant, tally) in &self.tallies {
            let recs: Vec<&JobRecord> = done
                .iter()
                .filter(|r| r.spec.tenant == tenant)
                .copied()
                .collect();
            let (_, _, t) = totals_of(&recs);
            per_tenant.push(TenantStats {
                tenant,
                admitted: tally.admitted,
                rejected: tally.rejected,
                completed: tally.completed,
                cache_hits: tally.cache_hits,
                cache_misses: tally.cache_misses,
                p50_total: pct(&t, 0.50),
                p99_total: pct(&t, 0.99),
            });
        }

        let admitted: usize = per_tenant.iter().map(|t| t.admitted).sum();
        let rejected: usize = per_tenant.iter().map(|t| t.rejected).sum();
        Ok(ServeReport {
            policy: self.config.policy,
            submitted: admitted + rejected,
            admitted,
            rejected,
            completed,
            makespan,
            launches_per_sec: if makespan > 0.0 {
                completed as f64 / makespan
            } else {
                0.0
            },
            p50_total: pct(&all_totals, 0.50),
            p99_total: pct(&all_totals, 0.99),
            per_class,
            per_tenant,
            cache: self.plans.stats(),
            node_failures: self.node_failures,
            digests,
        })
    }
}

/// Percentile of an ascending-sorted sample (nearest-rank; 0.0 when
/// empty).
fn pct(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// xorshift64* — the serving layer's self-contained deterministic RNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Generate a deterministic multi-tenant arrival stream: `jobs` launch
/// requests from `tenants` tenants with exponential interarrivals (mean
/// `mean_gap` seconds) and a linearly skewed tenant mix (tenant 0
/// submits the most). Tenant `t` always uses kernel `t % 2`, problem
/// size `512 << (t % 3)` and deadline class `t % 3`, so repeated jobs
/// hit the schedule cache; node requests vary per job (1–4 nodes).
pub fn synthetic_stream(jobs: usize, tenants: u32, seed: u64, mean_gap: f64) -> Vec<JobSpec> {
    assert!(tenants > 0, "at least one tenant");
    let mut rng = Rng::new(seed);
    let mut t = 0.0f64;
    let total_weight: u64 = (1..=tenants as u64).sum();
    let mut out = Vec::with_capacity(jobs);
    for i in 0..jobs {
        t += -mean_gap * (1.0 - rng.f64()).ln();
        // Linear skew: tenant k has weight (tenants - k).
        let mut draw = rng.next() % total_weight;
        let mut tenant = 0u32;
        for k in 0..tenants {
            let w = (tenants - k) as u64;
            if draw < w {
                tenant = k;
                break;
            }
            draw -= w;
        }
        let class = match tenant % 3 {
            0 => DeadlineClass::Interactive,
            1 => DeadlineClass::Batch,
            _ => DeadlineClass::BestEffort,
        };
        out.push(JobSpec {
            tenant,
            class,
            kernel: (tenant % 2) as usize,
            elems: 512 << (tenant % 3),
            nodes: 1 + (rng.next() % 4) as u32,
            arrival: t,
            scale: 1.0 + (i % 7) as f64 * 0.25,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(nodes: u32, config: ServeConfig) -> JobServer {
        JobServer::new(ClusterSpec::simd_focused().with_nodes(nodes), config).unwrap()
    }

    #[test]
    fn both_policies_complete_every_admitted_job() {
        let jobs = synthetic_stream(60, 4, 7, 2e-4);
        for policy in [ServePolicy::Fifo, ServePolicy::Fair] {
            let mut srv = server(
                4,
                ServeConfig {
                    policy,
                    ..ServeConfig::default()
                },
            );
            let report = srv.run(&jobs).unwrap();
            assert_eq!(report.submitted, 60);
            assert_eq!(report.rejected, 0);
            assert_eq!(report.completed, report.admitted, "{policy:?}");
            assert!(report.makespan > 0.0);
            assert!(report.launches_per_sec > 0.0);
            assert!(!report.per_class.is_empty());
            assert_eq!(report.per_tenant.len(), 4);
            // Repeated tenant kernels hit the serving schedule cache.
            assert!(report.cache.hits > 0, "{policy:?}: {:?}", report.cache);
            // The timeline carries the serving tracks.
            let spans = srv.timeline().spans();
            assert!(spans.iter().any(|s| s.track == Track::Queue));
            assert!(spans.iter().any(|s| s.track == Track::Admit));
            assert!(spans.iter().any(|s| s.track == Track::Place));
        }
    }

    #[test]
    fn queue_depth_rejections_are_typed_and_counted() {
        let mut srv = server(
            2,
            ServeConfig {
                policy: ServePolicy::Fair,
                queue_depth: 2,
                ..ServeConfig::default()
            },
        );
        let spec = |i: usize| JobSpec {
            tenant: 3,
            class: DeadlineClass::Batch,
            kernel: 0,
            elems: 512,
            nodes: 1,
            arrival: i as f64 * 1e-6,
            scale: 2.0,
        };
        srv.submit(&spec(0)).unwrap();
        srv.submit(&spec(1)).unwrap();
        let err = srv.submit(&spec(2)).unwrap_err();
        match err {
            MigrateError::Rejected {
                tenant,
                depth,
                limit,
            } => {
                assert_eq!((tenant, depth, limit), (3, 2, 2));
            }
            other => panic!("expected Rejected, got {other}"),
        }
        assert!(err.to_string().contains("admission rejected"));
    }

    #[test]
    fn identical_streams_produce_identical_digests_across_policies() {
        // Per-tenant launch order is arrival order under both policies,
        // so memory outcomes agree even though placement differs.
        let jobs = synthetic_stream(40, 3, 11, 1e-4);
        let digests: Vec<_> = [ServePolicy::Fifo, ServePolicy::Fair]
            .into_iter()
            .map(|policy| {
                let mut srv = server(
                    3,
                    ServeConfig {
                        policy,
                        ..ServeConfig::default()
                    },
                );
                srv.run(&jobs).unwrap().digests
            })
            .collect();
        assert_eq!(digests[0], digests[1]);
    }
}
