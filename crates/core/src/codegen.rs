//! Template-based CPU module generation (the paper's Figure 6).
//!
//! CuCC generates the distributed CPU program from a three-section template:
//! partial block execution, balanced in-place Allgather, callback block
//! execution. Our runtime executes those phases directly, but for
//! inspection, documentation and debugging this module renders the same
//! artifacts the paper shows — the **CPU host module** (MPI-style
//! pseudo-C) and the **CPU kernel module** (the CuPBoP-style block function
//! with the `#pragma omp simd` thread loop of Listing 2).

use crate::compile::CompiledKernel;
use cucc_ir::printer::print_kernel;
use std::fmt::Write;

/// Render the CPU host module for a compiled kernel (Figure 6, right box).
pub fn generate_host_module(ck: &CompiledKernel) -> String {
    let k = &ck.kernel;
    let mut out = String::new();
    let _ = writeln!(out, "// CuCC-generated CPU host module for `{}`", k.name);
    let _ = writeln!(
        out,
        "void {}_host(int grid_size, int block_size, ...) {{",
        k.name
    );
    match ck.analysis.verdict.meta() {
        Some(meta) => {
            let tail = if meta.tail_divergent() { 1 } else { 0 };
            let _ = writeln!(
                out,
                "    int p_size = (grid_size - {tail}) / cluster_size;  // partial blocks per node"
            );
            let _ = writeln!(out, "    // Phase 1: partial block execution");
            let _ = writeln!(
                out,
                "    for (int bid = p_size * c_rank; bid < p_size * (c_rank + 1); bid++)"
            );
            let _ = writeln!(out, "        {}_block(bid, ...);", k.name);
            let _ = writeln!(out, "    // Phase 2: balanced in-place Allgather");
            for b in &meta.buffers {
                let name = k.params[b.param.index()].name();
                let _ = writeln!(
                    out,
                    "    MPI_Allgather(MPI_IN_PLACE, 0, MPI_DATATYPE_NULL, {name}, \
                     p_size * unit_size_{name}, MPI_BYTE, MPI_COMM_WORLD);"
                );
            }
            let _ = writeln!(out, "    // Phase 3: callback block execution");
            let _ = writeln!(
                out,
                "    for (int bid = p_size * cluster_size; bid < grid_size; bid++)"
            );
            let _ = writeln!(out, "        {}_block(bid, ...);", k.name);
        }
        None => {
            let _ = writeln!(
                out,
                "    // Not Allgather distributable: replicated execution"
            );
            let _ = writeln!(out, "    for (int bid = 0; bid < grid_size; bid++)");
            let _ = writeln!(out, "        {}_block(bid, ...);", k.name);
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render the CPU kernel module: the block-to-function transformation of
/// Listing 2 (one GPU block → one CPU function with a SIMD thread loop).
pub fn generate_kernel_module(ck: &CompiledKernel) -> String {
    let k = &ck.kernel;
    let mut out = String::new();
    let _ = writeln!(out, "// CuCC-generated CPU kernel module for `{}`", k.name);
    let params: Vec<String> = k
        .params
        .iter()
        .map(|p| match p {
            cucc_ir::Param::Buffer { name, elem } => format!("{}* {}", elem.c_name(), name),
            cucc_ir::Param::Scalar { name, ty } => format!("{} {}", ty.c_name(), name),
        })
        .collect();
    let _ = writeln!(
        out,
        "void {}_block({}, int block_id, int block_size) {{",
        k.name,
        params.join(", ")
    );
    if ck.analysis.simd.efficiency > 0.0 {
        let _ = writeln!(
            out,
            "#pragma omp simd  // vectorizable: {:?}",
            ck.analysis.simd.class
        );
    } else {
        let _ = writeln!(
            out,
            "    // NOT vectorized: {}",
            ck.analysis.simd.reasons.join("; ")
        );
    }
    let _ = writeln!(
        out,
        "    for (int thread_id = 0; thread_id < block_size; thread_id++) {{"
    );
    let _ = writeln!(
        out,
        "        // … body of `{}` with threadIdx.x = thread_id,",
        k.name
    );
    let _ = writeln!(out, "        //   blockIdx.x = block_id (see IR below)");
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");
    let _ = writeln!(out, "\n/* original kernel IR:\n{}*/", print_kernel(k));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_source;

    const LISTING1: &str = "__global__ void vec_copy(char* src, char* dest, int n) {
        int id = blockDim.x * blockIdx.x + threadIdx.x;
        if (id < n) dest[id] = src[id];
    }";

    #[test]
    fn host_module_has_three_sections() {
        let ck = compile_source(LISTING1).unwrap();
        let host = generate_host_module(&ck);
        assert!(host.contains("Phase 1: partial block execution"));
        assert!(host.contains("MPI_Allgather(MPI_IN_PLACE"));
        assert!(host.contains("Phase 3: callback block execution"));
        // Tail divergent: p_size excludes the tail block, like Figure 6.
        assert!(host.contains("(grid_size - 1) / cluster_size"));
        assert!(host.contains("unit_size_dest"));
    }

    #[test]
    fn replicated_host_module() {
        let ck = compile_source(
            "__global__ void scatter(int* out, int* idx) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                out[idx[id]] = id;
            }",
        )
        .unwrap();
        let host = generate_host_module(&ck);
        assert!(host.contains("replicated execution"));
        assert!(!host.contains("MPI_Allgather"));
    }

    #[test]
    fn kernel_module_has_simd_pragma_when_vectorizable() {
        let ck = compile_source(LISTING1).unwrap();
        let module = generate_kernel_module(&ck);
        assert!(module.contains("#pragma omp simd"));
        assert!(module.contains("for (int thread_id = 0"));
        assert!(module.contains("char* src, char* dest, int n"));
    }

    #[test]
    fn kernel_module_explains_scalar_fallback() {
        let ck = compile_source(
            "__global__ void fir(float* in, float* c, float* out, int taps) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                float acc = 0.0f;
                for (int t = 0; t < taps; t++)
                    acc += in[id + t] * c[t];
                out[id] = acc;
            }",
        )
        .unwrap();
        let module = generate_kernel_module(&ck);
        assert!(module.contains("NOT vectorized"));
        assert!(module.contains("recurrence"));
    }
}
