//! Launch-graph capture and the graph communication optimizer.
//!
//! CUDA applications amortize launch overhead by capturing a stream of
//! kernel launches into a **graph** and replaying it; CuCC inherits the
//! idea and adds a cluster-specific payoff: on replay the runtime knows
//! the whole producer→consumer structure up front, so it can
//!
//! 1. serve every launch's [`crate::schedule::LaunchSchedule`] from the
//!    [`crate::schedule::ScheduleCache`] (planning, probing and the
//!    sampling profiler become amortized-free), and
//! 2. **elide or narrow Allgathers**: when a consumer's launch-resolved
//!    read footprint ([`cucc_analysis::launch_footprints`]) on each node
//!    is covered by data already resident there (the producer's own
//!    write slice plus any earlier partial gathers), the producer's
//!    gather is skipped entirely or narrowed to the uncovered byte
//!    sub-ranges via [`cucc_net::partial_gather`].
//!
//! Capture records ops without executing them — the same contract as CUDA
//! stream capture. Dependencies are derived exactly like the stream
//! hazard tracker in [`crate::stream`]: program order within the capture
//! stream plus RAW/WAW/WAR edges on buffer arguments.
//!
//! **Capture-time stationarity.** A replayed schedule was planned against
//! the memory contents of the first replay (the launch-time probe and the
//! sampling profiler read node memory). Replay assumes those
//! data-dependent decisions remain valid — the same assumption CUDA
//! graphs make about captured kernel parameters. The schedule cache key
//! covers everything else (kernel identity, launch geometry, scalar bits,
//! cluster shape, engine knobs), and any cluster-shape change evicts the
//! whole cache.
//!
//! Elision soundness rests on the `Must` footprint being an
//! *over-approximation* of all accesses: if the hull of a consumer's
//! reads is covered by resident data, the real reads are too. `Unknown`
//! footprints, replicated consumers, aliased buffers and fault-injection
//! sessions all fall back to the full Allgather.

use crate::compile::CompiledKernel;
use crate::schedule::buffer_sets;
use cucc_analysis::{launch_footprints, Diagnostic, LaunchFootprints, Rule, Severity, SiteRef};
use cucc_exec::{Arg, BufferId};
use cucc_ir::LaunchConfig;
use cucc_net::GatherSegment;
use std::collections::HashMap;

/// One captured operation.
#[derive(Debug, Clone)]
pub enum GraphOp {
    /// A kernel launch (clones share the compilation id, so cached
    /// schedules apply across replays).
    Launch {
        /// The compiled kernel (boxed: a kernel dwarfs the upload variant).
        ck: Box<CompiledKernel>,
        /// Launch geometry.
        launch: LaunchConfig,
        /// Arguments, captured by value.
        args: Vec<Arg>,
    },
    /// A host→device broadcast of the captured payload.
    Upload {
        /// Destination buffer (whole-buffer overwrite).
        buf: BufferId,
        /// The bytes to broadcast.
        data: Vec<u8>,
    },
}

/// A captured op plus its dependency edges and static metadata.
#[derive(Debug, Clone)]
pub struct GraphNode {
    /// The operation.
    pub op: GraphOp,
    /// Indices of earlier nodes this node must follow (RAW/WAW/WAR on
    /// buffer arguments — the same hazards the stream scheduler tracks).
    pub deps: Vec<usize>,
    /// Launch-resolved read/write footprints (launch nodes only). Purely
    /// static — a function of (kernel, launch, scalar args) — so they
    /// ride along the node and never need re-deriving on replay.
    pub footprints: Option<LaunchFootprints>,
}

/// An immutable captured DAG, ready for [`replay`](crate::runtime::CuccCluster::graph_replay).
#[derive(Debug, Clone, Default)]
pub struct LaunchGraph {
    /// Nodes in capture (submission) order — a valid topological order.
    pub nodes: Vec<GraphNode>,
}

impl LaunchGraph {
    /// Number of captured ops.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All dependency edges as `(producer, consumer)` pairs.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            for &d in &node.deps {
                out.push((d, i));
            }
        }
        out
    }

    /// Number of launch nodes.
    pub fn num_launches(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.op, GraphOp::Launch { .. }))
            .count()
    }
}

// ---------------------------------------------------------------------
// Graph lint: statically dead launches
// ---------------------------------------------------------------------

/// `ParamId → BufferId` bindings of a launch node's buffer arguments.
fn buffer_args(args: &[Arg]) -> Vec<(usize, BufferId)> {
    args.iter()
        .enumerate()
        .filter_map(|(i, a)| match a {
            Arg::Buffer(b) => Some((i, *b)),
            _ => None,
        })
        .collect()
}

/// Find **statically dead launches**: launch nodes whose entire `Must`
/// write footprint is overwritten by later nodes before any node reads it.
/// Such a launch's output is unobservable — both inside the graph and
/// after replay — so the whole launch (and any Allgather it would have
/// triggered) is dead work.
///
/// The proof is conservative in the safe direction: an `Unknown` footprint
/// anywhere in the chain (the dead candidate's own writes, or a later
/// consumer's reads) blocks the finding, as does any write surviving to
/// the end of the graph (graph outputs are observable by the host).
/// Findings are `Severity::Info` under [`Rule::Lint`], matching the
/// kernel-level lints in `cucc-analysis`.
pub fn lint_graph(graph: &LaunchGraph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        let GraphOp::Launch { ck, launch, args } = &node.op else {
            continue;
        };
        let Some(fp) = &node.footprints else { continue };
        if fp.writes.is_empty() {
            continue; // nothing observable to be dead
        }
        let blocks = launch.grid.count();
        let mut dead = true;
        let mut dead_bufs: Vec<BufferId> = Vec::new();
        'bufs: for (p, w) in &fp.writes {
            let Some(&(_, buf)) = buffer_args(args).iter().find(|(q, _)| *q == p.index()) else {
                dead = false;
                break;
            };
            // `Unknown` write footprint: cannot bound what i wrote.
            let Some(ranges) = w.byte_ranges(0..blocks) else {
                dead = false;
                break;
            };
            let mut remaining = normalize(ranges);
            for later in &graph.nodes[i + 1..] {
                if remaining.is_empty() {
                    break;
                }
                match &later.op {
                    GraphOp::Upload { buf: ub, data } if *ub == buf => {
                        // Whole-buffer broadcast overwrite.
                        remaining = remaining
                            .into_iter()
                            .flat_map(|r| subtract_one(r, &[(0, data.len() as u64)]))
                            .collect();
                    }
                    GraphOp::Upload { .. } => {}
                    GraphOp::Launch {
                        launch: l2,
                        args: a2,
                        ..
                    } => {
                        let Some(fp2) = &later.footprints else {
                            dead = false;
                            break 'bufs;
                        };
                        let b2 = l2.grid.count();
                        for (q, qb) in buffer_args(a2) {
                            if qb != buf {
                                continue;
                            }
                            let q = cucc_ir::ParamId(q as u32);
                            // Reads first: a consumer observes the buffer
                            // before (conceptually, while) overwriting it.
                            if let Some(r) = fp2.reads.get(&q) {
                                match r.byte_ranges(0..b2) {
                                    // Unknown reads may touch anything.
                                    None => {
                                        dead = false;
                                        break 'bufs;
                                    }
                                    Some(rr) => {
                                        let rr = normalize(rr);
                                        if remaining
                                            .iter()
                                            .any(|&r| !intersect_one(r, &rr).is_empty())
                                        {
                                            dead = false;
                                            break 'bufs;
                                        }
                                    }
                                }
                            }
                            if let Some(w2) = fp2.writes.get(&q) {
                                // Unknown later writes cover nothing.
                                if let Some(ww) = w2.byte_ranges(0..b2) {
                                    let ww = normalize(ww);
                                    remaining = remaining
                                        .into_iter()
                                        .flat_map(|r| subtract_one(r, &ww))
                                        .collect();
                                }
                            }
                        }
                    }
                }
            }
            if !remaining.is_empty() {
                dead = false; // survives to graph exit: host-observable
                break;
            }
            dead_bufs.push(buf);
        }
        if dead {
            let bufs = dead_bufs
                .iter()
                .map(|b| format!("buffer {}", b.0))
                .collect::<Vec<_>>()
                .join(", ");
            let mut d = Diagnostic::new(
                Rule::Lint,
                Severity::Info,
                format!(
                    "dead launch: node #{i} (`{}`) writes only {bufs}, and every byte is \
                     overwritten by later nodes before any read — the launch and its \
                     Allgather are dead work",
                    ck.kernel.name
                ),
            );
            d.site = Some(SiteRef {
                buffer: ck.kernel.name.clone(),
                ordinal: i,
                line: None,
            });
            out.push(d);
        }
    }
    out
}

/// Records a stream of launches and transfers into a [`LaunchGraph`]
/// without executing anything.
///
/// ```
/// use cucc_core::{compile_source, GraphCapture};
/// use cucc_exec::{Arg, BufferId};
/// use cucc_ir::LaunchConfig;
///
/// let ck = compile_source(
///     "__global__ void k(float* x, int n) {
///         int id = blockIdx.x * blockDim.x + threadIdx.x;
///         if (id < n) x[id] = 1.0f;
///     }",
/// )
/// .unwrap();
/// let mut cap = GraphCapture::new();
/// let a = cap.launch(&ck, LaunchConfig::cover1(1024, 128),
///                    &[Arg::Buffer(BufferId(0)), Arg::int(1024)]);
/// let b = cap.launch(&ck, LaunchConfig::cover1(1024, 128),
///                    &[Arg::Buffer(BufferId(0)), Arg::int(1024)]);
/// let graph = cap.finish();
/// assert_eq!(graph.len(), 2);
/// assert!(graph.edges().contains(&(a, b))); // WAW on buffer 0
/// ```
#[derive(Debug, Default)]
pub struct GraphCapture {
    nodes: Vec<GraphNode>,
    /// Last node that wrote each buffer.
    last_writer: HashMap<BufferId, usize>,
    /// Readers of each buffer since its last write.
    readers_since: HashMap<BufferId, Vec<usize>>,
}

impl GraphCapture {
    /// Start an empty capture.
    pub fn new() -> GraphCapture {
        GraphCapture::default()
    }

    /// Dependency edges for one op touching `reads`/`writes`, updating the
    /// hazard state — the capture-time mirror of the stream tracker's
    /// `dep_floor` + `commit`.
    fn hazards(&mut self, id: usize, reads: &[BufferId], writes: &[BufferId]) -> Vec<usize> {
        let mut deps = Vec::new();
        for b in reads {
            if let Some(&w) = self.last_writer.get(b) {
                deps.push(w); // RAW
            }
        }
        for b in writes {
            if let Some(&w) = self.last_writer.get(b) {
                deps.push(w); // WAW
            }
            if let Some(rs) = self.readers_since.get(b) {
                deps.extend(rs.iter().copied()); // WAR
            }
        }
        deps.sort_unstable();
        deps.dedup();
        deps.retain(|&d| d != id);
        for b in reads {
            self.readers_since.entry(*b).or_default().push(id);
        }
        for b in writes {
            self.last_writer.insert(*b, id);
            self.readers_since.insert(*b, Vec::new());
        }
        deps
    }

    /// Record a kernel launch. Returns the node index.
    pub fn launch(&mut self, ck: &CompiledKernel, launch: LaunchConfig, args: &[Arg]) -> usize {
        let id = self.nodes.len();
        let (reads, writes) = buffer_sets(&ck.kernel, args);
        let deps = self.hazards(id, &reads, &writes);
        let footprints = launch_footprints(&ck.kernel, &launch, args);
        self.nodes.push(GraphNode {
            op: GraphOp::Launch {
                ck: Box::new(ck.clone()),
                launch,
                args: args.to_vec(),
            },
            deps,
            footprints: Some(footprints),
        });
        id
    }

    /// Record a host→device broadcast. Returns the node index.
    pub fn upload(&mut self, buf: BufferId, data: Vec<u8>) -> usize {
        let id = self.nodes.len();
        let deps = self.hazards(id, &[], &[buf]);
        self.nodes.push(GraphNode {
            op: GraphOp::Upload { buf, data },
            deps,
            footprints: None,
        });
        id
    }

    /// Finish the capture.
    pub fn finish(self) -> LaunchGraph {
        LaunchGraph { nodes: self.nodes }
    }
}

/// Counters from one [`graph_replay`](crate::runtime::CuccCluster::graph_replay) call.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ReplayStats {
    /// Schedule-cache hits during this replay.
    pub cache_hits: u64,
    /// Schedule-cache misses (fresh plans) during this replay.
    pub cache_misses: u64,
    /// Producer gathers skipped entirely (the buffer went pending).
    pub gathers_elided: u64,
    /// Partial gathers issued for uncovered consumer sub-ranges. A region
    /// that is first elided and later partially gathered counts in both
    /// `gathers_elided` and `gathers_narrowed`.
    pub gathers_narrowed: u64,
    /// Gathers executed in full inside launches (nothing elided).
    pub gathers_full: u64,
    /// Pending buffers force-materialized with a full gather (fallbacks:
    /// `Unknown` footprint, replicated consumer, geometry conflict).
    pub materializations: u64,
    /// Bytes actually moved across the wire during the replay window.
    pub wire_bytes: u64,
    /// Planned wire bytes (sum of the launches' scheduled gathers) minus
    /// `wire_bytes` — what elision and narrowing saved this iteration.
    pub wire_bytes_saved: u64,
    /// Simulated seconds the replay occupied.
    pub time: f64,
}

impl ReplayStats {
    /// Accumulate another replay's counters (CLI loops over iterations).
    pub fn accumulate(&mut self, other: &ReplayStats) {
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.gathers_elided += other.gathers_elided;
        self.gathers_narrowed += other.gathers_narrowed;
        self.gathers_full += other.gathers_full;
        self.materializations += other.materializations;
        self.wire_bytes += other.wire_bytes;
        self.wire_bytes_saved += other.wire_bytes_saved;
        self.time += other.time;
    }

    /// `cache_hits / (cache_hits + cache_misses)`, or 0 when no lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

// ---------------------------------------------------------------------
// Pending-gather state and coverage arithmetic
// ---------------------------------------------------------------------

/// An elided Allgather: buffer region `[base, base + unit·nodes)` is *not*
/// consistent across nodes. Node `j`'s copy is valid only in its own slice
/// `[base + j·unit, base + (j+1)·unit)` plus `extras`; bytes outside the
/// region are consistent (partial-phase writes land slice-locally and
/// callback writes are redundant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingGather {
    /// Region start (bytes into the buffer).
    pub base: u64,
    /// Bytes per node slice.
    pub unit: u64,
    /// Node count the slicing was computed for.
    pub nodes: u64,
    /// Absolute byte ranges inside the region already gathered everywhere
    /// (by earlier partial gathers). Normalized: sorted, non-overlapping.
    pub extras: Vec<(u64, u64)>,
}

impl PendingGather {
    /// Total region length in bytes.
    pub fn len(&self) -> u64 {
        self.unit * self.nodes
    }

    /// True for a degenerate empty region.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The region as an absolute half-open byte range.
    pub fn span(&self) -> (u64, u64) {
        (self.base, self.base + self.len())
    }

    /// Node `j`'s slice as an absolute half-open byte range.
    pub fn slice(&self, j: u64) -> (u64, u64) {
        (self.base + j * self.unit, self.base + (j + 1) * self.unit)
    }
}

/// Normalize a range list: drop empties, sort, merge overlaps/adjacency.
pub(crate) fn normalize(mut rs: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    rs.retain(|r| r.1 > r.0);
    rs.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(rs.len());
    for r in rs {
        match out.last_mut() {
            Some(last) if r.0 <= last.1 => last.1 = last.1.max(r.1),
            _ => out.push(r),
        }
    }
    out
}

/// Intersect one range with a normalized list.
fn intersect_one(r: (u64, u64), with: &[(u64, u64)]) -> Vec<(u64, u64)> {
    with.iter()
        .map(|w| (r.0.max(w.0), r.1.min(w.1)))
        .filter(|x| x.1 > x.0)
        .collect()
}

/// Subtract a normalized list from one range.
fn subtract_one(r: (u64, u64), minus: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut keep = vec![r];
    for m in minus {
        let mut next = Vec::with_capacity(keep.len() + 1);
        for k in keep {
            if m.1 <= k.0 || m.0 >= k.1 {
                next.push(k);
                continue;
            }
            if k.0 < m.0 {
                next.push((k.0, m.0));
            }
            if m.1 < k.1 {
                next.push((m.1, k.1));
            }
        }
        keep = next;
    }
    keep
}

/// The byte ranges of `pg`'s region that a consumer still needs gathered,
/// given what each node must read.
///
/// * `per_node[j]` — absolute byte ranges node `j`'s private (partial
///   phase) blocks read from the buffer; covered by node `j`'s own slice,
///   `extras`, or anything outside the region.
/// * `everywhere` — absolute byte ranges *every* node reads (callback
///   blocks run redundantly); only `extras` or out-of-region bytes cover
///   those.
///
/// Returns a normalized list of absolute uncovered ranges — empty means
/// the consumer is fully covered and the gather stays elided.
pub(crate) fn uncovered_ranges(
    pg: &PendingGather,
    per_node: &[Vec<(u64, u64)>],
    everywhere: &[(u64, u64)],
) -> Vec<(u64, u64)> {
    let span = pg.span();
    let mut missing = Vec::new();
    for (j, reqs) in per_node.iter().enumerate() {
        let slice = pg.slice(j as u64);
        for &r in reqs {
            for inside in intersect_one(r, &[span]) {
                for gap in subtract_one(inside, &[slice]) {
                    missing.extend(subtract_one(gap, &pg.extras));
                }
            }
        }
    }
    for &r in everywhere {
        for inside in intersect_one(r, &[span]) {
            missing.extend(subtract_one(inside, &pg.extras));
        }
    }
    normalize(missing)
}

/// Split absolute uncovered ranges into per-owner [`GatherSegment`]s
/// (offsets relative to `pg.base`): every uncovered byte lies in exactly
/// one owner's slice, and that owner holds the authoritative copy.
pub(crate) fn segments_for(pg: &PendingGather, uncovered: &[(u64, u64)]) -> Vec<GatherSegment> {
    let mut segs = Vec::new();
    for &(lo, hi) in uncovered {
        let mut cur = lo;
        while cur < hi {
            let owner = (cur - pg.base) / pg.unit;
            let slice_end = pg.slice(owner).1;
            let end = hi.min(slice_end);
            segs.push(GatherSegment {
                owner: owner as usize,
                lo: cur - pg.base,
                hi: end - pg.base,
            });
            cur = end;
        }
    }
    segs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_source;

    fn pg(base: u64, unit: u64, nodes: u64) -> PendingGather {
        PendingGather {
            base,
            unit,
            nodes,
            extras: Vec::new(),
        }
    }

    #[test]
    fn normalize_merges_and_sorts() {
        assert_eq!(
            normalize(vec![(10, 20), (0, 5), (4, 12), (30, 30)]),
            vec![(0, 20)]
        );
    }

    #[test]
    fn slice_local_reads_are_covered() {
        let pg = pg(0, 100, 4);
        // Each node reads exactly its own slice: nothing to gather.
        let per_node: Vec<_> = (0..4u64).map(|j| vec![pg.slice(j)]).collect();
        assert!(uncovered_ranges(&pg, &per_node, &[]).is_empty());
    }

    #[test]
    fn cross_slice_read_is_uncovered_and_owned() {
        let p = pg(1000, 100, 4);
        // Node 0 reads 10 bytes of node 2's slice.
        let per_node = vec![vec![(1205u64, 1215u64)], vec![], vec![], vec![]];
        let un = uncovered_ranges(&p, &per_node, &[]);
        assert_eq!(un, vec![(1205, 1215)]);
        let segs = segments_for(&p, &un);
        assert_eq!(
            segs,
            vec![GatherSegment {
                owner: 2,
                lo: 205,
                hi: 215
            }]
        );
    }

    #[test]
    fn extras_and_out_of_region_cover() {
        let mut p = pg(0, 100, 2);
        p.extras = vec![(150, 160)];
        // In-slice + extra + outside-region reads: all covered.
        let per_node = vec![vec![(0, 100), (150, 160), (200, 999)], vec![]];
        assert!(uncovered_ranges(&p, &per_node, &[]).is_empty());
        // Callback reads need extras (own slice does not help).
        assert!(uncovered_ranges(&p, &[vec![], vec![]], &[(150, 158)]).is_empty());
        assert_eq!(
            uncovered_ranges(&p, &[vec![], vec![]], &[(140, 155)]),
            vec![(140, 150)]
        );
    }

    #[test]
    fn uncovered_range_spanning_slices_splits_by_owner() {
        let p = pg(0, 100, 3);
        let un = vec![(50u64, 250u64)];
        let segs = segments_for(&p, &un);
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].owner, 0);
        assert_eq!((segs[0].lo, segs[0].hi), (50, 100));
        assert_eq!(segs[1].owner, 1);
        assert_eq!((segs[1].lo, segs[1].hi), (100, 200));
        assert_eq!(segs[2].owner, 2);
        assert_eq!((segs[2].lo, segs[2].hi), (200, 250));
    }

    #[test]
    fn dead_launch_lint_fires_on_overwritten_producer() {
        let ck = compile_source(
            "__global__ void fill(float* x, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) x[id] = 1.0f;
            }",
        )
        .unwrap();
        let x = BufferId(0);
        let launch = LaunchConfig::cover1(1024, 128);
        let args = [Arg::Buffer(x), Arg::int(1024)];
        let mut cap = GraphCapture::new();
        // First fill is completely overwritten by the second before anyone
        // reads x: statically dead.
        let dead = cap.launch(&ck, launch, &args);
        cap.launch(&ck, launch, &args);
        let g = cap.finish();
        let findings = lint_graph(&g);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.starts_with("dead launch"));
        assert_eq!(findings[0].site.as_ref().unwrap().ordinal, dead);
    }

    #[test]
    fn dead_launch_lint_spares_read_and_final_writes() {
        let fill = compile_source(
            "__global__ void fill(float* x, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) x[id] = 1.0f;
            }",
        )
        .unwrap();
        let copy = compile_source(
            "__global__ void copy(float* src, float* dst, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) dst[id] = src[id];
            }",
        )
        .unwrap();
        let x = BufferId(0);
        let y = BufferId(1);
        let launch = LaunchConfig::cover1(1024, 128);
        let mut cap = GraphCapture::new();
        // fill(x) is read by copy(x→y) before the second fill(x): not dead.
        cap.launch(&fill, launch, &[Arg::Buffer(x), Arg::int(1024)]);
        cap.launch(
            &copy,
            launch,
            &[Arg::Buffer(x), Arg::Buffer(y), Arg::int(1024)],
        );
        cap.launch(&fill, launch, &[Arg::Buffer(x), Arg::int(1024)]);
        let g = cap.finish();
        // Second fill survives to graph exit (host-observable) — no finding
        // for it either.
        assert!(lint_graph(&g).is_empty(), "{:?}", lint_graph(&g));
    }

    #[test]
    fn dead_launch_lint_counts_upload_overwrite() {
        let ck = compile_source(
            "__global__ void fill(float* x, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) x[id] = 1.0f;
            }",
        )
        .unwrap();
        let x = BufferId(0);
        let mut cap = GraphCapture::new();
        cap.launch(
            &ck,
            LaunchConfig::cover1(1024, 128),
            &[Arg::Buffer(x), Arg::int(1024)],
        );
        // Host broadcast overwrites all 4096 bytes the launch wrote.
        cap.upload(x, vec![0u8; 4096]);
        let g = cap.finish();
        assert_eq!(lint_graph(&g).len(), 1);
    }

    #[test]
    fn capture_edges_follow_hazards() {
        let ck = compile_source(
            "__global__ void k(float* x, float* y, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) y[id] = 2.0f * x[id];
            }",
        )
        .unwrap();
        let x = BufferId(0);
        let y = BufferId(1);
        let launch = LaunchConfig::cover1(1024, 128);
        let mut cap = GraphCapture::new();
        let up = cap.upload(x, vec![0u8; 4096]);
        let a = cap.launch(
            &ck,
            launch,
            &[Arg::Buffer(x), Arg::Buffer(y), Arg::int(1024)],
        );
        // y -> x: reads a's output (RAW), and overwrites a's input (WAR).
        let b = cap.launch(
            &ck,
            launch,
            &[Arg::Buffer(y), Arg::Buffer(x), Arg::int(1024)],
        );
        let g = cap.finish();
        assert_eq!(g.len(), 3);
        assert_eq!(g.num_launches(), 2);
        let edges = g.edges();
        assert!(edges.contains(&(up, a)), "RAW upload→launch");
        assert!(edges.contains(&(a, b)), "producer→consumer");
        assert!(g.nodes[a].footprints.is_some());
    }
}
