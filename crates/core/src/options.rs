//! `RunOptions` — the unified front-end configuration for running work on
//! a CuCC cluster.
//!
//! [`RuntimeConfig`] grew one knob at a time (engine, threads, sanitizer,
//! faults, …) while session-level concerns — how many streams to fan out
//! over, whether to capture a launch graph, where to checkpoint or restore
//! — accreted as loose CLI flags with no typed home. [`RunOptions`] is the
//! one value both `cucc run` and `cucc serve` parse their flags into, and
//! the one value [`crate::CuccCluster::with_options`] consumes: the
//! runtime knobs ride in [`RunOptions::runtime`], the session knobs beside
//! it. `impl From<RuntimeConfig> for RunOptions` keeps every existing
//! construction site working unchanged.

use crate::runtime::{ExecutionFidelity, RuntimeConfig};
use cucc_exec::EngineKind;
use cucc_net::{AllgatherAlgo, AllgatherPlacement, FaultPlan};
use std::path::PathBuf;

/// Everything a CuCC session can be asked to do, in one typed value:
/// the [`RuntimeConfig`] kernel-execution knobs plus the session-level
/// options (`--streams/--graph/--checkpoint/--restore`) that previously
/// lived only as CLI flag state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunOptions {
    /// Kernel-execution knobs (fidelity, engine, threads, sanitizer,
    /// collectives, fault plan).
    pub runtime: RuntimeConfig,
    /// Streams to fan a pipelined workload over (`0` = no stream
    /// pipelining; `cucc run --streams N`).
    pub streams: usize,
    /// Capture the launch into a graph and replay it this many times
    /// (`0` = no capture; `cucc run --graph N`).
    pub graph_iters: usize,
    /// Write the cluster state to this path at the end of the session
    /// (`cucc run --checkpoint`).
    pub checkpoint_to: Option<PathBuf>,
    /// Resume the session from a checkpoint at this path before launching
    /// (`cucc run --restore`).
    pub restore_from: Option<PathBuf>,
}

impl RunOptions {
    /// Defaults: functional fidelity, no streams, no graph capture, no
    /// checkpoint I/O.
    pub fn new() -> RunOptions {
        RunOptions::default()
    }

    /// Start building from the defaults.
    pub fn builder() -> RunOptionsBuilder {
        RunOptionsBuilder {
            options: RunOptions::default(),
        }
    }
}

/// A [`RuntimeConfig`] is a complete [`RunOptions`] with the session
/// knobs at their defaults — so every legacy `(spec, config)` call site
/// flows into [`crate::CuccCluster::with_options`] unchanged.
impl From<RuntimeConfig> for RunOptions {
    fn from(runtime: RuntimeConfig) -> RunOptions {
        RunOptions {
            runtime,
            ..RunOptions::default()
        }
    }
}

/// Chainable constructor for [`RunOptions`]: the runtime knobs of
/// [`crate::runtime::RuntimeConfigBuilder`] plus the session knobs, one
/// builder for both.
///
/// ```
/// use cucc_core::RunOptions;
/// let opts = RunOptions::builder()
///     .node_threads(2)
///     .sanitize(true)
///     .streams(4)
///     .build();
/// assert!(opts.runtime.sanitize);
/// assert_eq!(opts.streams, 4);
/// ```
#[derive(Debug, Clone)]
pub struct RunOptionsBuilder {
    options: RunOptions,
}

impl RunOptionsBuilder {
    /// Switch to timing-only modeled fidelity (disables consistency
    /// verification).
    pub fn modeled(mut self) -> Self {
        self.options.runtime.fidelity = ExecutionFidelity::Modeled;
        self.options.runtime.verify_consistency = false;
        self
    }

    /// Set the execution fidelity directly.
    pub fn fidelity(mut self, fidelity: ExecutionFidelity) -> Self {
        self.options.runtime.fidelity = fidelity;
        self
    }

    /// Select the functional block executor.
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.options.runtime.engine = engine;
        self
    }

    /// Worker threads per node (`0` = derive from the host).
    pub fn node_threads(mut self, threads: usize) -> Self {
        self.options.runtime.node_threads = threads;
        self
    }

    /// Enable or disable the dynamic kernel sanitizer.
    pub fn sanitize(mut self, on: bool) -> Self {
        self.options.runtime.sanitize = on;
        self
    }

    /// Choose the Allgather algorithm.
    pub fn allgather_algo(mut self, algo: AllgatherAlgo) -> Self {
        self.options.runtime.allgather_algo = algo;
        self
    }

    /// Choose the Allgather buffer placement.
    pub fn placement(mut self, placement: AllgatherPlacement) -> Self {
        self.options.runtime.placement = placement;
        self
    }

    /// Enable or disable the per-launch consistency check.
    pub fn verify_consistency(mut self, on: bool) -> Self {
        self.options.runtime.verify_consistency = on;
        self
    }

    /// Blocks sampled per launch profile.
    pub fn profile_samples(mut self, samples: usize) -> Self {
        self.options.runtime.profile_samples = samples;
        self
    }

    /// Install a complete fault plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.options.runtime.faults = plan;
        self
    }

    /// Add one `--fault` spec (`kill:…`, `delay:…`, `drop:…`, `join:…`)
    /// to the plan. Errors on a malformed spec, like the CLI flag it
    /// backs.
    pub fn fault(mut self, spec: &str) -> Result<Self, String> {
        self.options.runtime.faults = self.options.runtime.faults.clone().with_spec(spec)?;
        Ok(self)
    }

    /// Streams to fan a pipelined workload over (`--streams N`).
    pub fn streams(mut self, streams: usize) -> Self {
        self.options.streams = streams;
        self
    }

    /// Capture and replay the launch graph this many times (`--graph N`).
    pub fn graph_iters(mut self, iters: usize) -> Self {
        self.options.graph_iters = iters;
        self
    }

    /// Checkpoint the cluster state to `path` at the end of the session.
    pub fn checkpoint_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.options.checkpoint_to = Some(path.into());
        self
    }

    /// Restore the session from the checkpoint at `path` before work.
    pub fn restore_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.options.restore_from = Some(path.into());
        self
    }

    /// Finish and return the options.
    pub fn build(self) -> RunOptions {
        self.options
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_reaches_runtime_and_session_knobs() {
        let opts = RunOptions::builder()
            .modeled()
            .node_threads(3)
            .profile_samples(5)
            .streams(2)
            .graph_iters(7)
            .checkpoint_to("/tmp/x.ckpt")
            .build();
        assert_eq!(opts.runtime.fidelity, ExecutionFidelity::Modeled);
        assert!(!opts.runtime.verify_consistency);
        assert_eq!(opts.runtime.node_threads, 3);
        assert_eq!(opts.runtime.profile_samples, 5);
        assert_eq!(opts.streams, 2);
        assert_eq!(opts.graph_iters, 7);
        assert_eq!(
            opts.checkpoint_to.as_deref().unwrap().to_str(),
            Some("/tmp/x.ckpt")
        );
        assert!(opts.restore_from.is_none());
    }

    #[test]
    fn from_runtime_config_preserves_every_knob() {
        let cfg = RuntimeConfig::builder()
            .sanitize(true)
            .node_threads(2)
            .build();
        let opts: RunOptions = cfg.clone().into();
        assert_eq!(opts.runtime, cfg);
        assert_eq!(opts.streams, 0);
        assert_eq!(opts.graph_iters, 0);
    }

    #[test]
    fn fault_specs_accumulate_and_malformed_specs_error() {
        let b = RunOptions::builder()
            .fault("kill:node=1@t=0.5")
            .unwrap()
            .fault("join:node=1@t=1.0")
            .unwrap();
        let opts = b.build();
        assert!(!opts.runtime.faults.is_empty());
        assert!(RunOptions::builder().fault("explode:everything").is_err());
    }
}
