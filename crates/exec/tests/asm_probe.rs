//! Disassembly regression for the lane-loop bounds checks.
//!
//! `lane.rs`'s chunk loops stage lane values in `[u64; LANES]` temporaries
//! indexed by `i < nl`; the code restates `nl = nl.min(LANES)` so the
//! optimizer can prove the indexing in-bounds and drop the panicking
//! checks. This test pins that down: it disassembles the
//! `#[inline(never)]` probe shells around the checked and
//! certificate-elided gather/scatter paths (`cucc_exec::lane::probe`) in
//! this very test binary and fails if any `panic_bounds_check` (or any
//! panic at all on the elided path, whose only checks are
//! `debug_assert!`s) reappears.
//!
//! Only meaningful with optimizations on — debug builds keep every bounds
//! check by design — so the assertions are release-only; the test also
//! skips (loudly) if `objdump` is unavailable.

use cucc_exec::lane::{probe, LANES};
use std::process::Command;

/// Disassemble the current test executable and return the instruction
/// lines of every symbol whose demangled name contains `needle`.
fn disasm_symbols(needle: &str) -> Vec<(String, Vec<String>)> {
    let exe = std::env::current_exe().unwrap();
    let out = Command::new("objdump")
        .args(["-d", "--demangle"])
        .arg(&exe)
        .output()
        .expect("objdump failed to spawn");
    assert!(out.status.success(), "objdump exited nonzero");
    let text = String::from_utf8_lossy(&out.stdout);

    let mut found = Vec::new();
    let mut current: Option<(String, Vec<String>)> = None;
    for line in text.lines() {
        // Symbol headers look like `0000000000042 <name>:`.
        if line.ends_with(">:") {
            if let Some(sym) = current.take() {
                found.push(sym);
            }
            if line.contains(needle) {
                current = Some((line.to_string(), Vec::new()));
            }
        } else if let Some((_, body)) = current.as_mut() {
            if line.trim().is_empty() {
                found.push(current.take().unwrap());
            } else {
                body.push(line.to_string());
            }
        }
    }
    if let Some(sym) = current.take() {
        found.push(sym);
    }
    found
}

#[test]
fn lane_loops_carry_no_bounds_check_panics() {
    // Force codegen of the probe shells into this binary: take their
    // addresses through black_box so the linker cannot strip them.
    let probes: [*const (); 4] = [
        probe::gather_checked as *const (),
        probe::gather_elided as *const (),
        probe::scatter_checked as *const (),
        probe::scatter_elided as *const (),
    ];
    std::hint::black_box(probes);
    let _ = LANES;

    if cfg!(debug_assertions) {
        eprintln!("skipping: bounds checks are expected in unoptimized builds");
        return;
    }
    if Command::new("objdump").arg("--version").output().is_err() {
        eprintln!("skipping: objdump not available");
        return;
    }

    let syms = disasm_symbols("lane::probe::");
    let names: Vec<&str> = syms.iter().map(|(h, _)| h.as_str()).collect();
    for expect in [
        "gather_checked",
        "gather_elided",
        "scatter_checked",
        "scatter_elided",
    ] {
        assert!(
            names.iter().any(|n| n.contains(expect)),
            "probe symbol `{expect}` missing from disassembly: {names:?}"
        );
    }

    for (header, body) in &syms {
        let hits: Vec<&String> = body
            .iter()
            .filter(|l| l.contains("panic_bounds_check"))
            .collect();
        assert!(
            hits.is_empty(),
            "bounds-check panic survived in {header}:\n{}",
            hits.iter()
                .map(|s| s.as_str())
                .collect::<Vec<_>>()
                .join("\n")
        );
        // The elided flavours' only checks are debug_asserts, compiled out
        // here — no panicking call of any kind should remain.
        if header.contains("elided") {
            let panics: Vec<&String> = body.iter().filter(|l| l.contains("panicking")).collect();
            assert!(
                panics.is_empty(),
                "panic path survived in elided probe {header}:\n{}",
                panics
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
    }
}
