//! Bytecode lowering: compile a [`Kernel`] **once per launch** into a flat,
//! register-based instruction stream.
//!
//! The tree-walk interpreter in [`crate::interp`] re-walks the `Stmt`/`Expr`
//! AST for every thread of every block. For a launch, though, almost
//! everything about that walk is invariant: variable slots, the shape of
//! control flow, the split into barrier phases, `blockDim`/`gridDim` and
//! every scalar parameter. [`Program::compile`] resolves all of it ahead of
//! time:
//!
//! * variables map to fixed low registers, expression temporaries to a
//!   compact stack of scratch registers above them;
//! * scalar params, `blockDim`/`gridDim` and constant subtrees fold into
//!   [`Inst::Const`] instructions that carry the op counts the folded code
//!   would have charged (stat parity with the oracle is bit-for-bit);
//! * buffer params resolve to [`crate::memory::BufferId`]s in a dense
//!   memory-slot table (see `Kernel::mem_slot`);
//! * `__syncthreads()` phase boundaries are precomputed into a [`PhaseOp`]
//!   tree instead of being rediscovered per block via `contains_barrier`.
//!
//! Execution of the compiled form lives in [`crate::engine`]. Every
//! instruction replicates the interpreter's *exact* dynamic statistics
//! semantics (which operations count as int vs float ops, address
//! arithmetic, traffic counters), so `BlockStats` from both executors agree
//! bit-for-bit — enforced by the differential proptest suite.

use crate::interp::{
    check_args, contains_barrier, eval_binop, eval_intrinsic, eval_unop, Arg, ExecError,
};
use crate::memory::BufferId;
use crate::stats::intrinsic_weight;
use cucc_ir::{
    AtomicOp, Axis, BinOp, Expr, Intrinsic, Kernel, LaunchConfig, MemRef, MemSpace, Scalar, Stmt,
    UnOp, Value, ValueKind,
};

/// Register index into a thread's register file. Registers `0..num_vars`
/// hold the kernel's scalar variables; higher registers are expression
/// temporaries.
pub type Reg = u32;

/// What a dense memory slot refers to.
#[derive(Debug, Clone)]
pub enum SlotKind {
    /// A global buffer, already bound to its launch argument.
    Global { buf: BufferId },
    /// `__shared__` array `idx` (per block).
    Shared { idx: u32 },
    /// Local array `idx` (per thread).
    Local { idx: u32 },
}

/// Compile-time metadata for one referenced memory slot.
#[derive(Debug, Clone)]
pub struct MemSlotInfo {
    pub kind: SlotKind,
    pub elem: Scalar,
    /// Source name, for out-of-bounds diagnostics.
    pub name: String,
    /// Element count for shared/local arrays (globals are sized by the pool
    /// at run time).
    pub len_elems: usize,
}

/// One bytecode instruction.
///
/// Jump targets are absolute indices into [`Program::code`]. Instructions
/// that stand in for folded or control-flow work carry the op counts the
/// interpreter would have charged, keeping `BlockStats` bit-identical.
#[derive(Debug, Clone)]
pub enum Inst {
    /// `dst ← v`, charging the ops of the constant-folded subtree.
    Const {
        dst: Reg,
        v: Value,
        int_ops: u32,
        float_ops: u32,
    },
    /// `dst ← threadIdx.<axis>`.
    Tid {
        dst: Reg,
        axis: Axis,
    },
    /// `dst ← blockIdx.<axis>` (the only launch-invariant special that
    /// cannot fold: it varies per block).
    Bid {
        dst: Reg,
        axis: Axis,
    },
    /// `dst ← src` (variable reads and assignments).
    Copy {
        dst: Reg,
        src: Reg,
    },
    Unary {
        dst: Reg,
        op: UnOp,
        src: Reg,
    },
    Binary {
        dst: Reg,
        op: BinOp,
        lhs: Reg,
        rhs: Reg,
    },
    /// Fused `dst ← a * b + c`, the dominant FMA shape in GPU kernels.
    /// Charges exactly what the interpreter charges for the `Mul` then the
    /// `Add` (each int or float by its operands' kinds); neither op can
    /// fault, so the fusion is observationally identical.
    MulAdd {
        dst: Reg,
        a: Reg,
        b: Reg,
        c: Reg,
    },
    Cast {
        dst: Reg,
        ty: Scalar,
        src: Reg,
    },
    Intrin1 {
        dst: Reg,
        f: Intrinsic,
        a: Reg,
    },
    Intrin2 {
        dst: Reg,
        f: Intrinsic,
        a: Reg,
        b: Reg,
    },
    /// `dst ← (src != 0) as 0/1` — logical-operator normalization; charges
    /// nothing (the interpreter's `&&`/`||` charge only the decision op).
    Test {
        dst: Reg,
        src: Reg,
    },
    Load {
        dst: Reg,
        slot: u32,
        idx: Reg,
    },
    Store {
        slot: u32,
        idx: Reg,
        val: Reg,
    },
    AtomicRmw {
        op: cucc_ir::AtomicOp,
        slot: u32,
        idx: Reg,
        val: Reg,
    },
    Jump {
        target: u32,
    },
    /// Charge `int_ops` (the branch/short-circuit decision), then jump when
    /// the register is falsy.
    JumpIfFalse {
        cond: Reg,
        target: u32,
        int_ops: u32,
    },
    /// Charge `int_ops`, then jump when the register is truthy.
    JumpIfTrue {
        cond: Reg,
        target: u32,
        int_ops: u32,
    },
    /// For-loop entry. Registers `start`/`end`/`step` hold the evaluated
    /// bounds; they are normalized to `I64` in place, `start` becoming the
    /// *private* induction register (the body may freely clobber the loop
    /// variable without affecting iteration, exactly like the tree-walk
    /// interpreter's local induction value). Zero step errors; a zero trip
    /// count leaves `var = start` and jumps to `exit`.
    ForInit {
        var: Reg,
        start: Reg,
        end: Reg,
        step: Reg,
        exit: u32,
    },
    /// For-loop back edge: charge the induction update + test (2 int ops),
    /// advance the private induction register and the variable, and jump to
    /// `back` while the loop condition holds. `ind` is the `start` register
    /// of the matching [`Inst::ForInit`].
    ForNext {
        var: Reg,
        ind: Reg,
        end: Reg,
        step: Reg,
        back: u32,
    },
    /// Thread returns: terminate this thread for the rest of the launch.
    Return,
}

/// One step of the precomputed barrier-phase schedule (the MCUDA/CuPBoP
/// loop-fission structure, discovered once at compile time instead of per
/// block).
#[derive(Debug, Clone)]
pub enum PhaseOp {
    /// A maximal barrier-free code range: every live thread runs
    /// `code[start..end]` to completion before the next phase op. `batch`
    /// is the inst-major execution mode [`seg_batchable`] proved safe;
    /// `plan` indexes [`Program::lane_plans`] for the vectorized tier
    /// ([`NO_PLAN`] when the segment is not batchable).
    Seg {
        start: u32,
        end: u32,
        batch: BatchKind,
        plan: u32,
    },
    /// `__syncthreads()` — charges one barrier per block.
    Barrier,
    /// Uniform loop around a barrier. `bounds` is a code range evaluated
    /// once on thread 0's registers (op counts charged once, as in the
    /// oracle), leaving start/end/step in `sreg`/`ereg`/`streg`.
    UniformFor {
        var: Reg,
        bounds: (u32, u32),
        sreg: Reg,
        ereg: Reg,
        streg: Reg,
        body: Vec<PhaseOp>,
    },
    /// Uniform branch around a barrier: `cond` code runs on thread 0 only.
    UniformIf {
        cond: (u32, u32),
        creg: Reg,
        then_ops: Vec<PhaseOp>,
        else_ops: Vec<PhaseOp>,
    },
}

/// A kernel compiled for one specific launch (geometry and arguments bound).
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) code: Vec<Inst>,
    pub(crate) phases: Vec<PhaseOp>,
    /// Registers per thread (variables + peak temporaries).
    pub(crate) num_regs: u32,
    /// Leading registers holding kernel variables. Only these need zeroing
    /// between blocks: temporaries are always written before they are read.
    pub(crate) num_vars: u32,
    /// Launch-invariant constants, splatted once per run into the registers
    /// starting at `const_base` (above the temporaries) and never written
    /// again — so `reset` between blocks leaves them intact.
    pub(crate) const_pool: Vec<Value>,
    pub(crate) const_base: u32,
    /// Pooled `threadIdx` axes: per-thread but block-invariant values in
    /// the registers right after the constants, written once per run.
    pub(crate) tid_pool: Vec<Axis>,
    /// Slot metadata, indexed by `Kernel::mem_slot` numbering. Slots the
    /// kernel never references (e.g. scalar parameters) stay `None`.
    pub(crate) slots: Vec<Option<MemSlotInfo>>,
    /// Byte sizes of the shared arrays (one image per block).
    pub(crate) shared_sizes: Vec<usize>,
    /// Byte sizes of the local arrays (one image per thread each).
    pub(crate) local_sizes: Vec<usize>,
    /// Superinstruction-fused lane programs for every batchable segment,
    /// indexed by [`PhaseOp::Seg::plan`] (see [`build_lane_plan`]). Only the
    /// vectorized tier ([`crate::lane`]) executes these; the bytecode and
    /// tree-walk paths ignore them.
    pub(crate) lane_plans: Vec<LanePlan>,
    pub(crate) launch: LaunchConfig,
    /// Optional bounds certificates attached by the range analysis
    /// (`cucc-analysis::range`): per-pc in-bounds proofs the engines consume
    /// to elide (or cross-validate) bounds checks. `None` = every access
    /// takes the checked path.
    pub(crate) certs: Option<Certs>,
    /// Branch pc of each source `if`, in pre-order: the `JumpIfFalse` for
    /// segment-lowered ifs, the last condition instruction for barrier
    /// (phase-lowered) ifs. `?:` selects also emit conditional jumps but are
    /// deliberately absent — the table lets the lint pass attribute a
    /// constant-condition pc to an `if` ordinal (and thence a source line).
    pub(crate) if_sites: Vec<u32>,
    kernel_name: String,
    has_global_atomics: bool,
}

impl Program {
    /// Compile `kernel` for one launch: arguments are checked and bound,
    /// constants folded, phases precomputed. The returned program is
    /// immutable and reusable across blocks, nodes and worker threads.
    pub fn compile(
        kernel: &Kernel,
        launch: LaunchConfig,
        args: &[Arg],
    ) -> Result<Program, ExecError> {
        check_args(kernel, args)?;
        let num_vars = kernel.num_vars() as u32;
        let mut c = Compiler {
            kernel,
            launch,
            args,
            code: Vec::with_capacity(kernel.flat_stmt_count() * 4),
            slots: vec![None; kernel.num_mem_slots()],
            next_reg: num_vars,
            max_reg: num_vars,
            consts: Vec::new(),
            tids: Vec::new(),
            if_sites: Vec::new(),
        };
        let mut phases = c.lower_phases(&kernel.body)?;
        mark_batchable(&mut phases, &c.code, &c.slots);
        let (const_base, num_regs) = c.finish_regs();
        // Lane plans read the *final* register layout (temporaries are
        // `num_vars <= r < const_base`), so they must build after
        // `finish_regs` relocates the pooled registers.
        let mut lane_plans = Vec::new();
        assign_lane_plans(&mut phases, &c.code, num_vars, const_base, &mut lane_plans);
        let mut has_global_atomics = false;
        kernel.visit_stmts(&mut |s| {
            if let Stmt::AtomicRmw { mem, .. } = s {
                if mem.space() == MemSpace::Global {
                    has_global_atomics = true;
                }
            }
        });
        Ok(Program {
            code: c.code,
            phases,
            num_regs,
            num_vars,
            const_pool: c.consts,
            const_base,
            tid_pool: c.tids,
            slots: c.slots,
            shared_sizes: kernel.shared.iter().map(|a| a.size_bytes()).collect(),
            local_sizes: kernel.locals.iter().map(|a| a.size_bytes()).collect(),
            lane_plans,
            launch,
            certs: None,
            if_sites: c.if_sites,
            kernel_name: kernel.name.clone(),
            has_global_atomics,
        })
    }

    // ---- read-only views for the static analyses ----------------------

    /// The flat instruction stream.
    pub fn code(&self) -> &[Inst] {
        &self.code
    }

    /// Branch pc of each source `if`, in pre-order (the same ordinal space
    /// as `SourceMap::if_lines`). `?:` selects are excluded even though they
    /// also lower to conditional jumps.
    pub fn if_sites(&self) -> &[u32] {
        &self.if_sites
    }

    /// The precomputed barrier-phase schedule.
    pub fn phases(&self) -> &[PhaseOp] {
        &self.phases
    }

    /// Slot metadata, indexed by the slot ids in `Load`/`Store`/`AtomicRmw`.
    pub fn slots(&self) -> &[Option<MemSlotInfo>] {
        &self.slots
    }

    /// Launch-invariant constant pool (register `const_base + i` holds
    /// `const_pool[i]` for the whole run).
    pub fn const_pool(&self) -> &[Value] {
        &self.const_pool
    }

    /// Pooled `threadIdx` axes (register `const_base + const_pool.len() + i`
    /// holds `threadIdx.<tid_pool[i]>`).
    pub fn tid_pool(&self) -> &[Axis] {
        &self.tid_pool
    }

    /// First pooled register (registers below are variables + temporaries).
    pub fn const_base(&self) -> u32 {
        self.const_base
    }

    /// Leading registers holding the kernel's scalar variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Total register-file size per thread.
    pub fn num_regs(&self) -> u32 {
        self.num_regs
    }

    /// Superinstruction-fused lane programs (see [`PhaseOp::Seg::plan`]).
    pub fn lane_plans(&self) -> &[LanePlan] {
        &self.lane_plans
    }

    // ---- bounds certificates -------------------------------------------

    /// Attach a per-pc bounds-certificate table (one entry per instruction;
    /// only memory instructions are consulted). Certified accesses take the
    /// engines' unchecked fast path in [`CertMode::Elide`]; in
    /// [`CertMode::Validate`] they run the checked path and a bounds fault
    /// on a certified access surfaces as
    /// [`ExecError::CertificateViolation`] — a wrong certificate is a loud
    /// failure, never UB. Per-lane-op masks are derived by ANDing the pc
    /// certificates through each plan's [`LanePlan::src_map`].
    pub fn attach_certs(&mut self, pc_certified: &[bool], mode: CertMode) {
        assert_eq!(
            pc_certified.len(),
            self.code.len(),
            "certificate table must align with the instruction stream"
        );
        let mut plan_ops: Vec<Vec<bool>> = self
            .lane_plans
            .iter()
            .map(|p| vec![true; p.ops.len()])
            .collect();
        let mut segs: Vec<(u32, u32, u32)> = Vec::new();
        collect_segs(&self.phases, &mut segs);
        for (start, end, plan) in segs {
            if plan == NO_PLAN {
                continue;
            }
            let lp = &self.lane_plans[plan as usize];
            for pc in start..end {
                if is_mem_inst(&self.code[pc as usize]) && !pc_certified[pc as usize] {
                    let op = lp.src_map[(pc - start) as usize] as usize;
                    plan_ops[plan as usize][op] = false;
                }
            }
        }
        self.certs = Some(Certs {
            pc: pc_certified.to_vec(),
            plan_ops,
            mode,
        });
    }

    /// Remove any attached certificate table (all accesses checked again).
    pub fn detach_certs(&mut self) {
        self.certs = None;
    }

    /// Mode of the attached certificate table, if any.
    pub fn cert_mode(&self) -> Option<CertMode> {
        self.certs.as_ref().map(|c| c.mode)
    }

    /// Switch the consumption mode of an attached certificate table without
    /// recomputing it (no-op when none is attached). The sanitizer uses this
    /// to force [`CertMode::Validate`] on a scratch re-run.
    pub fn set_cert_mode(&mut self, mode: CertMode) {
        if let Some(c) = &mut self.certs {
            c.mode = mode;
        }
    }

    /// `(elide, validate)` per-pc certificate masks, split by mode — at most
    /// one side is `Some`. Engines hoist these once per segment: the elide
    /// mask gates the unchecked fast path, the validate mask escalates
    /// bounds faults at certified pcs to certificate violations.
    #[inline]
    pub(crate) fn cert_masks(&self) -> (Option<&[bool]>, Option<&[bool]>) {
        match &self.certs {
            Some(c) => match c.mode {
                CertMode::Elide => (Some(&c.pc[..]), None),
                CertMode::Validate => (None, Some(&c.pc[..])),
            },
            None => (None, None),
        }
    }

    /// Per-lane-op certificate masks for lane plan `idx`, split by mode
    /// like [`Program::cert_masks`]. An op's bit is set iff every memory
    /// instruction folded into it is certified.
    #[inline]
    pub(crate) fn plan_cert_masks(&self, idx: usize) -> (Option<&[bool]>, Option<&[bool]>) {
        match &self.certs {
            Some(c) => match c.mode {
                CertMode::Elide => (Some(&c.plan_ops[idx][..]), None),
                CertMode::Validate => (None, Some(&c.plan_ops[idx][..])),
            },
            None => (None, None),
        }
    }

    /// `(certified, total)` memory instructions under the attached table
    /// (`(0, total)` when no table is attached).
    pub fn cert_stats(&self) -> (usize, usize) {
        let mut certified = 0;
        let mut total = 0;
        for (pc, inst) in self.code.iter().enumerate() {
            if is_mem_inst(inst) {
                total += 1;
                if self.certs.as_ref().is_some_and(|c| c.pc[pc]) {
                    certified += 1;
                }
            }
        }
        (certified, total)
    }

    /// The launch geometry this program was compiled for.
    pub fn launch(&self) -> LaunchConfig {
        self.launch
    }

    /// Name of the source kernel.
    pub fn kernel_name(&self) -> &str {
        &self.kernel_name
    }

    /// Number of instructions in the flat stream.
    pub fn num_insts(&self) -> usize {
        self.code.len()
    }

    /// Compact human-readable phase schedule — segment ranges with their
    /// chosen batch/vector mode (`dense`/`pred`/`scalar`) and, for
    /// vectorizable segments, the superinstruction count as `+Nf` — for
    /// tests and `cucc run -v` diagnostics.
    pub fn phase_summary(&self) -> String {
        fn fmt(ops: &[PhaseOp], plans: &[LanePlan], out: &mut String) {
            for (i, op) in ops.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                match op {
                    PhaseOp::Seg {
                        start,
                        end,
                        batch,
                        plan,
                    } => {
                        let tag = match batch {
                            BatchKind::No => "scalar",
                            BatchKind::Predicated => "pred",
                            BatchKind::Dense => "dense",
                        };
                        out.push_str(&format!("{tag}[{start}..{end}]"));
                        if *plan != NO_PLAN {
                            let fused = plans[*plan as usize].fused;
                            if fused > 0 {
                                out.push_str(&format!("+{fused}f"));
                            }
                        }
                    }
                    PhaseOp::Barrier => out.push_str("bar"),
                    PhaseOp::UniformFor { body, .. } => {
                        out.push_str("for(");
                        fmt(body, plans, out);
                        out.push(')');
                    }
                    PhaseOp::UniformIf {
                        then_ops, else_ops, ..
                    } => {
                        out.push_str("if(");
                        fmt(then_ops, plans, out);
                        out.push_str(")(");
                        fmt(else_ops, plans, out);
                        out.push(')');
                    }
                }
            }
        }
        let mut s = String::new();
        fmt(&self.phases, &self.lane_plans, &mut s);
        s
    }

    /// True when the kernel performs atomics on global memory. Such kernels
    /// interleave read-modify-writes across blocks, so the engine refuses to
    /// chunk their block range across intra-node workers (serial fallback).
    pub fn serial_only(&self) -> bool {
        self.has_global_atomics
    }
}

/// How the engines consume an attached certificate table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertMode {
    /// Certified accesses take the unchecked fast path: the per-access
    /// bounds check is elided (a `debug_assert` still guards debug builds).
    Elide,
    /// Certified accesses run the checked path, and a bounds fault on one
    /// becomes [`ExecError::CertificateViolation`] — used by the sanitizer
    /// and the soundness proptests to cross-validate every certificate.
    Validate,
}

/// Attached bounds certificates (see [`Program::attach_certs`]).
#[derive(Debug, Clone)]
pub(crate) struct Certs {
    /// Per-pc: the access at this pc is certified in-bounds. Only memory
    /// instructions are ever consulted.
    pub pc: Vec<bool>,
    /// Per lane plan, per lane op: every memory access folded into the op
    /// is certified.
    pub plan_ops: Vec<Vec<bool>>,
    pub mode: CertMode,
}

/// True for instructions that access a memory slot.
pub(crate) fn is_mem_inst(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Load { .. } | Inst::Store { .. } | Inst::AtomicRmw { .. }
    )
}

/// Pre-order `(start, end, plan)` of every `Seg` in a phase tree.
fn collect_segs(phases: &[PhaseOp], out: &mut Vec<(u32, u32, u32)>) {
    for p in phases {
        match p {
            PhaseOp::Seg {
                start, end, plan, ..
            } => out.push((*start, *end, *plan)),
            PhaseOp::Barrier => {}
            PhaseOp::UniformFor { body, .. } => collect_segs(body, out),
            PhaseOp::UniformIf {
                then_ops, else_ops, ..
            } => {
                collect_segs(then_ops, out);
                collect_segs(else_ops, out);
            }
        }
    }
}

/// Result of constant-folding a subtree: the value plus the op counts the
/// interpreter would have charged evaluating it.
#[derive(Clone, Copy)]
struct Folded {
    v: Value,
    int_ops: u32,
    float_ops: u32,
}

impl Folded {
    fn pure(v: Value) -> Folded {
        Folded {
            v,
            int_ops: 0,
            float_ops: 0,
        }
    }

    fn count(mut self, kind: ValueKind) -> Folded {
        match kind {
            ValueKind::Int => self.int_ops += 1,
            ValueKind::Float => self.float_ops += 1,
        }
        self
    }

    fn plus_ops(mut self, other: Folded) -> Folded {
        self.int_ops += other.int_ops;
        self.float_ops += other.float_ops;
        self
    }
}

/// Virtual register base for launch-invariant constants during lowering;
/// [`Compiler::finish_regs`] relocates them above the temporaries.
const CONST_BASE: Reg = 1 << 30;

/// Virtual register base for pooled `threadIdx` reads (per-thread but
/// block-invariant, so they are written once per run like constants).
const TID_BASE: Reg = 1 << 29;

struct Compiler<'a> {
    kernel: &'a Kernel,
    launch: LaunchConfig,
    args: &'a [Arg],
    code: Vec<Inst>,
    slots: Vec<Option<MemSlotInfo>>,
    next_reg: Reg,
    max_reg: Reg,
    /// Launch-invariant constant pool: values the engine writes into
    /// dedicated registers once per run instead of re-materializing with a
    /// `Const` instruction in every block × thread.
    consts: Vec<Value>,
    /// Pooled `threadIdx` axes, same idea per thread (see [`TID_BASE`]).
    tids: Vec<Axis>,
    /// Branch pc per source `if`, pre-order (see [`Program::if_sites`]).
    if_sites: Vec<u32>,
}

impl<'a> Compiler<'a> {
    // ---- register allocation ------------------------------------------

    fn mark(&self) -> Reg {
        self.next_reg
    }

    fn restore(&mut self, mark: Reg) {
        self.next_reg = mark;
    }

    fn alloc_tmp(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg += 1;
        self.max_reg = self.max_reg.max(self.next_reg);
        r
    }

    /// Dedicated read-only register for a launch-invariant value
    /// (deduplicated bitwise, so `-0.0` and `0.0` stay distinct).
    fn const_reg(&mut self, v: Value) -> Reg {
        let bits = |v: Value| match v {
            Value::I64(i) => (0u8, i as u64),
            Value::F64(f) => (1u8, f.to_bits()),
        };
        let k = bits(v);
        let i = match self.consts.iter().position(|c| bits(*c) == k) {
            Some(i) => i,
            None => {
                self.consts.push(v);
                self.consts.len() - 1
            }
        };
        CONST_BASE + i as Reg
    }

    /// Dedicated read-only register for a `threadIdx.<axis>` read.
    fn tid_reg(&mut self, axis: Axis) -> Reg {
        let i = match self.tids.iter().position(|a| *a == axis) {
            Some(i) => i,
            None => {
                self.tids.push(axis);
                self.tids.len() - 1
            }
        };
        TID_BASE + i as Reg
    }

    /// Relocate pooled registers from their virtual ranges to just above
    /// the temporaries — layout `[vars][temps][consts][tids]` — returning
    /// `(const_base, num_regs)`.
    fn finish_regs(&mut self) -> (u32, u32) {
        let base = self.max_reg.max(1);
        debug_assert!(base < TID_BASE, "register file overflow");
        let tid_base = base + self.consts.len() as u32;
        let remap = |r: &mut Reg| {
            if *r >= CONST_BASE {
                *r = base + (*r - CONST_BASE);
            } else if *r >= TID_BASE {
                *r = tid_base + (*r - TID_BASE);
            }
        };
        for inst in &mut self.code {
            match inst {
                Inst::Const { dst, .. } | Inst::Tid { dst, .. } | Inst::Bid { dst, .. } => {
                    remap(dst)
                }
                Inst::Copy { dst, src }
                | Inst::Unary { dst, src, .. }
                | Inst::Cast { dst, src, .. }
                | Inst::Test { dst, src } => {
                    remap(dst);
                    remap(src);
                }
                Inst::Binary { dst, lhs, rhs, .. } => {
                    remap(dst);
                    remap(lhs);
                    remap(rhs);
                }
                Inst::MulAdd { dst, a, b, c } => {
                    remap(dst);
                    remap(a);
                    remap(b);
                    remap(c);
                }
                Inst::Intrin1 { dst, a, .. } => {
                    remap(dst);
                    remap(a);
                }
                Inst::Intrin2 { dst, a, b, .. } => {
                    remap(dst);
                    remap(a);
                    remap(b);
                }
                Inst::Load { dst, idx, .. } => {
                    remap(dst);
                    remap(idx);
                }
                Inst::Store { idx, val, .. } | Inst::AtomicRmw { idx, val, .. } => {
                    remap(idx);
                    remap(val);
                }
                Inst::JumpIfFalse { cond, .. } | Inst::JumpIfTrue { cond, .. } => remap(cond),
                Inst::ForInit {
                    var,
                    start,
                    end,
                    step,
                    ..
                } => {
                    // Loop bounds are always materialized into private
                    // temporaries (`ForInit` normalizes them in place), so
                    // none of these can be pooled; remap defensively anyway.
                    remap(var);
                    remap(start);
                    remap(end);
                    remap(step);
                }
                Inst::ForNext {
                    var,
                    ind,
                    end,
                    step,
                    ..
                } => {
                    remap(var);
                    remap(ind);
                    remap(end);
                    remap(step);
                }
                Inst::Jump { .. } | Inst::Return => {}
            }
        }
        (base, tid_base + self.tids.len() as u32)
    }

    // ---- code emission -------------------------------------------------

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn emit(&mut self, i: Inst) -> usize {
        self.code.push(i);
        self.code.len() - 1
    }

    fn patch_target(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Inst::Jump { target: t }
            | Inst::JumpIfFalse { target: t, .. }
            | Inst::JumpIfTrue { target: t, .. }
            | Inst::ForInit { exit: t, .. } => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    // ---- memory slots ---------------------------------------------------

    fn slot(&mut self, mem: MemRef) -> u32 {
        let i = self.kernel.mem_slot(mem);
        if self.slots[i].is_none() {
            let elem = self.kernel.elem_type(mem);
            let info = match mem {
                MemRef::Global(p) => {
                    let Arg::Buffer(id) = self.args[p.index()] else {
                        unreachable!("checked by check_args + validation");
                    };
                    MemSlotInfo {
                        kind: SlotKind::Global { buf: id },
                        elem,
                        name: self.kernel.params[p.index()].name().to_string(),
                        len_elems: 0,
                    }
                }
                MemRef::Shared(s) => {
                    let d = &self.kernel.shared[s as usize];
                    MemSlotInfo {
                        kind: SlotKind::Shared { idx: s },
                        elem,
                        name: d.name.clone(),
                        len_elems: d.len,
                    }
                }
                MemRef::Local(l) => {
                    let d = &self.kernel.locals[l as usize];
                    MemSlotInfo {
                        kind: SlotKind::Local { idx: l },
                        elem,
                        name: d.name.clone(),
                        len_elems: d.len,
                    }
                }
            };
            self.slots[i] = Some(info);
        }
        i as u32
    }

    // ---- constant folding -----------------------------------------------

    /// Fold a subtree whose value is fully determined at compile time
    /// (launch geometry and scalar arguments included), accumulating the op
    /// counts the interpreter would charge. Subtrees that would *error* at
    /// run time (constant division by zero) are deliberately not folded, so
    /// the error surfaces with oracle-identical behaviour.
    fn fold(&self, e: &Expr) -> Option<Folded> {
        Some(match e {
            Expr::IntConst(v) => Folded::pure(Value::I64(*v)),
            Expr::FloatConst(v) => Folded::pure(Value::F64(*v)),
            Expr::BlockDim(a) => Folded::pure(Value::I64(self.launch.block.get(*a) as i64)),
            Expr::GridDim(a) => Folded::pure(Value::I64(self.launch.grid.get(*a) as i64)),
            Expr::Param(p) => {
                let Arg::Scalar(v) = self.args[p.index()] else {
                    unreachable!("checked by check_args + validation");
                };
                Folded::pure(v.convert_to(self.kernel.params[p.index()].scalar()))
            }
            Expr::Unary { op, arg } => {
                let a = self.fold(arg)?;
                let v = eval_unop(*op, a.v);
                Folded { v, ..a }.count(a.v.kind())
            }
            Expr::Binary { op, lhs, rhs } => match op {
                // Short-circuit: a decided lhs folds even when rhs cannot
                // (the interpreter would never evaluate it either).
                BinOp::LAnd => {
                    let l = self.fold(lhs)?.count(ValueKind::Int);
                    if !l.v.is_true() {
                        Folded {
                            v: Value::I64(0),
                            ..l
                        }
                    } else {
                        let r = self.fold(rhs)?;
                        Folded {
                            v: Value::I64(i64::from(r.v.is_true())),
                            ..l.plus_ops(r)
                        }
                    }
                }
                BinOp::LOr => {
                    let l = self.fold(lhs)?.count(ValueKind::Int);
                    if l.v.is_true() {
                        Folded {
                            v: Value::I64(1),
                            ..l
                        }
                    } else {
                        let r = self.fold(rhs)?;
                        Folded {
                            v: Value::I64(i64::from(r.v.is_true())),
                            ..l.plus_ops(r)
                        }
                    }
                }
                _ => {
                    let l = self.fold(lhs)?;
                    let r = self.fold(rhs)?;
                    let float = l.v.kind() == ValueKind::Float || r.v.kind() == ValueKind::Float;
                    let v = eval_binop(*op, l.v, r.v, float).ok()?;
                    let kind = if float {
                        ValueKind::Float
                    } else {
                        ValueKind::Int
                    };
                    Folded { v, ..l.plus_ops(r) }.count(kind)
                }
            },
            Expr::Select {
                cond,
                then_value,
                else_value,
            } => {
                let c = self.fold(cond)?.count(ValueKind::Int);
                let taken = if c.v.is_true() {
                    self.fold(then_value)?
                } else {
                    self.fold(else_value)?
                };
                Folded {
                    v: taken.v,
                    ..c.plus_ops(taken)
                }
            }
            Expr::Cast { ty, arg } => {
                let a = self.fold(arg)?;
                Folded {
                    v: a.v.convert_to(*ty),
                    ..a
                }
                .count(ty.kind())
            }
            Expr::Call { f, args } => {
                let mut vals = Vec::with_capacity(args.len());
                let mut acc = Folded::pure(Value::I64(0));
                for a in args {
                    let fa = self.fold(a)?;
                    vals.push(fa.v);
                    acc = acc.plus_ops(fa);
                }
                Folded {
                    v: eval_intrinsic(*f, &vals),
                    float_ops: acc.float_ops + intrinsic_weight(*f) as u32,
                    int_ops: acc.int_ops,
                }
            }
            Expr::ThreadIdx(_) | Expr::BlockIdx(_) | Expr::Var(_) | Expr::Load { .. } => {
                return None
            }
        })
    }

    // ---- expression lowering --------------------------------------------

    /// Lower `e` as a read-only operand: a variable reads its register
    /// directly and a zero-charge constant its pooled register — no `Copy`
    /// or `Const` instruction at all. Anything else materializes into a
    /// fresh temporary; callers bracket the call with `mark`/`restore`.
    ///
    /// Never use this for registers an instruction later writes (`ForInit`
    /// normalizes its bound registers in place).
    fn lower_operand(&mut self, e: &Expr) -> Result<Reg, ExecError> {
        if let Some(r) = self.pooled_operand(e) {
            return Ok(r);
        }
        let t = self.alloc_tmp();
        self.lower_expr(e, t)?;
        Ok(t)
    }

    /// The register an operand can read without any code: a variable, a
    /// pooled `threadIdx`, or a zero-charge launch-invariant constant.
    fn pooled_operand(&mut self, e: &Expr) -> Option<Reg> {
        match e {
            Expr::Var(v) => return Some(v.0 as Reg),
            Expr::ThreadIdx(a) => return Some(self.tid_reg(*a)),
            _ => {}
        }
        if let Some(f) = self.fold(e) {
            if f.int_ops == 0 && f.float_ops == 0 {
                return Some(self.const_reg(f.v));
            }
        }
        None
    }

    /// [`Self::lower_operand`], but a subexpression that does need code
    /// reuses the caller's scratch register `dst` instead of a fresh
    /// temporary (keeps deep left-leaning chains at constant register
    /// pressure).
    fn lower_operand_into(&mut self, e: &Expr, dst: Reg) -> Result<Reg, ExecError> {
        if let Some(r) = self.pooled_operand(e) {
            return Ok(r);
        }
        self.lower_expr(e, dst)?;
        Ok(dst)
    }

    /// Lower `e` so its value lands in `dst`. `dst` must be a register this
    /// subexpression owns — a temporary, or a variable register whose
    /// current value `e` provably does not read (see [`expr_reads_var`]) —
    /// because sub-lowering writes through it early.
    fn lower_expr(&mut self, e: &Expr, dst: Reg) -> Result<(), ExecError> {
        if let Some(f) = self.fold(e) {
            self.emit(Inst::Const {
                dst,
                v: f.v,
                int_ops: f.int_ops,
                float_ops: f.float_ops,
            });
            return Ok(());
        }
        match e {
            Expr::ThreadIdx(a) => {
                self.emit(Inst::Tid { dst, axis: *a });
            }
            Expr::BlockIdx(a) => {
                self.emit(Inst::Bid { dst, axis: *a });
            }
            Expr::Var(v) => {
                self.emit(Inst::Copy {
                    dst,
                    src: v.0 as Reg,
                });
            }
            Expr::Load { mem, index } => {
                let idx = self.lower_operand_into(index, dst)?;
                let slot = self.slot(*mem);
                self.emit(Inst::Load { dst, slot, idx });
            }
            Expr::Unary { op, arg } => {
                let src = self.lower_operand_into(arg, dst)?;
                self.emit(Inst::Unary { dst, op: *op, src });
            }
            Expr::Binary { op, lhs, rhs } => match op {
                BinOp::LAnd => {
                    let c = self.lower_operand_into(lhs, dst)?;
                    let jf = self.emit(Inst::JumpIfFalse {
                        cond: c,
                        target: 0,
                        int_ops: 1,
                    });
                    self.lower_expr(rhs, dst)?;
                    self.emit(Inst::Test { dst, src: dst });
                    let j = self.emit(Inst::Jump { target: 0 });
                    let f = self.here();
                    self.patch_target(jf, f);
                    self.emit(Inst::Const {
                        dst,
                        v: Value::I64(0),
                        int_ops: 0,
                        float_ops: 0,
                    });
                    let end = self.here();
                    self.patch_target(j, end);
                }
                BinOp::LOr => {
                    let c = self.lower_operand_into(lhs, dst)?;
                    let jt = self.emit(Inst::JumpIfTrue {
                        cond: c,
                        target: 0,
                        int_ops: 1,
                    });
                    self.lower_expr(rhs, dst)?;
                    self.emit(Inst::Test { dst, src: dst });
                    let j = self.emit(Inst::Jump { target: 0 });
                    let t = self.here();
                    self.patch_target(jt, t);
                    self.emit(Inst::Const {
                        dst,
                        v: Value::I64(1),
                        int_ops: 0,
                        float_ops: 0,
                    });
                    let end = self.here();
                    self.patch_target(j, end);
                }
                _ => {
                    // Peephole: `a*b + c` fuses into one `MulAdd`. Operand
                    // code is emitted in oracle evaluation order (a, b, c)
                    // and the instruction charges the `Mul` and the `Add`
                    // separately, so stats stay bit-identical; neither op
                    // can fault, so behaviour is too.
                    if *op == BinOp::Add {
                        if let Expr::Binary {
                            op: BinOp::Mul,
                            lhs: a,
                            rhs: b,
                        } = lhs.as_ref()
                        {
                            let ra = self.lower_operand_into(a, dst)?;
                            let m = self.mark();
                            let rb = self.lower_operand(b)?;
                            let rc = self.lower_operand(rhs)?;
                            self.emit(Inst::MulAdd {
                                dst,
                                a: ra,
                                b: rb,
                                c: rc,
                            });
                            self.restore(m);
                            return Ok(());
                        }
                    }
                    let l = self.lower_operand_into(lhs, dst)?;
                    let m = self.mark();
                    let r = self.lower_operand(rhs)?;
                    self.emit(Inst::Binary {
                        dst,
                        op: *op,
                        lhs: l,
                        rhs: r,
                    });
                    self.restore(m);
                }
            },
            Expr::Select {
                cond,
                then_value,
                else_value,
            } => {
                let c = self.lower_operand_into(cond, dst)?;
                let jf = self.emit(Inst::JumpIfFalse {
                    cond: c,
                    target: 0,
                    int_ops: 1,
                });
                self.lower_expr(then_value, dst)?;
                let j = self.emit(Inst::Jump { target: 0 });
                let e0 = self.here();
                self.patch_target(jf, e0);
                self.lower_expr(else_value, dst)?;
                let end = self.here();
                self.patch_target(j, end);
            }
            Expr::Cast { ty, arg } => {
                let src = self.lower_operand_into(arg, dst)?;
                self.emit(Inst::Cast { dst, ty: *ty, src });
            }
            Expr::Call { f, args } => match args.len() {
                1 => {
                    let a = self.lower_operand_into(&args[0], dst)?;
                    self.emit(Inst::Intrin1 { dst, f: *f, a });
                }
                2 => {
                    let a = self.lower_operand_into(&args[0], dst)?;
                    let m = self.mark();
                    let b = self.lower_operand(&args[1])?;
                    self.emit(Inst::Intrin2 { dst, f: *f, a, b });
                    self.restore(m);
                }
                n => unreachable!("intrinsic arity {n} rejected by validation"),
            },
            Expr::IntConst(_)
            | Expr::FloatConst(_)
            | Expr::BlockDim(_)
            | Expr::GridDim(_)
            | Expr::Param(_) => unreachable!("always folded"),
        }
        Ok(())
    }

    // ---- statement lowering ---------------------------------------------

    fn lower_stmt(&mut self, s: &Stmt) -> Result<(), ExecError> {
        match s {
            Stmt::Assign { var, value } => {
                if expr_reads_var(value, var.0) {
                    // `value` reads the variable being assigned, and
                    // `lower_expr` may clobber `dst` before the read —
                    // stage through a temporary.
                    let m = self.mark();
                    let t = self.alloc_tmp();
                    self.lower_expr(value, t)?;
                    self.emit(Inst::Copy {
                        dst: var.0 as Reg,
                        src: t,
                    });
                    self.restore(m);
                } else {
                    self.lower_expr(value, var.0 as Reg)?;
                }
            }
            Stmt::Store { mem, index, value } => {
                let m = self.mark();
                let idx = self.lower_operand(index)?;
                let val = self.lower_operand(value)?;
                let slot = self.slot(*mem);
                self.emit(Inst::Store { slot, idx, val });
                self.restore(m);
            }
            Stmt::AtomicRmw {
                op,
                mem,
                index,
                value,
            } => {
                let m = self.mark();
                let idx = self.lower_operand(index)?;
                let val = self.lower_operand(value)?;
                let slot = self.slot(*mem);
                self.emit(Inst::AtomicRmw {
                    op: *op,
                    slot,
                    idx,
                    val,
                });
                self.restore(m);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let m = self.mark();
                let c = self.lower_operand(cond)?;
                self.restore(m);
                let jf = self.emit(Inst::JumpIfFalse {
                    cond: c,
                    target: 0,
                    int_ops: 1,
                });
                self.if_sites.push(jf as u32);
                for s in then_body {
                    self.lower_stmt(s)?;
                }
                if else_body.is_empty() {
                    let end = self.here();
                    self.patch_target(jf, end);
                } else {
                    let j = self.emit(Inst::Jump { target: 0 });
                    let e0 = self.here();
                    self.patch_target(jf, e0);
                    for s in else_body {
                        self.lower_stmt(s)?;
                    }
                    let end = self.here();
                    self.patch_target(j, end);
                }
            }
            Stmt::For {
                var,
                start,
                end,
                step,
                body,
            } => {
                // Bound registers stay live across the body: hold the mark.
                let m = self.mark();
                let rs = self.alloc_tmp();
                let re = self.alloc_tmp();
                let rstep = self.alloc_tmp();
                self.lower_expr(start, rs)?;
                self.lower_expr(end, re)?;
                self.lower_expr(step, rstep)?;
                let init = self.emit(Inst::ForInit {
                    var: var.0 as Reg,
                    start: rs,
                    end: re,
                    step: rstep,
                    exit: 0,
                });
                let top = self.here();
                for s in body {
                    self.lower_stmt(s)?;
                }
                self.emit(Inst::ForNext {
                    var: var.0 as Reg,
                    ind: rs,
                    end: re,
                    step: rstep,
                    back: top,
                });
                let exit = self.here();
                self.patch_target(init, exit);
                self.restore(m);
            }
            Stmt::SyncThreads => {
                // Only reachable in barrier-free runs, i.e. never (the phase
                // builder intercepts barriers); no-op like the interpreter.
            }
            Stmt::Return => {
                self.emit(Inst::Return);
            }
        }
        Ok(())
    }

    // ---- phase schedule --------------------------------------------------

    /// See [`mark_batchable`]: lowering leaves `batch: false`; the flag is
    /// decided after the whole code stream exists.
    fn lower_phases(&mut self, stmts: &[Stmt]) -> Result<Vec<PhaseOp>, ExecError> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < stmts.len() {
            if !contains_barrier(&stmts[i]) {
                let start = self.here();
                let s0 = i;
                while i < stmts.len() && !contains_barrier(&stmts[i]) {
                    i += 1;
                }
                for s in &stmts[s0..i] {
                    self.lower_stmt(s)?;
                }
                out.push(PhaseOp::Seg {
                    start,
                    end: self.here(),
                    // Decided by `mark_batchable` once all code is emitted.
                    batch: BatchKind::No,
                    plan: NO_PLAN,
                });
                continue;
            }
            match &stmts[i] {
                Stmt::SyncThreads => out.push(PhaseOp::Barrier),
                Stmt::For {
                    var,
                    start,
                    end,
                    step,
                    body,
                } => {
                    let m = self.mark();
                    let sreg = self.alloc_tmp();
                    let ereg = self.alloc_tmp();
                    let streg = self.alloc_tmp();
                    let c0 = self.here();
                    self.lower_expr(start, sreg)?;
                    self.lower_expr(end, ereg)?;
                    self.lower_expr(step, streg)?;
                    let c1 = self.here();
                    let body_ops = self.lower_phases(body)?;
                    self.restore(m);
                    out.push(PhaseOp::UniformFor {
                        var: var.0 as Reg,
                        bounds: (c0, c1),
                        sreg,
                        ereg,
                        streg,
                        body: body_ops,
                    });
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let m = self.mark();
                    let creg = self.alloc_tmp();
                    let c0 = self.here();
                    self.lower_expr(cond, creg)?;
                    let c1 = self.here();
                    // Pre-order slot for this `if`: the final condition
                    // instruction stands in for the (absent) branch pc.
                    self.if_sites.push(c1.max(c0 + 1) - 1);
                    let then_ops = self.lower_phases(then_body)?;
                    let else_ops = self.lower_phases(else_body)?;
                    self.restore(m);
                    out.push(PhaseOp::UniformIf {
                        cond: (c0, c1),
                        creg,
                        then_ops,
                        else_ops,
                    });
                }
                // `contains_barrier` is only true for the three shapes
                // above; mirror the interpreter's defensive error.
                _ => return Err(ExecError::DivergentBarrier),
            }
            i += 1;
        }
        Ok(out)
    }
}

/// Whether evaluating `e` reads variable `v` — if not, `v`'s register can
/// serve as the lowering destination directly (no staging temporary).
fn expr_reads_var(e: &Expr, v: u32) -> bool {
    match e {
        Expr::Var(id) => id.0 == v,
        Expr::Load { index, .. } => expr_reads_var(index, v),
        Expr::Unary { arg, .. } | Expr::Cast { arg, .. } => expr_reads_var(arg, v),
        Expr::Binary { lhs, rhs, .. } => expr_reads_var(lhs, v) || expr_reads_var(rhs, v),
        Expr::Select {
            cond,
            then_value,
            else_value,
        } => {
            expr_reads_var(cond, v)
                || expr_reads_var(then_value, v)
                || expr_reads_var(else_value, v)
        }
        Expr::Call { args, .. } => args.iter().any(|a| expr_reads_var(a, v)),
        Expr::IntConst(_)
        | Expr::FloatConst(_)
        | Expr::ThreadIdx(_)
        | Expr::BlockIdx(_)
        | Expr::BlockDim(_)
        | Expr::GridDim(_)
        | Expr::Param(_) => false,
    }
}

// ---- thread-batching analysis ------------------------------------------

/// How a segment may execute across the threads of a block (decided once at
/// compile time by [`seg_batchable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchKind {
    /// Thread-major only: the segment loops, or its memory accesses could
    /// interleave observably under inst-major order.
    No,
    /// Inst-major with per-thread predication (forward jumps / returns
    /// divert individual threads).
    Predicated,
    /// Inst-major with no control flow at all: every thread executes every
    /// instruction, so the engine can skip predication entirely.
    Dense,
}

/// Set [`PhaseOp::Seg::batch`] throughout a phase tree. Runs after all code
/// is emitted so every jump target is final.
fn mark_batchable(phases: &mut [PhaseOp], code: &[Inst], slots: &[Option<MemSlotInfo>]) {
    for p in phases {
        match p {
            PhaseOp::Seg {
                start, end, batch, ..
            } => {
                *batch = seg_batchable(code, slots, *start, *end);
            }
            PhaseOp::Barrier => {}
            PhaseOp::UniformFor { body, .. } => mark_batchable(body, code, slots),
            PhaseOp::UniformIf {
                then_ops, else_ops, ..
            } => {
                mark_batchable(then_ops, code, slots);
                mark_batchable(else_ops, code, slots);
            }
        }
    }
}

/// Can `code[start..end)` run *inst-major* across all threads of a block
/// (one dispatch per instruction, inner loop over threads) while staying
/// bit-for-bit with the oracle's thread-major order? Two families of rules:
///
/// Control flow must be forward-only inside the range — every jump target
/// satisfies `pc < target <= end` and there is no `ForInit`/`ForNext`.
/// Divergence then reduces to predication: a thread that jumped ahead sits
/// out instructions until its resume point, and `Return` retires it.
///
/// Memory accesses to non-local slots must not interleave observably
/// (locals are thread-private, so per-thread program order — which
/// batching preserves — is all they need):
///
/// * a loaded slot has no stores and no atomics in the range: every load
///   then sees segment-entry state, exactly as in the oracle, where a
///   thread's own earlier stores are the only ones it could observe;
/// * at most one plain `Store` instruction per slot (and no atomics on
///   it): a single instruction's thread-ascending writes leave the same
///   last-writer-per-element as the thread-major order, but two store
///   sites can swap order under divergence (`out[0] = 1` by all threads
///   then `out[0] = 2` by thread 0 only must end at 1, not 2);
/// * a slot's atomics either come from a single instruction (its
///   thread-ascending order *is* the oracle order), or all share one op on
///   an integer element: atomic results are discarded (`AtomicRmw` has no
///   destination register), so only the final accumulated value matters,
///   and wrapping-int add/min/max are order-independent — float add is
///   non-associative and float min/max can flip `±0.0` bits, so multiple
///   float atomic sites stay thread-major.
fn seg_batchable(code: &[Inst], slots: &[Option<MemSlotInfo>], start: u32, end: u32) -> BatchKind {
    struct SlotUse {
        loaded: bool,
        stores: u32,
        atomic: Option<AtomicOp>,
        atomic_ok: bool,
    }
    let mut uses: Vec<SlotUse> = slots
        .iter()
        .map(|_| SlotUse {
            loaded: false,
            stores: 0,
            atomic: None,
            atomic_ok: true,
        })
        .collect();
    let local = |slot: u32| {
        matches!(
            slots[slot as usize],
            Some(MemSlotInfo {
                kind: SlotKind::Local { .. },
                ..
            })
        )
    };
    let mut diverges = false;
    for pc in start..end {
        match &code[pc as usize] {
            Inst::Jump { target }
            | Inst::JumpIfFalse { target, .. }
            | Inst::JumpIfTrue { target, .. } => {
                if *target <= pc || *target > end {
                    return BatchKind::No;
                }
                diverges = true;
            }
            Inst::Return => diverges = true,
            Inst::ForInit { .. } | Inst::ForNext { .. } => return BatchKind::No,
            Inst::Load { slot, .. } if !local(*slot) => uses[*slot as usize].loaded = true,
            Inst::Store { slot, .. } if !local(*slot) => uses[*slot as usize].stores += 1,
            Inst::AtomicRmw { op, slot, .. } if !local(*slot) => {
                let u = &mut uses[*slot as usize];
                let commutes = slots[*slot as usize]
                    .as_ref()
                    .is_some_and(|i| i.elem.kind() == ValueKind::Int);
                match u.atomic {
                    None => u.atomic = Some(*op),
                    Some(prev) if prev == *op && commutes => {}
                    Some(_) => u.atomic_ok = false,
                }
            }
            _ => {}
        }
    }
    let safe = uses.iter().all(|u| {
        u.atomic_ok
            && !(u.loaded && (u.stores > 0 || u.atomic.is_some()))
            && u.stores <= 1
            && !(u.stores == 1 && u.atomic.is_some())
    });
    match (safe, diverges) {
        (false, _) => BatchKind::No,
        (true, true) => BatchKind::Predicated,
        (true, false) => BatchKind::Dense,
    }
}

// ---- lane plans: superinstruction fusion for the vectorized tier --------

/// Sentinel for [`PhaseOp::Seg::plan`]: no lane plan (the segment is not
/// batchable, so the vectorized tier falls back to thread-major scalar
/// execution).
pub const NO_PLAN: u32 = u32::MAX;

/// One instruction of a fused lane program. The base variants mirror
/// [`Inst`] one-for-one (jump targets rebased to plan-relative indices); the
/// superinstruction variants collapse the adjacent pairs and triples that
/// dominate the built-in kernels, so the vectorized hot loop dispatches once
/// where the bytecode engine dispatches two or three times. Every fused
/// variant charges *exactly* the per-component `BlockStats` its expansion
/// would, and faults in per-lane program order, so observational equivalence
/// with the oracle is preserved (see [`try_fuse`] for the legality rules).
#[derive(Debug, Clone, Copy)]
pub enum LaneOp {
    Const {
        dst: Reg,
        v: Value,
        int_ops: u32,
        float_ops: u32,
    },
    Tid {
        dst: Reg,
        axis: Axis,
    },
    Bid {
        dst: Reg,
        axis: Axis,
    },
    Copy {
        dst: Reg,
        src: Reg,
    },
    Unary {
        dst: Reg,
        op: UnOp,
        src: Reg,
    },
    Binary {
        dst: Reg,
        op: BinOp,
        lhs: Reg,
        rhs: Reg,
    },
    MulAdd {
        dst: Reg,
        a: Reg,
        b: Reg,
        c: Reg,
    },
    Cast {
        dst: Reg,
        ty: Scalar,
        src: Reg,
    },
    Intrin1 {
        dst: Reg,
        f: Intrinsic,
        a: Reg,
    },
    Intrin2 {
        dst: Reg,
        f: Intrinsic,
        a: Reg,
        b: Reg,
    },
    Test {
        dst: Reg,
        src: Reg,
    },
    Load {
        dst: Reg,
        slot: u32,
        idx: Reg,
    },
    Store {
        slot: u32,
        idx: Reg,
        val: Reg,
    },
    AtomicRmw {
        op: AtomicOp,
        slot: u32,
        idx: Reg,
        val: Reg,
    },
    Jump {
        target: u32,
    },
    JumpIfFalse {
        cond: Reg,
        target: u32,
        int_ops: u32,
    },
    JumpIfTrue {
        cond: Reg,
        target: u32,
        int_ops: u32,
    },
    Return,
    /// Fused comparison + conditional branch (guard checks): jump when the
    /// comparison result equals `jump_if`. Charges the comparison (by its
    /// operands' kinds) plus the branch's `int_ops`; comparisons never
    /// fault, so the fusion is observationally identical.
    CmpBranch {
        op: BinOp,
        lhs: Reg,
        rhs: Reg,
        target: u32,
        int_ops: u32,
        jump_if: bool,
    },
    /// Fused load + binary op: `dst ← loaded ⊕ other` (or `other ⊕ loaded`
    /// when `load_lhs` is false). Only non-faulting operators fuse.
    LoadBin {
        dst: Reg,
        op: BinOp,
        slot: u32,
        idx: Reg,
        other: Reg,
        load_lhs: bool,
    },
    /// Fused binary op + store: `mem[idx] ← lhs ⊕ rhs`.
    BinStore {
        op: BinOp,
        lhs: Reg,
        rhs: Reg,
        slot: u32,
        idx: Reg,
    },
    /// Fused load + store (tile staging): `dslot[didx] ← sslot[sidx]`. The
    /// two slots are necessarily distinct — `seg_batchable` forbids stores
    /// to a loaded slot — so per-lane load-then-store order is unobservable.
    LoadStore {
        sslot: u32,
        sidx: Reg,
        dslot: u32,
        didx: Reg,
    },
    /// Fused load + muladd: the loaded value takes operand position `pos`
    /// (0 = a, 1 = b, 2 = c) of `dst ← a*b + c`; `x`/`y` are the remaining
    /// two operands in order.
    LoadMulAdd {
        dst: Reg,
        x: Reg,
        y: Reg,
        slot: u32,
        idx: Reg,
        pos: u8,
    },
    /// Fused muladd + store: `mem[idx] ← a*b + c`.
    MulAddStore {
        a: Reg,
        b: Reg,
        c: Reg,
        slot: u32,
        idx: Reg,
    },
    /// The saxpy triple: load, muladd (loaded value at `pos`), store.
    LoadMulAddStore {
        x: Reg,
        y: Reg,
        pos: u8,
        lslot: u32,
        lidx: Reg,
        dslot: u32,
        didx: Reg,
    },
}

/// A batchable segment compiled for inst-major lane-array execution:
/// superinstruction-fused ops with plan-relative jump targets.
#[derive(Debug, Clone)]
pub struct LanePlan {
    pub ops: Vec<LaneOp>,
    /// Number of source instructions eliminated by fusion (diagnostics).
    pub fused: u32,
    /// Segment-relative pc → index of the lane op it became (fused insts map
    /// to the fused op). Length is the segment length + 1; the certificate
    /// attachment uses it to AND per-pc access certificates into per-op
    /// masks, so a fused multi-access op is fast-pathed only when *all* its
    /// component accesses are certified.
    pub src_map: Vec<u32>,
}

/// Build a [`LanePlan`] for every batchable segment in the phase tree and
/// record its index in [`PhaseOp::Seg::plan`].
fn assign_lane_plans(
    phases: &mut [PhaseOp],
    code: &[Inst],
    num_vars: u32,
    const_base: u32,
    plans: &mut Vec<LanePlan>,
) {
    for p in phases {
        match p {
            PhaseOp::Seg {
                start,
                end,
                batch,
                plan,
            } => {
                if *batch != BatchKind::No {
                    *plan = plans.len() as u32;
                    plans.push(build_lane_plan(code, *start, *end, num_vars, const_base));
                }
            }
            PhaseOp::Barrier => {}
            PhaseOp::UniformFor { body, .. } => {
                assign_lane_plans(body, code, num_vars, const_base, plans)
            }
            PhaseOp::UniformIf {
                then_ops, else_ops, ..
            } => {
                assign_lane_plans(then_ops, code, num_vars, const_base, plans);
                assign_lane_plans(else_ops, code, num_vars, const_base, plans);
            }
        }
    }
}

/// Whether executing `inst` reads register `r`.
fn inst_reads(inst: &Inst, r: Reg) -> bool {
    match inst {
        Inst::Const { .. } | Inst::Tid { .. } | Inst::Bid { .. } | Inst::Jump { .. } => false,
        Inst::Return => false,
        Inst::Copy { src, .. }
        | Inst::Unary { src, .. }
        | Inst::Cast { src, .. }
        | Inst::Test { src, .. } => *src == r,
        Inst::Binary { lhs, rhs, .. } => *lhs == r || *rhs == r,
        Inst::MulAdd { a, b, c, .. } => *a == r || *b == r || *c == r,
        Inst::Intrin1 { a, .. } => *a == r,
        Inst::Intrin2 { a, b, .. } => *a == r || *b == r,
        Inst::Load { idx, .. } => *idx == r,
        Inst::Store { idx, val, .. } | Inst::AtomicRmw { idx, val, .. } => *idx == r || *val == r,
        Inst::JumpIfFalse { cond, .. } | Inst::JumpIfTrue { cond, .. } => *cond == r,
        Inst::ForInit {
            start, end, step, ..
        } => *start == r || *end == r || *step == r,
        Inst::ForNext { ind, end, step, .. } => *ind == r || *end == r || *step == r,
    }
}

/// The destination register a lane op writes, when it has one.
fn lane_dst(op: &LaneOp) -> Option<Reg> {
    match op {
        LaneOp::Const { dst, .. }
        | LaneOp::Tid { dst, .. }
        | LaneOp::Bid { dst, .. }
        | LaneOp::Copy { dst, .. }
        | LaneOp::Unary { dst, .. }
        | LaneOp::Binary { dst, .. }
        | LaneOp::MulAdd { dst, .. }
        | LaneOp::Cast { dst, .. }
        | LaneOp::Intrin1 { dst, .. }
        | LaneOp::Intrin2 { dst, .. }
        | LaneOp::Test { dst, .. }
        | LaneOp::Load { dst, .. }
        | LaneOp::LoadBin { dst, .. }
        | LaneOp::LoadMulAdd { dst, .. } => Some(*dst),
        _ => None,
    }
}

/// Redirect a lane op's destination (result forwarding — see [`try_fuse`]).
fn set_lane_dst(op: &mut LaneOp, r: Reg) {
    match op {
        LaneOp::Const { dst, .. }
        | LaneOp::Tid { dst, .. }
        | LaneOp::Bid { dst, .. }
        | LaneOp::Copy { dst, .. }
        | LaneOp::Unary { dst, .. }
        | LaneOp::Binary { dst, .. }
        | LaneOp::MulAdd { dst, .. }
        | LaneOp::Cast { dst, .. }
        | LaneOp::Intrin1 { dst, .. }
        | LaneOp::Intrin2 { dst, .. }
        | LaneOp::Test { dst, .. }
        | LaneOp::Load { dst, .. }
        | LaneOp::LoadBin { dst, .. }
        | LaneOp::LoadMulAdd { dst, .. } => *dst = r,
        other => unreachable!("retargeting dst-less lane op {other:?}"),
    }
}

fn is_cmp(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
    )
}

/// Try to fuse `inst` into the previously emitted lane op, rewriting it in
/// place. Legality rests on three facts:
///
/// * the consumed register is an expression *temporary* (`num_vars <= r <
///   const_base`) that no later instruction of the segment reads — and
///   temporaries are always written before they are read within a segment,
///   so a temp dead at segment end is dead, period (callers never observe
///   its stale value);
/// * the fused-over instruction is not a jump target (checked by the
///   caller), and the first component is never a branch, so a lane active
///   at the first component is active at the second — per-lane the fused op
///   executes exactly the component sequence;
/// * components fault in per-lane program order (load before compute before
///   store), which is the oracle's thread-local order, and cross-lane
///   memory effects are unobservable under `seg_batchable`'s hazard rules.
///
/// Faultable binary ops (`Div`/`Rem`, whose int forms can trap) never fuse,
/// keeping every fused compute component total.
fn try_fuse(
    last: &mut LaneOp,
    inst: &Inst,
    is_temp: &dyn Fn(Reg) -> bool,
    dead_after: &dyn Fn(Reg) -> bool,
) -> bool {
    let gone = |t: Reg| is_temp(t) && dead_after(t);
    match (*last, inst) {
        // Result forwarding: `op t; copy v<-t` => `op` writing `v` directly.
        (ref l, Inst::Copy { dst, src }) if lane_dst(l) == Some(*src) && gone(*src) => {
            set_lane_dst(last, *dst);
            true
        }
        // Compare + branch (loop guards, `if (i < n)` predication).
        (
            LaneOp::Binary { dst, op, lhs, rhs },
            Inst::JumpIfFalse {
                cond,
                target,
                int_ops,
            },
        ) if *cond == dst && is_cmp(op) && gone(dst) => {
            *last = LaneOp::CmpBranch {
                op,
                lhs,
                rhs,
                target: *target,
                int_ops: *int_ops,
                jump_if: false,
            };
            true
        }
        (
            LaneOp::Binary { dst, op, lhs, rhs },
            Inst::JumpIfTrue {
                cond,
                target,
                int_ops,
            },
        ) if *cond == dst && is_cmp(op) && gone(dst) => {
            *last = LaneOp::CmpBranch {
                op,
                lhs,
                rhs,
                target: *target,
                int_ops: *int_ops,
                jump_if: true,
            };
            true
        }
        // Load + binary (exactly one operand is the loaded temp).
        (LaneOp::Load { dst: t, slot, idx }, Inst::Binary { dst, op, lhs, rhs })
            if gone(t)
                && !matches!(op, BinOp::Div | BinOp::Rem)
                && ((*lhs == t) != (*rhs == t)) =>
        {
            let load_lhs = *lhs == t;
            *last = LaneOp::LoadBin {
                dst: *dst,
                op: *op,
                slot,
                idx,
                other: if load_lhs { *rhs } else { *lhs },
                load_lhs,
            };
            true
        }
        // Load + muladd (exactly one operand is the loaded temp).
        (LaneOp::Load { dst: t, slot, idx }, Inst::MulAdd { dst, a, b, c })
            if gone(t) && (u32::from(*a == t) + u32::from(*b == t) + u32::from(*c == t)) == 1 =>
        {
            let (pos, x, y) = if *a == t {
                (0, *b, *c)
            } else if *b == t {
                (1, *a, *c)
            } else {
                (2, *a, *b)
            };
            *last = LaneOp::LoadMulAdd {
                dst: *dst,
                x,
                y,
                slot,
                idx,
                pos,
            };
            true
        }
        // Load + store (tile staging).
        (
            LaneOp::Load { dst: t, slot, idx },
            Inst::Store {
                slot: ds,
                idx: di,
                val,
            },
        ) if *val == t && *di != t && gone(t) => {
            *last = LaneOp::LoadStore {
                sslot: slot,
                sidx: idx,
                dslot: *ds,
                didx: *di,
            };
            true
        }
        // Binary + store.
        (
            LaneOp::Binary {
                dst: t,
                op,
                lhs,
                rhs,
            },
            Inst::Store { slot, idx, val },
        ) if *val == t && *idx != t && gone(t) && !matches!(op, BinOp::Div | BinOp::Rem) => {
            *last = LaneOp::BinStore {
                op,
                lhs,
                rhs,
                slot: *slot,
                idx: *idx,
            };
            true
        }
        // Muladd + store.
        (LaneOp::MulAdd { dst: t, a, b, c }, Inst::Store { slot, idx, val })
            if *val == t && *idx != t && gone(t) =>
        {
            *last = LaneOp::MulAddStore {
                a,
                b,
                c,
                slot: *slot,
                idx: *idx,
            };
            true
        }
        // Load + muladd + store: the saxpy triple, completed.
        (
            LaneOp::LoadMulAdd {
                dst: t,
                x,
                y,
                slot,
                idx,
                pos,
            },
            Inst::Store {
                slot: ds,
                idx: di,
                val,
            },
        ) if *val == t && *di != t && gone(t) => {
            *last = LaneOp::LoadMulAddStore {
                x,
                y,
                pos,
                lslot: slot,
                lidx: idx,
                dslot: *ds,
                didx: *di,
            };
            true
        }
        _ => false,
    }
}

/// Compile `code[start..end)` — a segment `seg_batchable` proved safe — into
/// a [`LanePlan`]: translate each instruction to its [`LaneOp`] mirror,
/// greedily fusing into the previous op where [`try_fuse`] allows, then
/// rebase jump targets to plan-relative indices.
///
/// Fusion never crosses a jump target (a lane resuming at the second
/// component could not skip the first inside a fused op), and chains
/// naturally: `Load` + `MulAdd` fuse to `LoadMulAdd`, which a following
/// `Store` completes to `LoadMulAddStore`.
fn build_lane_plan(
    code: &[Inst],
    start: u32,
    end: u32,
    num_vars: u32,
    const_base: u32,
) -> LanePlan {
    let s = start as usize;
    let e = end as usize;
    let n = e - s;
    let mut is_target = vec![false; n + 1];
    for inst in &code[s..e] {
        match inst {
            Inst::Jump { target }
            | Inst::JumpIfFalse { target, .. }
            | Inst::JumpIfTrue { target, .. } => {
                is_target[*target as usize - s] = true;
            }
            _ => {}
        }
    }
    let is_temp = |r: Reg| r >= num_vars && r < const_base;
    let mut ops: Vec<LaneOp> = Vec::with_capacity(n);
    let mut old2new = vec![0u32; n + 1];
    let mut fused = 0u32;
    for pc in s..e {
        let rel = pc - s;
        let inst = &code[pc];
        if !is_target[rel] {
            if let Some(last) = ops.last_mut() {
                let dead_after = |r: Reg| !code[pc + 1..e].iter().any(|i| inst_reads(i, r));
                if try_fuse(last, inst, &is_temp, &dead_after) {
                    fused += 1;
                    old2new[rel] = ops.len() as u32 - 1;
                    continue;
                }
            }
        }
        old2new[rel] = ops.len() as u32;
        ops.push(match inst {
            Inst::Const {
                dst,
                v,
                int_ops,
                float_ops,
            } => LaneOp::Const {
                dst: *dst,
                v: *v,
                int_ops: *int_ops,
                float_ops: *float_ops,
            },
            Inst::Tid { dst, axis } => LaneOp::Tid {
                dst: *dst,
                axis: *axis,
            },
            Inst::Bid { dst, axis } => LaneOp::Bid {
                dst: *dst,
                axis: *axis,
            },
            Inst::Copy { dst, src } => LaneOp::Copy {
                dst: *dst,
                src: *src,
            },
            Inst::Unary { dst, op, src } => LaneOp::Unary {
                dst: *dst,
                op: *op,
                src: *src,
            },
            Inst::Binary { dst, op, lhs, rhs } => LaneOp::Binary {
                dst: *dst,
                op: *op,
                lhs: *lhs,
                rhs: *rhs,
            },
            Inst::MulAdd { dst, a, b, c } => LaneOp::MulAdd {
                dst: *dst,
                a: *a,
                b: *b,
                c: *c,
            },
            Inst::Cast { dst, ty, src } => LaneOp::Cast {
                dst: *dst,
                ty: *ty,
                src: *src,
            },
            Inst::Intrin1 { dst, f, a } => LaneOp::Intrin1 {
                dst: *dst,
                f: *f,
                a: *a,
            },
            Inst::Intrin2 { dst, f, a, b } => LaneOp::Intrin2 {
                dst: *dst,
                f: *f,
                a: *a,
                b: *b,
            },
            Inst::Test { dst, src } => LaneOp::Test {
                dst: *dst,
                src: *src,
            },
            Inst::Load { dst, slot, idx } => LaneOp::Load {
                dst: *dst,
                slot: *slot,
                idx: *idx,
            },
            Inst::Store { slot, idx, val } => LaneOp::Store {
                slot: *slot,
                idx: *idx,
                val: *val,
            },
            Inst::AtomicRmw { op, slot, idx, val } => LaneOp::AtomicRmw {
                op: *op,
                slot: *slot,
                idx: *idx,
                val: *val,
            },
            Inst::Jump { target } => LaneOp::Jump { target: *target },
            Inst::JumpIfFalse {
                cond,
                target,
                int_ops,
            } => LaneOp::JumpIfFalse {
                cond: *cond,
                target: *target,
                int_ops: *int_ops,
            },
            Inst::JumpIfTrue {
                cond,
                target,
                int_ops,
            } => LaneOp::JumpIfTrue {
                cond: *cond,
                target: *target,
                int_ops: *int_ops,
            },
            Inst::Return => LaneOp::Return,
            Inst::ForInit { .. } | Inst::ForNext { .. } => {
                unreachable!("loop instructions are never batchable")
            }
        });
    }
    old2new[n] = ops.len() as u32;
    for op in &mut ops {
        match op {
            LaneOp::Jump { target }
            | LaneOp::JumpIfFalse { target, .. }
            | LaneOp::JumpIfTrue { target, .. }
            | LaneOp::CmpBranch { target, .. } => {
                *target = old2new[*target as usize - s];
            }
            _ => {}
        }
    }
    LanePlan {
        ops,
        fused,
        src_map: old2new,
    }
}
