//! Bytecode execution engine.
//!
//! Runs [`Program`]s produced by [`crate::bytecode`] with a reusable
//! per-run arena: one [`BlockEngine`] holds every thread's register file,
//! local arrays and the block's shared-memory image, allocated once per
//! `run_*` call and reset per block. [`run_range`] executes a contiguous
//! block range serially (the same ascending order as the tree-walk oracle);
//! [`run_range_parallel`] chunks the range across scoped worker threads for
//! intra-node block parallelism.
//!
//! Parallel legality: CUDA guarantees no ordering between blocks, so any
//! interleaving of block execution is a valid GPU execution. Workers share
//! the node's global memory through [`RacyView`] raw-pointer views (the
//! CuPBoP block-to-thread contract: kernels that race on global memory on a
//! GPU race here too; kernels with disjoint per-block writes — the common,
//! Allgather-distributable case — are deterministic). Kernels that use
//! *global atomics* are refused by the chunker ([`Program::serial_only`])
//! and fall back to the serial path, since the simulator's atomics are not
//! host-atomic instructions.

use crate::bytecode::{BatchKind, Inst, MemSlotInfo, PhaseOp, Program, Reg, SlotKind};
use crate::interp::{
    apply_atomic, axis_of, binop_faults, eval_binop_total, eval_intrinsic, eval_unop, slice_load,
    slice_store, Arg, ExecError,
};
use crate::memory::{decode, encode, BufferId, MemPool};
use crate::stats::{intrinsic_weight, BlockStats};
use cucc_ir::{BinOp, Kernel, LaunchConfig, Scalar, Value, ValueKind};
use std::fmt;
use std::ops::Range;

/// Which executor runs functional-fidelity blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The tree-walking reference interpreter (`crate::interp`) — the
    /// differential-testing oracle.
    TreeWalk,
    /// The compiled bytecode engine (this module).
    #[default]
    Bytecode,
    /// The vectorized lane-array engine (`crate::lane`): inst-major over
    /// SoA lane chunks with superinstruction fusion for batchable segments,
    /// scalar fallback otherwise.
    Simd,
}

impl EngineKind {
    /// Parse a CLI spelling (`tree` / `bytecode` / `simd`).
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s {
            "tree" | "tree-walk" | "treewalk" | "interp" => Some(EngineKind::TreeWalk),
            "bytecode" | "byte" | "engine" => Some(EngineKind::Bytecode),
            "simd" | "vec" | "vector" | "vectorized" | "lanes" => Some(EngineKind::Simd),
            _ => None,
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineKind::TreeWalk => write!(f, "tree"),
            EngineKind::Bytecode => write!(f, "bytecode"),
            EngineKind::Simd => write!(f, "simd"),
        }
    }
}

/// Execution knobs threaded from `RuntimeConfig` / the CLI down to the
/// per-node block loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecOptions {
    /// Which executor to use.
    pub engine: EngineKind,
    /// Requested worker threads per node for intra-node block parallelism
    /// (`0` = derive from host parallelism and the node's core count).
    pub node_threads: usize,
    /// Whether intra-node block parallelism is allowed at all. Callers
    /// enable this only for launches whose blocks are safe to interleave
    /// (e.g. Allgather-distributable three-phase plans).
    pub block_parallel: bool,
}

/// Global-memory access abstraction: the serial path writes straight into a
/// node's [`MemPool`], parallel workers go through a [`RacyView`].
pub(crate) trait GlobalMem {
    fn size_of(&self, id: BufferId) -> usize;
    fn load(&self, id: BufferId, elem: Scalar, index: i64) -> Option<Value>;
    fn store(&mut self, id: BufferId, elem: Scalar, index: i64, value: Value) -> bool;
    /// Resolve a buffer to its raw base pointer and byte length, so the
    /// inst-major loops pay the lookup once per instruction instead of once
    /// per thread. All accesses through the pointer go via [`raw_load`] /
    /// [`raw_store`], which bounds-check every element and copy at most 8
    /// bytes — no `&`/`&mut` reference into the buffer is ever formed
    /// (the [`RacyView`] sharing contract).
    fn raw(&mut self, id: BufferId) -> (*mut u8, usize);
}

impl GlobalMem for MemPool {
    #[inline]
    fn size_of(&self, id: BufferId) -> usize {
        MemPool::size_of(self, id)
    }

    #[inline]
    fn load(&self, id: BufferId, elem: Scalar, index: i64) -> Option<Value> {
        MemPool::load(self, id, elem, index)
    }

    #[inline]
    fn store(&mut self, id: BufferId, elem: Scalar, index: i64, value: Value) -> bool {
        MemPool::store(self, id, elem, index, value)
    }

    #[inline]
    fn raw(&mut self, id: BufferId) -> (*mut u8, usize) {
        let b = self.bytes_mut(id);
        (b.as_mut_ptr(), b.len())
    }
}

/// Raw-pointer view of a pool's buffers, shared by intra-node workers.
///
/// Bounds are always checked; what is *not* synchronized is concurrent
/// access to the same element from different blocks. That mirrors the GPU:
/// a CUDA kernel whose blocks race on global memory has indeterminate
/// results there too, so any byte-level interleaving we produce is a valid
/// execution of such a kernel. Accesses copy at most 8 bytes through raw
/// pointers and never form `&`/`&mut` references into the shared buffers.
#[derive(Clone)]
pub(crate) struct RacyView {
    bufs: Vec<(*mut u8, usize)>,
}

// SAFETY: the view only exists while `run_range_parallel` holds `&mut
// MemPool`, so the pointed-to allocations are alive and not accessed
// through the pool for the whole scope; all accesses are bounds-checked
// byte copies (see type-level comment for the data-race contract).
unsafe impl Send for RacyView {}

impl RacyView {
    pub(crate) fn new(pool: &mut MemPool) -> RacyView {
        let bufs = (0..pool.len())
            .map(|i| {
                let b = pool.bytes_mut(BufferId(i as u32));
                (b.as_mut_ptr(), b.len())
            })
            .collect();
        RacyView { bufs }
    }
}

impl GlobalMem for RacyView {
    fn size_of(&self, id: BufferId) -> usize {
        self.bufs[id.index()].1
    }

    fn load(&self, id: BufferId, elem: Scalar, index: i64) -> Option<Value> {
        let (ptr, len) = self.bufs[id.index()];
        raw_load(ptr, len, elem, index)
    }

    fn store(&mut self, id: BufferId, elem: Scalar, index: i64, value: Value) -> bool {
        let (ptr, len) = self.bufs[id.index()];
        raw_store(ptr, len, elem, index, value)
    }

    #[inline]
    fn raw(&mut self, id: BufferId) -> (*mut u8, usize) {
        self.bufs[id.index()]
    }
}

/// Bounds-checked element load through a raw `(base, len)` buffer view.
///
/// SAFETY contract (callers): `ptr` must be valid for `len` bytes for the
/// duration of the call — guaranteed by both [`GlobalMem::raw`] providers.
/// The copy stays within `off + size <= len`, checked below.
#[inline]
pub(crate) fn raw_load(ptr: *const u8, len: usize, elem: Scalar, index: i64) -> Option<Value> {
    let sz = elem.size();
    if index < 0 {
        return None;
    }
    let off = (index as usize).checked_mul(sz)?;
    if off.checked_add(sz)? > len {
        return None;
    }
    let mut tmp = [0u8; 8];
    // SAFETY: `off + sz <= len` was just checked; see the function contract.
    unsafe {
        std::ptr::copy_nonoverlapping(ptr.add(off), tmp.as_mut_ptr(), sz);
    }
    Some(decode(elem, &tmp[..sz]))
}

/// Bounds-checked element store through a raw `(base, len)` buffer view;
/// same SAFETY contract as [`raw_load`].
#[inline]
pub(crate) fn raw_store(ptr: *mut u8, len: usize, elem: Scalar, index: i64, value: Value) -> bool {
    let sz = elem.size();
    if index < 0 {
        return false;
    }
    let Some(off) = (index as usize).checked_mul(sz) else {
        return false;
    };
    let Some(end) = off.checked_add(sz) else {
        return false;
    };
    if end > len {
        return false;
    }
    let mut tmp = [0u8; 8];
    encode(elem, value, &mut tmp[..sz]);
    // SAFETY: bounds checked above; see the function contract.
    unsafe {
        std::ptr::copy_nonoverlapping(tmp.as_ptr(), ptr.add(off), sz);
    }
    true
}

/// Certificate-elided counterpart of [`raw_load`]: no bounds check.
///
/// SAFETY: in addition to the `(ptr, len)` view contract of [`raw_load`],
/// the caller must guarantee `index * size .. + size` lies within `len` —
/// exactly what a [`crate::bytecode::CertMode::Elide`] certificate asserts
/// for the access. A wrong certificate is UB here in release builds; debug
/// builds still catch it via `debug_assert!`.
#[inline]
pub(crate) unsafe fn raw_load_unchecked(
    ptr: *const u8,
    len: usize,
    elem: Scalar,
    index: i64,
) -> Value {
    let sz = elem.size();
    debug_assert!(
        index >= 0 && (index as usize) * sz + sz <= len,
        "bounds certificate violated: index {index}, len {len} bytes"
    );
    let off = index as usize * sz;
    let mut tmp = [0u8; 8];
    std::ptr::copy_nonoverlapping(ptr.add(off), tmp.as_mut_ptr(), sz);
    decode(elem, &tmp[..sz])
}

/// Certificate-elided counterpart of [`raw_store`]; same SAFETY contract as
/// [`raw_load_unchecked`].
#[inline]
pub(crate) unsafe fn raw_store_unchecked(
    ptr: *mut u8,
    len: usize,
    elem: Scalar,
    index: i64,
    value: Value,
) {
    let sz = elem.size();
    debug_assert!(
        index >= 0 && (index as usize) * sz + sz <= len,
        "bounds certificate violated: index {index}, len {len} bytes"
    );
    let off = index as usize * sz;
    let mut tmp = [0u8; 8];
    encode(elem, value, &mut tmp[..sz]);
    std::ptr::copy_nonoverlapping(tmp.as_ptr(), ptr.add(off), sz);
}

/// Reusable per-run execution state for one block at a time: every thread's
/// registers and local arrays plus the block's shared-memory image.
/// Allocated once per `run_*` call, reset per block.
pub(crate) struct BlockEngine<'p> {
    prog: &'p Program,
    nthreads: usize,
    num_regs: usize,
    num_locals: usize,
    /// Thread-major register file: thread `t`'s registers live at
    /// `t * num_regs ..`.
    regs: Vec<Value>,
    returned: Vec<bool>,
    /// Per-thread resume targets for inst-major (batched) segments: thread
    /// `t` executes the instruction at `pc` iff `resume[t] <= pc`, forward
    /// jumps raise the target, `u32::MAX` retires the thread. Re-seeded at
    /// the top of every batched segment.
    resume: Vec<u32>,
    tids: Vec<(u32, u32, u32)>,
    shared: Vec<Vec<u8>>,
    /// Thread-major local arrays: `locals[t * num_locals + l]`.
    locals: Vec<Vec<u8>>,
    block: (u32, u32, u32),
    stats: BlockStats,
}

impl<'p> BlockEngine<'p> {
    pub(crate) fn new(prog: &'p Program) -> BlockEngine<'p> {
        let nthreads = prog.launch.threads_per_block() as usize;
        let num_regs = prog.num_regs as usize;
        let num_locals = prog.local_sizes.len();
        // Launch-invariant constants and threadIdx values are splatted into
        // every thread's register window once; nothing writes them and
        // `reset` skips them, so they survive across all blocks of the run.
        let tids: Vec<(u32, u32, u32)> = (0..nthreads)
            .map(|t| prog.launch.block.delinearize(t as u64))
            .collect();
        let mut regs = vec![Value::I64(0); nthreads * num_regs];
        let base = prog.const_base as usize;
        let tid_base = base + prog.const_pool.len();
        for (t, tid) in tids.iter().enumerate() {
            let w = t * num_regs;
            regs[w + base..w + tid_base].copy_from_slice(&prog.const_pool);
            for (k, axis) in prog.tid_pool.iter().enumerate() {
                regs[w + tid_base + k] = Value::I64(axis_of(*tid, *axis) as i64);
            }
        }
        BlockEngine {
            prog,
            nthreads,
            num_regs,
            num_locals,
            regs,
            returned: vec![false; nthreads],
            resume: vec![0; nthreads],
            tids,
            shared: prog.shared_sizes.iter().map(|&sz| vec![0u8; sz]).collect(),
            locals: (0..nthreads)
                .flat_map(|_| prog.local_sizes.iter().map(|&sz| vec![0u8; sz]))
                .collect(),
            block: (0, 0, 0),
            stats: BlockStats::default(),
        }
    }

    fn reset(&mut self) {
        // Only the leading variable registers carry cross-statement state;
        // temporaries are always written before read, so stale values from
        // the previous block are unobservable and need no clearing.
        let nv = self.prog.num_vars as usize;
        for t in 0..self.nthreads {
            let base = t * self.num_regs;
            self.regs[base..base + nv].fill(Value::I64(0));
        }
        self.returned.fill(false);
        for s in &mut self.shared {
            s.fill(0);
        }
        for l in &mut self.locals {
            l.fill(0);
        }
    }

    #[inline]
    fn reg(&self, t: usize, r: Reg) -> Value {
        self.regs[t * self.num_regs + r as usize]
    }

    /// Broadcast a uniform loop variable to every thread's register file.
    fn set_var_all(&mut self, r: Reg, v: Value) {
        for t in 0..self.nthreads {
            self.regs[t * self.num_regs + r as usize] = v;
        }
    }

    /// Execute one block and return its statistics. Global-memory effects
    /// land in `mem`.
    pub(crate) fn run_block<M: GlobalMem>(
        &mut self,
        mem: &mut M,
        block_linear: u64,
    ) -> Result<BlockStats, ExecError> {
        self.reset();
        self.block = self.prog.launch.grid.delinearize(block_linear);
        self.stats = BlockStats {
            blocks: 1,
            active_threads: self.nthreads as u64,
            ..BlockStats::default()
        };
        let prog = self.prog;
        self.exec_ops(&prog.phases, mem)?;
        Ok(self.stats)
    }

    fn exec_ops<M: GlobalMem>(&mut self, ops: &[PhaseOp], mem: &mut M) -> Result<(), ExecError> {
        for op in ops {
            match op {
                PhaseOp::Seg {
                    start, end, batch, ..
                } => {
                    if *batch != BatchKind::No && self.nthreads > 1 {
                        // Dense mode additionally needs every thread live:
                        // an earlier `return` forces predication.
                        let dense = *batch == BatchKind::Dense && !self.returned.iter().any(|&r| r);
                        self.seg_batched(*start, *end, dense, mem)?;
                    } else {
                        for t in 0..self.nthreads {
                            if !self.returned[t] {
                                self.seg(t, *start, *end, mem)?;
                            }
                        }
                    }
                }
                PhaseOp::Barrier => {
                    self.stats.barriers += 1;
                }
                PhaseOp::UniformFor {
                    var,
                    bounds,
                    sreg,
                    ereg,
                    streg,
                    body,
                } => {
                    // Bounds evaluate once, on thread 0 (oracle semantics).
                    self.seg(0, bounds.0, bounds.1, mem)?;
                    let s = self.reg(0, *sreg).as_i64();
                    let e = self.reg(0, *ereg).as_i64();
                    let st = self.reg(0, *streg).as_i64();
                    if st == 0 {
                        return Err(ExecError::DivergentBarrier);
                    }
                    let mut v = s;
                    while (st > 0 && v < e) || (st < 0 && v > e) {
                        self.set_var_all(*var, Value::I64(v));
                        self.exec_ops(body, mem)?;
                        v += st;
                    }
                    self.set_var_all(*var, Value::I64(v));
                }
                PhaseOp::UniformIf {
                    cond,
                    creg,
                    then_ops,
                    else_ops,
                } => {
                    self.seg(0, cond.0, cond.1, mem)?;
                    let taken = self.reg(0, *creg).is_true();
                    self.exec_ops(if taken { then_ops } else { else_ops }, mem)?;
                }
            }
        }
        Ok(())
    }

    /// Dispatch one thread's segment with that thread's register and
    /// local-array windows split out of the arena, so the hot loop in
    /// [`run_seg`] indexes small disjoint slices instead of recomputing
    /// thread-major offsets through `&mut self` on every access.
    #[inline]
    fn seg<M: GlobalMem>(
        &mut self,
        t: usize,
        start: u32,
        end: u32,
        mem: &mut M,
    ) -> Result<(), ExecError> {
        let nr = self.num_regs;
        let nl = self.num_locals;
        run_seg(
            self.prog,
            &mut self.regs[t * nr..(t + 1) * nr],
            &mut self.shared,
            &mut self.locals[t * nl..(t + 1) * nl],
            &mut self.returned[t],
            &mut self.stats,
            self.block,
            self.tids[t],
            start,
            end,
            mem,
        )
    }

    /// Inst-major execution of a segment `seg_batchable` proved safe: one
    /// dispatch per *instruction*, inner loop over the block's threads —
    /// amortizing the dispatch cost `threads_per_block`-fold relative to
    /// the thread-major [`run_seg`] loop.
    ///
    /// Divergence is predication: a forward jump raises the thread's
    /// `resume` target and the thread sits out instructions until `pc`
    /// catches up; `Return` retires it. Equivalence with the thread-major
    /// order follows from `seg_batchable`'s hazard rules (loads only see
    /// segment-entry state, one store site per slot, commuting atomics)
    /// plus two observations: per-thread private state goes through the
    /// identical instruction sequence either way, and `BlockStats` are
    /// order-independent sums of identical per-thread charges.
    ///
    /// Faults: the oracle reports the *lowest* faulting thread (threads are
    /// its outer loop). A faulting thread here retires itself and every
    /// thread above it — the oracle never runs those — while lower threads
    /// continue and may overwrite `pending` with a fault the oracle hits
    /// first. Partial memory effects on the error path may differ from the
    /// oracle's; both engines leave them unspecified on `Err`.
    fn seg_batched<M: GlobalMem>(
        &mut self,
        start: u32,
        end: u32,
        mut dense: bool,
        mem: &mut M,
    ) -> Result<(), ExecError> {
        const DEAD: u32 = u32::MAX;
        let n = self.nthreads;
        let n64 = n as u64;
        let nr = self.num_regs;
        let nl = self.num_locals;
        let prog = self.prog;
        let code = &prog.code;
        let (emask, vmask) = prog.cert_masks();
        if !dense {
            for t in 0..n {
                self.resume[t] = if self.returned[t] { DEAD } else { start };
            }
        }
        let mut pending: Option<ExecError> = None;
        let end = end as usize;
        let mut pc = start as usize;
        while pc < end {
            if dense {
                // Straight-line segment with every thread live: iterate the
                // per-thread register windows directly — no predication
                // check, no thread-offset arithmetic in the loop body. A
                // fault demotes the rest of the segment to the predicated
                // path (lower threads stay live; the faulting thread and
                // everything above retire, see `demote`).
                let mut fault: Option<(usize, ExecError)> = None;
                match &code[pc] {
                    Inst::Const {
                        dst,
                        v,
                        int_ops,
                        float_ops,
                    } => {
                        let d = *dst as usize;
                        for w in self.regs.chunks_exact_mut(nr) {
                            w[d] = *v;
                        }
                        self.stats.int_ops += n64 * u64::from(*int_ops);
                        self.stats.float_ops += n64 * u64::from(*float_ops);
                    }
                    Inst::Tid { dst, axis } => {
                        let d = *dst as usize;
                        for (w, tid) in self.regs.chunks_exact_mut(nr).zip(&self.tids) {
                            w[d] = Value::I64(axis_of(*tid, *axis) as i64);
                        }
                    }
                    Inst::Bid { dst, axis } => {
                        let d = *dst as usize;
                        let v = Value::I64(axis_of(self.block, *axis) as i64);
                        for w in self.regs.chunks_exact_mut(nr) {
                            w[d] = v;
                        }
                    }
                    Inst::Copy { dst, src } => {
                        let (d, s) = (*dst as usize, *src as usize);
                        for w in self.regs.chunks_exact_mut(nr) {
                            w[d] = w[s];
                        }
                    }
                    Inst::Unary { dst, op, src } => {
                        let (d, s) = (*dst as usize, *src as usize);
                        let (mut iops, mut fops) = (0u64, 0u64);
                        for w in self.regs.chunks_exact_mut(nr) {
                            let a = w[s];
                            match a.kind() {
                                ValueKind::Int => iops += 1,
                                ValueKind::Float => fops += 1,
                            }
                            w[d] = eval_unop(*op, a);
                        }
                        self.stats.int_ops += iops;
                        self.stats.float_ops += fops;
                    }
                    Inst::Binary { dst, op, lhs, rhs } => {
                        let (d, li, ri) = (*dst as usize, *lhs as usize, *rhs as usize);
                        let (mut iops, mut fops) = (0u64, 0u64);
                        for (t, w) in self.regs.chunks_exact_mut(nr).enumerate() {
                            let l = w[li];
                            let r = w[ri];
                            let float =
                                l.kind() == ValueKind::Float || r.kind() == ValueKind::Float;
                            if float {
                                fops += 1;
                            } else {
                                iops += 1;
                            }
                            if binop_faults(*op, r, float) {
                                fault = Some((t, ExecError::DivByZero));
                                break;
                            }
                            w[d] = eval_binop_total(*op, l, r, float);
                        }
                        self.stats.int_ops += iops;
                        self.stats.float_ops += fops;
                    }
                    Inst::MulAdd { dst, a, b, c } => {
                        let (d, ai, bi, ci) =
                            (*dst as usize, *a as usize, *b as usize, *c as usize);
                        let (mut iops, mut fops) = (0u64, 0u64);
                        for w in self.regs.chunks_exact_mut(nr) {
                            let (av, bv, cv) = (w[ai], w[bi], w[ci]);
                            let f1 = av.kind() == ValueKind::Float || bv.kind() == ValueKind::Float;
                            let m = eval_binop_total(BinOp::Mul, av, bv, f1);
                            let f2 = m.kind() == ValueKind::Float || cv.kind() == ValueKind::Float;
                            iops += u64::from(!f1) + u64::from(!f2);
                            fops += u64::from(f1) + u64::from(f2);
                            w[d] = eval_binop_total(BinOp::Add, m, cv, f2);
                        }
                        self.stats.int_ops += iops;
                        self.stats.float_ops += fops;
                    }
                    Inst::Cast { dst, ty, src } => {
                        let (d, s) = (*dst as usize, *src as usize);
                        for w in self.regs.chunks_exact_mut(nr) {
                            w[d] = w[s].convert_to(*ty);
                        }
                        match ty.kind() {
                            ValueKind::Int => self.stats.int_ops += n64,
                            ValueKind::Float => self.stats.float_ops += n64,
                        }
                    }
                    Inst::Intrin1 { dst, f, a } => {
                        let (d, ai) = (*dst as usize, *a as usize);
                        for w in self.regs.chunks_exact_mut(nr) {
                            let av = w[ai];
                            w[d] = eval_intrinsic(*f, &[av]);
                        }
                        self.stats.float_ops += n64 * intrinsic_weight(*f);
                    }
                    Inst::Intrin2 { dst, f, a, b } => {
                        let (d, ai, bi) = (*dst as usize, *a as usize, *b as usize);
                        for w in self.regs.chunks_exact_mut(nr) {
                            let (av, bv) = (w[ai], w[bi]);
                            w[d] = eval_intrinsic(*f, &[av, bv]);
                        }
                        self.stats.float_ops += n64 * intrinsic_weight(*f);
                    }
                    Inst::Test { dst, src } => {
                        let (d, s) = (*dst as usize, *src as usize);
                        for w in self.regs.chunks_exact_mut(nr) {
                            w[d] = Value::I64(i64::from(w[s].is_true()));
                        }
                    }
                    Inst::Load { dst, slot, idx } => {
                        let info = slot_info(prog, *slot);
                        let (d, ix) = (*dst as usize, *idx as usize);
                        let sz = info.elem.size() as u64;
                        let certv = vmask.is_some_and(|m| m[pc]);
                        match info.kind {
                            SlotKind::Global { buf } => {
                                let (ptr, len) = mem.raw(buf);
                                if emask.is_some_and(|m| m[pc]) {
                                    for w in self.regs.chunks_exact_mut(nr) {
                                        let index = w[ix].as_i64();
                                        // SAFETY: this pc carries an
                                        // in-bounds certificate for every
                                        // thread (CertMode::Elide).
                                        w[d] = unsafe {
                                            raw_load_unchecked(ptr, len, info.elem, index)
                                        };
                                    }
                                } else {
                                    for (t, w) in self.regs.chunks_exact_mut(nr).enumerate() {
                                        let index = w[ix].as_i64();
                                        match raw_load(ptr, len, info.elem, index) {
                                            Some(v) => w[d] = v,
                                            None => {
                                                fault = Some((
                                                    t,
                                                    cert_wrap(oob(info, index, mem), certv),
                                                ));
                                                break;
                                            }
                                        }
                                    }
                                }
                                self.stats.global_read_bytes += n64 * sz;
                                self.stats.global_loads += n64;
                            }
                            SlotKind::Shared { idx: si } => {
                                let sh = &self.shared[si as usize];
                                for (t, w) in self.regs.chunks_exact_mut(nr).enumerate() {
                                    let index = w[ix].as_i64();
                                    match slice_load(sh, info.elem, index) {
                                        Some(v) => w[d] = v,
                                        None => {
                                            fault =
                                                Some((t, cert_wrap(oob(info, index, mem), certv)));
                                            break;
                                        }
                                    }
                                }
                                self.stats.shared_bytes += n64 * sz;
                            }
                            SlotKind::Local { idx: li } => {
                                let lanes = self.locals.chunks_exact(nl);
                                for (t, (w, lw)) in
                                    self.regs.chunks_exact_mut(nr).zip(lanes).enumerate()
                                {
                                    let index = w[ix].as_i64();
                                    match slice_load(&lw[li as usize], info.elem, index) {
                                        Some(v) => w[d] = v,
                                        None => {
                                            fault =
                                                Some((t, cert_wrap(oob(info, index, mem), certv)));
                                            break;
                                        }
                                    }
                                }
                                self.stats.local_bytes += n64 * sz;
                            }
                        }
                        self.stats.int_ops += n64; // address computation
                    }
                    Inst::Store { slot, idx, val } => {
                        let info = slot_info(prog, *slot);
                        let (ix, vi) = (*idx as usize, *val as usize);
                        let sz = info.elem.size() as u64;
                        let certv = vmask.is_some_and(|m| m[pc]);
                        match info.kind {
                            SlotKind::Global { buf } => {
                                let (ptr, len) = mem.raw(buf);
                                if emask.is_some_and(|m| m[pc]) {
                                    for w in self.regs.chunks_exact(nr) {
                                        let index = w[ix].as_i64();
                                        // SAFETY: certified in-bounds for
                                        // every thread (CertMode::Elide).
                                        unsafe {
                                            raw_store_unchecked(ptr, len, info.elem, index, w[vi]);
                                        }
                                    }
                                } else {
                                    for (t, w) in self.regs.chunks_exact(nr).enumerate() {
                                        let index = w[ix].as_i64();
                                        if !raw_store(ptr, len, info.elem, index, w[vi]) {
                                            fault =
                                                Some((t, cert_wrap(oob(info, index, mem), certv)));
                                            break;
                                        }
                                    }
                                }
                                self.stats.global_write_bytes += n64 * sz;
                                self.stats.global_stores += n64;
                            }
                            SlotKind::Shared { idx: si } => {
                                let sh = &mut self.shared[si as usize];
                                for (t, w) in self.regs.chunks_exact(nr).enumerate() {
                                    let index = w[ix].as_i64();
                                    if !slice_store(sh, info.elem, index, w[vi]) {
                                        fault = Some((t, cert_wrap(oob(info, index, mem), certv)));
                                        break;
                                    }
                                }
                                self.stats.shared_bytes += n64 * sz;
                            }
                            SlotKind::Local { idx: li } => {
                                let lanes = self.locals.chunks_exact_mut(nl);
                                for (t, (w, lw)) in
                                    self.regs.chunks_exact(nr).zip(lanes).enumerate()
                                {
                                    let index = w[ix].as_i64();
                                    if !slice_store(&mut lw[li as usize], info.elem, index, w[vi]) {
                                        fault = Some((t, cert_wrap(oob(info, index, mem), certv)));
                                        break;
                                    }
                                }
                                self.stats.local_bytes += n64 * sz;
                            }
                        }
                        self.stats.int_ops += n64; // address computation
                    }
                    Inst::AtomicRmw { op, slot, idx, val } => {
                        let info = slot_info(prog, *slot);
                        let (ix, vi) = (*idx as usize, *val as usize);
                        let sz = info.elem.size() as u64;
                        let certv = vmask.is_some_and(|m| m[pc]);
                        match info.kind {
                            SlotKind::Global { buf } => {
                                let (ptr, len) = mem.raw(buf);
                                for (t, w) in self.regs.chunks_exact(nr).enumerate() {
                                    let index = w[ix].as_i64();
                                    let done =
                                        raw_load(ptr, len, info.elem, index).is_some_and(|old| {
                                            raw_store(
                                                ptr,
                                                len,
                                                info.elem,
                                                index,
                                                apply_atomic(*op, old, w[vi]),
                                            )
                                        });
                                    if !done {
                                        fault = Some((t, cert_wrap(oob(info, index, mem), certv)));
                                        break;
                                    }
                                }
                                self.stats.global_read_bytes += n64 * sz;
                                self.stats.global_loads += n64;
                                self.stats.global_write_bytes += n64 * sz;
                                self.stats.global_stores += n64;
                                self.stats.global_atomics += n64;
                            }
                            SlotKind::Shared { idx: si } => {
                                let sh = &mut self.shared[si as usize];
                                for (t, w) in self.regs.chunks_exact(nr).enumerate() {
                                    let index = w[ix].as_i64();
                                    let done =
                                        slice_load(sh, info.elem, index).is_some_and(|old| {
                                            slice_store(
                                                sh,
                                                info.elem,
                                                index,
                                                apply_atomic(*op, old, w[vi]),
                                            )
                                        });
                                    if !done {
                                        fault = Some((t, cert_wrap(oob(info, index, mem), certv)));
                                        break;
                                    }
                                }
                                self.stats.shared_bytes += 2 * n64 * sz;
                            }
                            SlotKind::Local { idx: li } => {
                                let lanes = self.locals.chunks_exact_mut(nl);
                                for (t, (w, lw)) in
                                    self.regs.chunks_exact(nr).zip(lanes).enumerate()
                                {
                                    let index = w[ix].as_i64();
                                    let l = &mut lw[li as usize];
                                    let done = slice_load(l, info.elem, index).is_some_and(|old| {
                                        slice_store(
                                            l,
                                            info.elem,
                                            index,
                                            apply_atomic(*op, old, w[vi]),
                                        )
                                    });
                                    if !done {
                                        fault = Some((t, cert_wrap(oob(info, index, mem), certv)));
                                        break;
                                    }
                                }
                                self.stats.local_bytes += 2 * n64 * sz;
                            }
                        }
                        // One address computation each for the load and the
                        // store half, as in the thread-major path.
                        self.stats.int_ops += 2 * n64;
                    }
                    Inst::Jump { .. }
                    | Inst::JumpIfFalse { .. }
                    | Inst::JumpIfTrue { .. }
                    | Inst::ForInit { .. }
                    | Inst::ForNext { .. }
                    | Inst::Return => {
                        unreachable!("dense segments are straight-line")
                    }
                }
                if let Some((t, e)) = fault {
                    demote(&mut self.resume, t, e, &mut pending);
                    dense = false;
                }
                pc += 1;
                continue;
            }
            let pcu = pc as u32;
            match &code[pc] {
                Inst::Const {
                    dst,
                    v,
                    int_ops,
                    float_ops,
                } => {
                    let d = *dst as usize;
                    let mut cnt = 0u64;
                    for t in 0..n {
                        if self.resume[t] <= pcu {
                            self.regs[t * nr + d] = *v;
                            cnt += 1;
                        }
                    }
                    self.stats.int_ops += cnt * u64::from(*int_ops);
                    self.stats.float_ops += cnt * u64::from(*float_ops);
                }
                Inst::Tid { dst, axis } => {
                    let d = *dst as usize;
                    for t in 0..n {
                        if self.resume[t] <= pcu {
                            self.regs[t * nr + d] = Value::I64(axis_of(self.tids[t], *axis) as i64);
                        }
                    }
                }
                Inst::Bid { dst, axis } => {
                    let d = *dst as usize;
                    let v = Value::I64(axis_of(self.block, *axis) as i64);
                    for t in 0..n {
                        if self.resume[t] <= pcu {
                            self.regs[t * nr + d] = v;
                        }
                    }
                }
                Inst::Copy { dst, src } => {
                    let (d, s) = (*dst as usize, *src as usize);
                    for t in 0..n {
                        if self.resume[t] <= pcu {
                            self.regs[t * nr + d] = self.regs[t * nr + s];
                        }
                    }
                }
                Inst::Unary { dst, op, src } => {
                    let (d, s) = (*dst as usize, *src as usize);
                    let (mut iops, mut fops) = (0u64, 0u64);
                    for t in 0..n {
                        if self.resume[t] <= pcu {
                            let a = self.regs[t * nr + s];
                            match a.kind() {
                                ValueKind::Int => iops += 1,
                                ValueKind::Float => fops += 1,
                            }
                            self.regs[t * nr + d] = eval_unop(*op, a);
                        }
                    }
                    self.stats.int_ops += iops;
                    self.stats.float_ops += fops;
                }
                Inst::Binary { dst, op, lhs, rhs } => {
                    let (d, li, ri) = (*dst as usize, *lhs as usize, *rhs as usize);
                    let (mut iops, mut fops) = (0u64, 0u64);
                    for t in 0..n {
                        if self.resume[t] <= pcu {
                            let base = t * nr;
                            let l = self.regs[base + li];
                            let r = self.regs[base + ri];
                            let float =
                                l.kind() == ValueKind::Float || r.kind() == ValueKind::Float;
                            if float {
                                fops += 1;
                            } else {
                                iops += 1;
                            }
                            if binop_faults(*op, r, float) {
                                retire_from(
                                    &mut self.resume,
                                    t,
                                    ExecError::DivByZero,
                                    &mut pending,
                                );
                                break;
                            }
                            self.regs[base + d] = eval_binop_total(*op, l, r, float);
                        }
                    }
                    self.stats.int_ops += iops;
                    self.stats.float_ops += fops;
                }
                Inst::MulAdd { dst, a, b, c } => {
                    let (d, ai, bi, ci) = (*dst as usize, *a as usize, *b as usize, *c as usize);
                    let (mut iops, mut fops) = (0u64, 0u64);
                    for t in 0..n {
                        if self.resume[t] <= pcu {
                            let base = t * nr;
                            let (av, bv, cv) = (
                                self.regs[base + ai],
                                self.regs[base + bi],
                                self.regs[base + ci],
                            );
                            let f1 = av.kind() == ValueKind::Float || bv.kind() == ValueKind::Float;
                            let m = eval_binop_total(BinOp::Mul, av, bv, f1);
                            let f2 = m.kind() == ValueKind::Float || cv.kind() == ValueKind::Float;
                            iops += u64::from(!f1) + u64::from(!f2);
                            fops += u64::from(f1) + u64::from(f2);
                            self.regs[base + d] = eval_binop_total(BinOp::Add, m, cv, f2);
                        }
                    }
                    self.stats.int_ops += iops;
                    self.stats.float_ops += fops;
                }
                Inst::Cast { dst, ty, src } => {
                    let (d, s) = (*dst as usize, *src as usize);
                    let mut cnt = 0u64;
                    for t in 0..n {
                        if self.resume[t] <= pcu {
                            let v = self.regs[t * nr + s];
                            cnt += 1;
                            self.regs[t * nr + d] = v.convert_to(*ty);
                        }
                    }
                    match ty.kind() {
                        ValueKind::Int => self.stats.int_ops += cnt,
                        ValueKind::Float => self.stats.float_ops += cnt,
                    }
                }
                Inst::Intrin1 { dst, f, a } => {
                    let (d, ai) = (*dst as usize, *a as usize);
                    let w = intrinsic_weight(*f);
                    let mut cnt = 0u64;
                    for t in 0..n {
                        if self.resume[t] <= pcu {
                            let av = self.regs[t * nr + ai];
                            cnt += 1;
                            self.regs[t * nr + d] = eval_intrinsic(*f, &[av]);
                        }
                    }
                    self.stats.float_ops += cnt * w;
                }
                Inst::Intrin2 { dst, f, a, b } => {
                    let (d, ai, bi) = (*dst as usize, *a as usize, *b as usize);
                    let w = intrinsic_weight(*f);
                    let mut cnt = 0u64;
                    for t in 0..n {
                        if self.resume[t] <= pcu {
                            let base = t * nr;
                            let av = self.regs[base + ai];
                            let bv = self.regs[base + bi];
                            cnt += 1;
                            self.regs[base + d] = eval_intrinsic(*f, &[av, bv]);
                        }
                    }
                    self.stats.float_ops += cnt * w;
                }
                Inst::Test { dst, src } => {
                    let (d, s) = (*dst as usize, *src as usize);
                    for t in 0..n {
                        if self.resume[t] <= pcu {
                            self.regs[t * nr + d] =
                                Value::I64(i64::from(self.regs[t * nr + s].is_true()));
                        }
                    }
                }
                // Memory instructions hoist the slot-kind dispatch out of
                // the thread loop and charge stats in bulk (`cnt` successful
                // accesses; on a fault the partial charge is discarded with
                // the stats by the `Err` return anyway).
                Inst::Load { dst, slot, idx } => {
                    let info = slot_info(prog, *slot);
                    let (d, ix) = (*dst as usize, *idx as usize);
                    let sz = info.elem.size() as u64;
                    let certv = vmask.is_some_and(|m| m[pc]);
                    let mut cnt = 0u64;
                    match info.kind {
                        SlotKind::Global { buf } => {
                            let (ptr, len) = mem.raw(buf);
                            for t in 0..n {
                                if self.resume[t] <= pcu {
                                    let base = t * nr;
                                    let index = self.regs[base + ix].as_i64();
                                    match raw_load(ptr, len, info.elem, index) {
                                        Some(v) => {
                                            self.regs[base + d] = v;
                                            cnt += 1;
                                        }
                                        None => {
                                            let e = cert_wrap(oob(info, index, mem), certv);
                                            retire_from(&mut self.resume, t, e, &mut pending);
                                            break;
                                        }
                                    }
                                }
                            }
                            self.stats.global_read_bytes += cnt * sz;
                            self.stats.global_loads += cnt;
                        }
                        SlotKind::Shared { idx: si } => {
                            let sh = &self.shared[si as usize];
                            for t in 0..n {
                                if self.resume[t] <= pcu {
                                    let base = t * nr;
                                    let index = self.regs[base + ix].as_i64();
                                    match slice_load(sh, info.elem, index) {
                                        Some(v) => {
                                            self.regs[base + d] = v;
                                            cnt += 1;
                                        }
                                        None => {
                                            let e = cert_wrap(oob(info, index, mem), certv);
                                            retire_from(&mut self.resume, t, e, &mut pending);
                                            break;
                                        }
                                    }
                                }
                            }
                            self.stats.shared_bytes += cnt * sz;
                        }
                        SlotKind::Local { idx: li } => {
                            for t in 0..n {
                                if self.resume[t] <= pcu {
                                    let base = t * nr;
                                    let index = self.regs[base + ix].as_i64();
                                    let lslice = &self.locals[t * nl + li as usize];
                                    match slice_load(lslice, info.elem, index) {
                                        Some(v) => {
                                            self.regs[base + d] = v;
                                            cnt += 1;
                                        }
                                        None => {
                                            let e = cert_wrap(oob(info, index, mem), certv);
                                            retire_from(&mut self.resume, t, e, &mut pending);
                                            break;
                                        }
                                    }
                                }
                            }
                            self.stats.local_bytes += cnt * sz;
                        }
                    }
                    self.stats.int_ops += cnt; // address computation
                }
                Inst::Store { slot, idx, val } => {
                    let info = slot_info(prog, *slot);
                    let (ix, vi) = (*idx as usize, *val as usize);
                    let sz = info.elem.size() as u64;
                    let certv = vmask.is_some_and(|m| m[pc]);
                    let mut cnt = 0u64;
                    match info.kind {
                        SlotKind::Global { buf } => {
                            let (ptr, len) = mem.raw(buf);
                            for t in 0..n {
                                if self.resume[t] <= pcu {
                                    let base = t * nr;
                                    let index = self.regs[base + ix].as_i64();
                                    let v = self.regs[base + vi];
                                    if raw_store(ptr, len, info.elem, index, v) {
                                        cnt += 1;
                                    } else {
                                        let e = cert_wrap(oob(info, index, mem), certv);
                                        retire_from(&mut self.resume, t, e, &mut pending);
                                        break;
                                    }
                                }
                            }
                            self.stats.global_write_bytes += cnt * sz;
                            self.stats.global_stores += cnt;
                        }
                        SlotKind::Shared { idx: si } => {
                            let sh = &mut self.shared[si as usize];
                            for t in 0..n {
                                if self.resume[t] <= pcu {
                                    let base = t * nr;
                                    let index = self.regs[base + ix].as_i64();
                                    let v = self.regs[base + vi];
                                    if slice_store(sh, info.elem, index, v) {
                                        cnt += 1;
                                    } else {
                                        let e = cert_wrap(oob(info, index, mem), certv);
                                        retire_from(&mut self.resume, t, e, &mut pending);
                                        break;
                                    }
                                }
                            }
                            self.stats.shared_bytes += cnt * sz;
                        }
                        SlotKind::Local { idx: li } => {
                            for t in 0..n {
                                if self.resume[t] <= pcu {
                                    let base = t * nr;
                                    let index = self.regs[base + ix].as_i64();
                                    let v = self.regs[base + vi];
                                    let lslice = &mut self.locals[t * nl + li as usize];
                                    if slice_store(lslice, info.elem, index, v) {
                                        cnt += 1;
                                    } else {
                                        let e = cert_wrap(oob(info, index, mem), certv);
                                        retire_from(&mut self.resume, t, e, &mut pending);
                                        break;
                                    }
                                }
                            }
                            self.stats.local_bytes += cnt * sz;
                        }
                    }
                    self.stats.int_ops += cnt; // address computation
                }
                Inst::AtomicRmw { op, slot, idx, val } => {
                    let info = slot_info(prog, *slot);
                    let (ix, vi) = (*idx as usize, *val as usize);
                    let sz = info.elem.size() as u64;
                    let certv = vmask.is_some_and(|m| m[pc]);
                    let mut cnt = 0u64;
                    match info.kind {
                        SlotKind::Global { buf } => {
                            let (ptr, len) = mem.raw(buf);
                            for t in 0..n {
                                if self.resume[t] <= pcu {
                                    let base = t * nr;
                                    let index = self.regs[base + ix].as_i64();
                                    let v = self.regs[base + vi];
                                    let done =
                                        raw_load(ptr, len, info.elem, index).is_some_and(|old| {
                                            raw_store(
                                                ptr,
                                                len,
                                                info.elem,
                                                index,
                                                apply_atomic(*op, old, v),
                                            )
                                        });
                                    if done {
                                        cnt += 1;
                                    } else {
                                        let e = cert_wrap(oob(info, index, mem), certv);
                                        retire_from(&mut self.resume, t, e, &mut pending);
                                        break;
                                    }
                                }
                            }
                            self.stats.global_read_bytes += cnt * sz;
                            self.stats.global_loads += cnt;
                            self.stats.global_write_bytes += cnt * sz;
                            self.stats.global_stores += cnt;
                            self.stats.global_atomics += cnt;
                        }
                        SlotKind::Shared { idx: si } => {
                            let sh = &mut self.shared[si as usize];
                            for t in 0..n {
                                if self.resume[t] <= pcu {
                                    let base = t * nr;
                                    let index = self.regs[base + ix].as_i64();
                                    let v = self.regs[base + vi];
                                    let done =
                                        slice_load(sh, info.elem, index).is_some_and(|old| {
                                            slice_store(
                                                sh,
                                                info.elem,
                                                index,
                                                apply_atomic(*op, old, v),
                                            )
                                        });
                                    if done {
                                        cnt += 1;
                                    } else {
                                        let e = cert_wrap(oob(info, index, mem), certv);
                                        retire_from(&mut self.resume, t, e, &mut pending);
                                        break;
                                    }
                                }
                            }
                            self.stats.shared_bytes += 2 * cnt * sz;
                        }
                        SlotKind::Local { idx: li } => {
                            for t in 0..n {
                                if self.resume[t] <= pcu {
                                    let base = t * nr;
                                    let index = self.regs[base + ix].as_i64();
                                    let v = self.regs[base + vi];
                                    let lslice = &mut self.locals[t * nl + li as usize];
                                    let done =
                                        slice_load(lslice, info.elem, index).is_some_and(|old| {
                                            slice_store(
                                                lslice,
                                                info.elem,
                                                index,
                                                apply_atomic(*op, old, v),
                                            )
                                        });
                                    if done {
                                        cnt += 1;
                                    } else {
                                        let e = cert_wrap(oob(info, index, mem), certv);
                                        retire_from(&mut self.resume, t, e, &mut pending);
                                        break;
                                    }
                                }
                            }
                            self.stats.local_bytes += 2 * cnt * sz;
                        }
                    }
                    // One address computation each for the load and the
                    // store half, as in the thread-major path.
                    self.stats.int_ops += 2 * cnt;
                }
                Inst::Jump { target } => {
                    for t in 0..n {
                        if self.resume[t] <= pcu {
                            self.resume[t] = *target;
                        }
                    }
                }
                Inst::JumpIfFalse {
                    cond,
                    target,
                    int_ops,
                } => {
                    let c = *cond as usize;
                    let mut cnt = 0u64;
                    for t in 0..n {
                        if self.resume[t] <= pcu {
                            cnt += 1;
                            if !self.regs[t * nr + c].is_true() {
                                self.resume[t] = *target;
                            }
                        }
                    }
                    self.stats.int_ops += cnt * u64::from(*int_ops);
                }
                Inst::JumpIfTrue {
                    cond,
                    target,
                    int_ops,
                } => {
                    let c = *cond as usize;
                    let mut cnt = 0u64;
                    for t in 0..n {
                        if self.resume[t] <= pcu {
                            cnt += 1;
                            if self.regs[t * nr + c].is_true() {
                                self.resume[t] = *target;
                            }
                        }
                    }
                    self.stats.int_ops += cnt * u64::from(*int_ops);
                }
                Inst::ForInit { .. } | Inst::ForNext { .. } => {
                    unreachable!("loop instructions are never marked batchable")
                }
                Inst::Return => {
                    for t in 0..n {
                        if self.resume[t] <= pcu {
                            self.returned[t] = true;
                            self.resume[t] = DEAD;
                        }
                    }
                }
            }
            pc += 1;
        }
        match pending {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Fault handling for [`BlockEngine::seg_batched`]: retire the faulting
/// thread and everything above it (the thread-major oracle never runs
/// those), record the error. Lower threads keep running — any later fault
/// of theirs is *earlier* in oracle order and overwrites `pending`.
#[cold]
fn retire_from(resume: &mut [u32], t: usize, e: ExecError, pending: &mut Option<ExecError>) {
    for r in &mut resume[t..] {
        *r = u32::MAX;
    }
    *pending = Some(e);
}

/// Leave dense mode after a fault: `resume` holds stale values (dense
/// execution never touches it), so seed every lower thread as runnable —
/// they already executed the faulting instruction — before retiring the
/// faulting thread and everything above it.
#[cold]
fn demote(resume: &mut [u32], t: usize, e: ExecError, pending: &mut Option<ExecError>) {
    for r in &mut resume[..t] {
        *r = 0;
    }
    retire_from(resume, t, e, pending);
}

#[inline]
pub(crate) fn count_op(stats: &mut BlockStats, kind: ValueKind) {
    match kind {
        ValueKind::Int => stats.int_ops += 1,
        ValueKind::Float => stats.float_ops += 1,
    }
}

#[inline]
pub(crate) fn slot_info(prog: &Program, slot: u32) -> &MemSlotInfo {
    prog.slots[slot as usize]
        .as_ref()
        .expect("referenced slot is resolved at compile time")
}

pub(crate) fn oob(info: &MemSlotInfo, index: i64, mem: &dyn GlobalMem) -> ExecError {
    let len_elems = match info.kind {
        SlotKind::Global { buf } => mem.size_of(buf) / info.elem.size(),
        SlotKind::Shared { .. } | SlotKind::Local { .. } => info.len_elems,
    };
    ExecError::OutOfBounds {
        mem: info.name.clone(),
        index,
        len_elems,
    }
}

/// Escalate a bounds fault on a *certified* access into
/// [`ExecError::CertificateViolation`] ([`crate::bytecode::CertMode::Validate`]:
/// the checked path ran and disagreed with the static proof, so the
/// certificate itself is wrong). Every other error passes through.
#[inline]
pub(crate) fn cert_wrap(e: ExecError, certified: bool) -> ExecError {
    match e {
        ExecError::OutOfBounds {
            mem,
            index,
            len_elems,
        } if certified => ExecError::CertificateViolation {
            mem,
            index,
            len_elems,
        },
        e => e,
    }
}

#[inline]
pub(crate) fn load_value<M: GlobalMem>(
    info: &MemSlotInfo,
    shared: &[Vec<u8>],
    local: &[Vec<u8>],
    stats: &mut BlockStats,
    index: i64,
    mem: &M,
) -> Result<Value, ExecError> {
    let sz = info.elem.size() as u64;
    stats.int_ops += 1; // address computation
    match info.kind {
        SlotKind::Global { buf } => {
            stats.global_read_bytes += sz;
            stats.global_loads += 1;
            mem.load(buf, info.elem, index)
                .ok_or_else(|| oob(info, index, mem))
        }
        SlotKind::Shared { idx } => {
            stats.shared_bytes += sz;
            slice_load(&shared[idx as usize], info.elem, index).ok_or_else(|| oob(info, index, mem))
        }
        SlotKind::Local { idx } => {
            stats.local_bytes += sz;
            slice_load(&local[idx as usize], info.elem, index).ok_or_else(|| oob(info, index, mem))
        }
    }
}

#[inline]
pub(crate) fn store_value<M: GlobalMem>(
    info: &MemSlotInfo,
    shared: &mut [Vec<u8>],
    local: &mut [Vec<u8>],
    stats: &mut BlockStats,
    index: i64,
    value: Value,
    mem: &mut M,
) -> Result<(), ExecError> {
    let sz = info.elem.size() as u64;
    stats.int_ops += 1; // address computation
    let ok = match info.kind {
        SlotKind::Global { buf } => {
            stats.global_write_bytes += sz;
            stats.global_stores += 1;
            mem.store(buf, info.elem, index, value)
        }
        SlotKind::Shared { idx } => {
            stats.shared_bytes += sz;
            slice_store(&mut shared[idx as usize], info.elem, index, value)
        }
        SlotKind::Local { idx } => {
            stats.local_bytes += sz;
            slice_store(&mut local[idx as usize], info.elem, index, value)
        }
    };
    if ok {
        Ok(())
    } else {
        Err(oob(info, index, mem))
    }
}

/// Run `code[start..end]` for one thread (a barrier-free segment, a
/// uniform bounds/cond snippet, or a loop body range re-entered via
/// jumps).
///
/// `regs` and `local` are the calling thread's windows; `shared` is the
/// block's image. Working on pre-split disjoint borrows keeps every
/// register access a single small-slice index and lets the stat counters
/// stay in machine registers across the dispatch loop.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_seg<M: GlobalMem>(
    prog: &Program,
    regs: &mut [Value],
    shared: &mut [Vec<u8>],
    local: &mut [Vec<u8>],
    returned: &mut bool,
    stats: &mut BlockStats,
    block: (u32, u32, u32),
    tid: (u32, u32, u32),
    start: u32,
    end: u32,
    mem: &mut M,
) -> Result<(), ExecError> {
    let code = &prog.code;
    let (emask, vmask) = prog.cert_masks();
    let mut pc = start as usize;
    let end = end as usize;
    while pc < end {
        match &code[pc] {
            Inst::Const {
                dst,
                v,
                int_ops,
                float_ops,
            } => {
                stats.int_ops += u64::from(*int_ops);
                stats.float_ops += u64::from(*float_ops);
                regs[*dst as usize] = *v;
            }
            Inst::Tid { dst, axis } => {
                regs[*dst as usize] = Value::I64(axis_of(tid, *axis) as i64);
            }
            Inst::Bid { dst, axis } => {
                regs[*dst as usize] = Value::I64(axis_of(block, *axis) as i64);
            }
            Inst::Copy { dst, src } => {
                regs[*dst as usize] = regs[*src as usize];
            }
            Inst::Unary { dst, op, src } => {
                let a = regs[*src as usize];
                count_op(stats, a.kind());
                regs[*dst as usize] = eval_unop(*op, a);
            }
            Inst::Binary { dst, op, lhs, rhs } => {
                let l = regs[*lhs as usize];
                let r = regs[*rhs as usize];
                let float = l.kind() == ValueKind::Float || r.kind() == ValueKind::Float;
                if float {
                    stats.float_ops += 1;
                } else {
                    stats.int_ops += 1;
                }
                // Fault check hoisted out of the evaluator so the common
                // path is an infallible `Value -> Value` computation (no
                // `Result` moved through the dispatch loop).
                if binop_faults(*op, r, float) {
                    return Err(ExecError::DivByZero);
                }
                regs[*dst as usize] = eval_binop_total(*op, l, r, float);
            }
            Inst::MulAdd { dst, a, b, c } => {
                let av = regs[*a as usize];
                let bv = regs[*b as usize];
                let cv = regs[*c as usize];
                let f1 = av.kind() == ValueKind::Float || bv.kind() == ValueKind::Float;
                let m = eval_binop_total(BinOp::Mul, av, bv, f1);
                let f2 = m.kind() == ValueKind::Float || cv.kind() == ValueKind::Float;
                stats.int_ops += u64::from(!f1) + u64::from(!f2);
                stats.float_ops += u64::from(f1) + u64::from(f2);
                regs[*dst as usize] = eval_binop_total(BinOp::Add, m, cv, f2);
            }
            Inst::Cast { dst, ty, src } => {
                let v = regs[*src as usize];
                count_op(stats, ty.kind());
                regs[*dst as usize] = v.convert_to(*ty);
            }
            Inst::Intrin1 { dst, f, a } => {
                let av = regs[*a as usize];
                stats.float_ops += intrinsic_weight(*f);
                regs[*dst as usize] = eval_intrinsic(*f, &[av]);
            }
            Inst::Intrin2 { dst, f, a, b } => {
                let av = regs[*a as usize];
                let bv = regs[*b as usize];
                stats.float_ops += intrinsic_weight(*f);
                regs[*dst as usize] = eval_intrinsic(*f, &[av, bv]);
            }
            Inst::Test { dst, src } => {
                regs[*dst as usize] = Value::I64(i64::from(regs[*src as usize].is_true()));
            }
            Inst::Load { dst, slot, idx } => {
                let idx = regs[*idx as usize].as_i64();
                let info = slot_info(prog, *slot);
                match info.kind {
                    SlotKind::Global { buf } if emask.is_some_and(|m| m[pc]) => {
                        let (ptr, len) = mem.raw(buf);
                        stats.int_ops += 1; // address computation
                        stats.global_read_bytes += info.elem.size() as u64;
                        stats.global_loads += 1;
                        // SAFETY: this pc carries an in-bounds certificate
                        // for every thread of the launch (CertMode::Elide).
                        regs[*dst as usize] =
                            unsafe { raw_load_unchecked(ptr, len, info.elem, idx) };
                    }
                    _ => {
                        regs[*dst as usize] = load_value(info, shared, local, stats, idx, mem)
                            .map_err(|e| cert_wrap(e, vmask.is_some_and(|m| m[pc])))?;
                    }
                }
            }
            Inst::Store { slot, idx, val } => {
                let idx = regs[*idx as usize].as_i64();
                let v = regs[*val as usize];
                let info = slot_info(prog, *slot);
                match info.kind {
                    SlotKind::Global { buf } if emask.is_some_and(|m| m[pc]) => {
                        let (ptr, len) = mem.raw(buf);
                        stats.int_ops += 1; // address computation
                        stats.global_write_bytes += info.elem.size() as u64;
                        stats.global_stores += 1;
                        // SAFETY: certified in-bounds for every thread
                        // (CertMode::Elide).
                        unsafe { raw_store_unchecked(ptr, len, info.elem, idx, v) };
                    }
                    _ => {
                        store_value(info, shared, local, stats, idx, v, mem)
                            .map_err(|e| cert_wrap(e, vmask.is_some_and(|m| m[pc])))?;
                    }
                }
            }
            Inst::AtomicRmw { op, slot, idx, val } => {
                let idx = regs[*idx as usize].as_i64();
                let v = regs[*val as usize];
                let info = slot_info(prog, *slot);
                match info.kind {
                    SlotKind::Global { buf } if emask.is_some_and(|m| m[pc]) => {
                        let (ptr, len) = mem.raw(buf);
                        let sz = info.elem.size() as u64;
                        stats.int_ops += 2; // load + store address computation
                        stats.global_read_bytes += sz;
                        stats.global_loads += 1;
                        stats.global_write_bytes += sz;
                        stats.global_stores += 1;
                        stats.global_atomics += 1;
                        // SAFETY: certified in-bounds for every thread
                        // (CertMode::Elide).
                        unsafe {
                            let old = raw_load_unchecked(ptr, len, info.elem, idx);
                            raw_store_unchecked(
                                ptr,
                                len,
                                info.elem,
                                idx,
                                apply_atomic(*op, old, v),
                            );
                        }
                    }
                    _ => {
                        let certified = vmask.is_some_and(|m| m[pc]);
                        let old = load_value(info, shared, local, stats, idx, mem)
                            .map_err(|e| cert_wrap(e, certified))?;
                        let new = apply_atomic(*op, old, v);
                        store_value(info, shared, local, stats, idx, new, mem)
                            .map_err(|e| cert_wrap(e, certified))?;
                        if matches!(info.kind, SlotKind::Global { .. }) {
                            stats.global_atomics += 1;
                        }
                    }
                }
            }
            Inst::Jump { target } => {
                pc = *target as usize;
                continue;
            }
            Inst::JumpIfFalse {
                cond,
                target,
                int_ops,
            } => {
                stats.int_ops += u64::from(*int_ops);
                if !regs[*cond as usize].is_true() {
                    pc = *target as usize;
                    continue;
                }
            }
            Inst::JumpIfTrue {
                cond,
                target,
                int_ops,
            } => {
                stats.int_ops += u64::from(*int_ops);
                if regs[*cond as usize].is_true() {
                    pc = *target as usize;
                    continue;
                }
            }
            Inst::ForInit {
                var,
                start: sreg,
                end: ereg,
                step: streg,
                exit,
            } => {
                let s = regs[*sreg as usize].as_i64();
                let e = regs[*ereg as usize].as_i64();
                let st = regs[*streg as usize].as_i64();
                if st == 0 {
                    return Err(ExecError::DivByZero);
                }
                // Normalize bounds to i64 once; `sreg` doubles as the
                // private induction register from here on.
                regs[*sreg as usize] = Value::I64(s);
                regs[*ereg as usize] = Value::I64(e);
                regs[*streg as usize] = Value::I64(st);
                regs[*var as usize] = Value::I64(s);
                if !((st > 0 && s < e) || (st < 0 && s > e)) {
                    pc = *exit as usize;
                    continue;
                }
            }
            Inst::ForNext {
                var,
                ind,
                end: ereg,
                step: streg,
                back,
            } => {
                stats.int_ops += 2; // induction update + test
                let st = regs[*streg as usize].as_i64();
                let e = regs[*ereg as usize].as_i64();
                let v = regs[*ind as usize].as_i64() + st;
                regs[*ind as usize] = Value::I64(v);
                regs[*var as usize] = Value::I64(v);
                if (st > 0 && v < e) || (st < 0 && v > e) {
                    pc = *back as usize;
                    continue;
                }
            }
            Inst::Return => {
                *returned = true;
                return Ok(());
            }
        }
        pc += 1;
    }
    Ok(())
}

/// Execute a contiguous block range serially (ascending linear index — the
/// same order as the tree-walk oracle, so memory effects match bit-for-bit
/// even for racy kernels).
pub fn run_range(
    prog: &Program,
    pool: &mut MemPool,
    blocks: Range<u64>,
) -> Result<BlockStats, ExecError> {
    let mut eng = BlockEngine::new(prog);
    let mut total = BlockStats::default();
    for b in blocks {
        total += eng.run_block(pool, b)?;
    }
    Ok(total)
}

/// Execute a contiguous block range chunked across up to `workers` scoped
/// threads. Falls back to [`run_range`] when one worker suffices or the
/// program is [`Program::serial_only`] (global atomics).
///
/// Per-worker [`BlockStats`] are summed at the end; since every counter is
/// a plain `u64` total, the merged stats are bit-identical to a serial run
/// regardless of interleaving. On error the first failing block in
/// ascending order wins (chunks are ascending and each chunk runs
/// ascending), matching the serial path's reported error.
pub fn run_range_parallel(
    prog: &Program,
    pool: &mut MemPool,
    blocks: Range<u64>,
    workers: usize,
) -> Result<BlockStats, ExecError> {
    let nblocks = blocks.end.saturating_sub(blocks.start);
    let workers = workers.min(nblocks.min(usize::MAX as u64) as usize);
    if workers <= 1 || prog.serial_only() {
        return run_range(prog, pool, blocks);
    }
    let view = RacyView::new(pool);
    let chunks: Vec<Range<u64>> = (0..workers as u64)
        .map(|i| {
            let lo = blocks.start + i * nblocks / workers as u64;
            let hi = blocks.start + (i + 1) * nblocks / workers as u64;
            lo..hi
        })
        .filter(|r| !r.is_empty())
        .collect();
    let results: Vec<Result<BlockStats, ExecError>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|r| {
                let mut v = view.clone();
                s.spawn(move || {
                    let mut eng = BlockEngine::new(prog);
                    let mut total = BlockStats::default();
                    for b in r {
                        total += eng.run_block(&mut v, b)?;
                    }
                    Ok(total)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("engine worker panicked"))
            .collect()
    });
    let mut total = BlockStats::default();
    for r in results {
        total += r?;
    }
    Ok(total)
}

/// Compile `kernel` for `launch` and execute every block with the bytecode
/// engine — the drop-in counterpart of [`crate::interp::execute_launch`].
pub fn execute_launch_bytecode(
    kernel: &Kernel,
    launch: LaunchConfig,
    args: &[Arg],
    pool: &mut MemPool,
) -> Result<BlockStats, ExecError> {
    let prog = Program::compile(kernel, launch, args)?;
    run_range(&prog, pool, 0..launch.num_blocks())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::execute_launch;
    use cucc_ir::parse_kernel;

    fn check_equiv(src: &str, launch: LaunchConfig, setup: impl Fn(&mut MemPool) -> Vec<Arg>) {
        let k = parse_kernel(src).unwrap();
        cucc_ir::validate(&k).unwrap();
        let mut pool_a = MemPool::new();
        let args = setup(&mut pool_a);
        let mut pool_b = pool_a.clone();
        let mut pool_c = pool_a.clone();
        let mut pool_d = pool_a.clone();
        let mut pool_e = pool_a.clone();
        let oracle = execute_launch(&k, launch, &args, &mut pool_a);
        let prog = Program::compile(&k, launch, &args).unwrap();
        let engine = run_range(&prog, &mut pool_b, 0..launch.num_blocks());
        assert_eq!(oracle, engine, "stats/error mismatch vs oracle");
        if oracle.is_ok() {
            assert_eq!(pool_a, pool_b, "memory mismatch vs oracle");
        }
        let par = run_range_parallel(&prog, &mut pool_c, 0..launch.num_blocks(), 4);
        match (&oracle, &par) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a, b, "parallel stats mismatch");
                assert_eq!(pool_a, pool_c, "parallel memory mismatch");
            }
            (Err(_), Err(_)) => {}
            other => panic!("oracle/parallel disagree on success: {other:?}"),
        }
        let simd = crate::lane::run_range_simd(&prog, &mut pool_d, 0..launch.num_blocks());
        assert_eq!(oracle, simd, "simd stats/error mismatch vs oracle");
        if oracle.is_ok() {
            assert_eq!(pool_a, pool_d, "simd memory mismatch vs oracle");
        }
        let spar =
            crate::lane::run_range_parallel_simd(&prog, &mut pool_e, 0..launch.num_blocks(), 4);
        match (&oracle, &spar) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a, b, "parallel simd stats mismatch");
                assert_eq!(pool_a, pool_e, "parallel simd memory mismatch");
            }
            (Err(_), Err(_)) => {}
            other => panic!("oracle/parallel-simd disagree on success: {other:?}"),
        }
    }

    #[test]
    fn saxpy_matches_oracle() {
        let src = r#"
            __global__ void saxpy(float* x, float* y, float a, int n) {
                int i = blockDim.x * blockIdx.x + threadIdx.x;
                if (i < n) y[i] = a * x[i] + y[i];
            }
        "#;
        check_equiv(src, LaunchConfig::cover1(1000, 128), |pool| {
            let x = pool.alloc_elems(Scalar::F32, 1000);
            let y = pool.alloc_elems(Scalar::F32, 1000);
            let xs: Vec<f32> = (0..1000).map(|i| i as f32 * 0.5).collect();
            let ys: Vec<f32> = (0..1000).map(|i| 1000.0 - i as f32).collect();
            pool.write_f32(x, &xs);
            pool.write_f32(y, &ys);
            vec![
                Arg::Buffer(x),
                Arg::Buffer(y),
                Arg::float(2.0),
                Arg::int(1000),
            ]
        });
    }

    #[test]
    fn shared_reverse_matches_oracle() {
        let src = r#"
            __global__ void reverse(int* data) {
                __shared__ int tile[64];
                tile[threadIdx.x] = data[blockIdx.x * blockDim.x + threadIdx.x];
                __syncthreads();
                data[blockIdx.x * blockDim.x + threadIdx.x] = tile[blockDim.x - 1 - threadIdx.x];
            }
        "#;
        check_equiv(src, LaunchConfig::new(4u32, 64u32), |pool| {
            let data = pool.alloc_elems(Scalar::I32, 256);
            let init: Vec<i32> = (0..256).collect();
            pool.write_i32(data, &init);
            vec![Arg::Buffer(data)]
        });
    }

    #[test]
    fn barrier_in_uniform_loop_matches_oracle() {
        let src = r#"
            __global__ void rotate(int* out, int rounds) {
                __shared__ int ring[32];
                ring[threadIdx.x] = threadIdx.x;
                __syncthreads();
                int v = 0;
                for (int r = 0; r < rounds; r++) {
                    v = ring[(threadIdx.x + 1) % 32];
                    __syncthreads();
                    ring[threadIdx.x] = v;
                    __syncthreads();
                }
                out[threadIdx.x] = ring[threadIdx.x];
            }
        "#;
        check_equiv(src, LaunchConfig::new(1u32, 32u32), |pool| {
            let out = pool.alloc_elems(Scalar::I32, 32);
            vec![Arg::Buffer(out), Arg::int(5)]
        });
    }

    #[test]
    fn atomics_fall_back_to_serial_and_match() {
        let src = r#"
            __global__ void hist(int* bins, int* data, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) atomicAdd(&bins[data[id] % 4], 1);
            }
        "#;
        let k = parse_kernel(src).unwrap();
        let mut pool = MemPool::new();
        let bins = pool.alloc_elems(Scalar::I32, 4);
        let data = pool.alloc_elems(Scalar::I32, 100);
        let vals: Vec<i32> = (0..100).collect();
        pool.write_i32(data, &vals);
        let args = [Arg::Buffer(bins), Arg::Buffer(data), Arg::int(100)];
        let launch = LaunchConfig::cover1(100, 32);
        let prog = Program::compile(&k, launch, &args).unwrap();
        assert!(prog.serial_only());
        let stats = run_range_parallel(&prog, &mut pool, 0..launch.num_blocks(), 8).unwrap();
        assert_eq!(pool.read_i32(bins), vec![25, 25, 25, 25]);
        assert_eq!(stats.global_atomics, 100);
    }

    #[test]
    fn early_return_matches_oracle() {
        let src = r#"
            __global__ void k(int* out, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id >= n) return;
                int acc = 0;
                for (int j = 0; j < id % 7; j++) acc = acc + j * j;
                out[id] = acc;
            }
        "#;
        check_equiv(src, LaunchConfig::cover1(500, 64), |pool| {
            let out = pool.alloc_elems(Scalar::I32, 500);
            vec![Arg::Buffer(out), Arg::int(500)]
        });
    }

    #[test]
    fn oob_error_matches_oracle() {
        let src = "__global__ void k(int* out) { out[threadIdx.x] = 1; }";
        check_equiv(src, LaunchConfig::new(1u32, 8u32), |pool| {
            let out = pool.alloc_elems(Scalar::I32, 4);
            vec![Arg::Buffer(out)]
        });
    }

    #[test]
    fn div_by_zero_matches_oracle() {
        let src = "__global__ void k(int* out, int d) { out[0] = 1 / d; }";
        check_equiv(src, LaunchConfig::new(1u32, 1u32), |pool| {
            let out = pool.alloc_elems(Scalar::I32, 1);
            vec![Arg::Buffer(out), Arg::int(0)]
        });
    }

    /// All-mem-insts-certified copy of `prog` (valid only when every access
    /// that executes is dynamically in bounds).
    fn certify_all(prog: &Program, mode: crate::CertMode) -> Program {
        let mut p = prog.clone();
        let mask = vec![true; p.num_insts()];
        p.attach_certs(&mask, mode);
        p
    }

    /// Elide mode must be bit-identical to the checked path: same memory,
    /// same `BlockStats`, on the scalar and the lane tier.
    #[test]
    fn certified_elide_is_bit_identical_to_checked() {
        let src = r#"
            __global__ void saxpy(float* x, float* y, float a, int n) {
                int i = blockDim.x * blockIdx.x + threadIdx.x;
                if (i < n) y[i] = a * x[i] + y[i];
            }
        "#;
        let k = parse_kernel(src).unwrap();
        let launch = LaunchConfig::cover1(1000, 128);
        let mut pool = MemPool::new();
        let x = pool.alloc_elems(Scalar::F32, 1000);
        let y = pool.alloc_elems(Scalar::F32, 1000);
        let xs: Vec<f32> = (0..1000).map(|i| i as f32 * 0.25).collect();
        pool.write_f32(x, &xs);
        pool.write_f32(y, &xs);
        let args = [
            Arg::Buffer(x),
            Arg::Buffer(y),
            Arg::float(3.0),
            Arg::int(1000),
        ];
        let prog = Program::compile(&k, launch, &args).unwrap();
        let eprog = certify_all(&prog, crate::CertMode::Elide);
        assert_eq!(eprog.cert_stats().0, eprog.cert_stats().1);

        let mut p_checked = pool.clone();
        let mut p_elide = pool.clone();
        let s_checked = run_range(&prog, &mut p_checked, 0..launch.num_blocks()).unwrap();
        let s_elide = run_range(&eprog, &mut p_elide, 0..launch.num_blocks()).unwrap();
        assert_eq!(s_checked, s_elide, "scalar stats diverge under elision");
        assert_eq!(p_checked, p_elide, "scalar memory diverges under elision");

        let mut p_checked = pool.clone();
        let mut p_elide = pool.clone();
        let s_checked =
            crate::lane::run_range_simd(&prog, &mut p_checked, 0..launch.num_blocks()).unwrap();
        let s_elide =
            crate::lane::run_range_simd(&eprog, &mut p_elide, 0..launch.num_blocks()).unwrap();
        assert_eq!(s_checked, s_elide, "simd stats diverge under elision");
        assert_eq!(p_checked, p_elide, "simd memory diverges under elision");
    }

    /// A wrong certificate in Validate mode is a loud, typed failure on
    /// every engine tier — never a silent out-of-bounds report.
    #[test]
    fn wrong_certificate_is_a_violation_in_validate_mode() {
        let src = "__global__ void k(int* out) { out[threadIdx.x + 1] = 1; }";
        let k = parse_kernel(src).unwrap();
        let launch = LaunchConfig::new(1u32, 8u32);
        let mut pool = MemPool::new();
        let out = pool.alloc_elems(Scalar::I32, 8);
        let args = [Arg::Buffer(out)];
        let prog = Program::compile(&k, launch, &args).unwrap();

        // Unchecked claim: every access certified. Thread 7 writes out[8].
        let vprog = certify_all(&prog, crate::CertMode::Validate);
        let scalar = run_range(&vprog, &mut pool.clone(), 0..launch.num_blocks());
        assert!(
            matches!(scalar, Err(ExecError::CertificateViolation { ref mem, index: 8, .. }) if mem == "out"),
            "scalar: {scalar:?}"
        );
        let simd = crate::lane::run_range_simd(&vprog, &mut pool.clone(), 0..launch.num_blocks());
        assert!(
            matches!(simd, Err(ExecError::CertificateViolation { index: 8, .. })),
            "simd: {simd:?}"
        );

        // Without certificates the same fault stays a plain OutOfBounds.
        let plain = run_range(&prog, &mut pool.clone(), 0..launch.num_blocks());
        assert!(matches!(plain, Err(ExecError::OutOfBounds { .. })));
    }

    #[test]
    fn engine_kind_parses() {
        assert_eq!(EngineKind::parse("tree"), Some(EngineKind::TreeWalk));
        assert_eq!(EngineKind::parse("bytecode"), Some(EngineKind::Bytecode));
        assert_eq!(EngineKind::parse("simd"), Some(EngineKind::Simd));
        assert_eq!(EngineKind::parse("vectorized"), Some(EngineKind::Simd));
        assert_eq!(EngineKind::parse("jit"), None);
        assert_eq!(EngineKind::Bytecode.to_string(), "bytecode");
        assert_eq!(EngineKind::Simd.to_string(), "simd");
    }

    #[test]
    fn constants_fold_to_short_programs() {
        // `a * 2.0 + 1.0` with scalar args bound: the whole RHS save the
        // load collapses, so the stream stays small.
        let src = r#"
            __global__ void k(float* out, float a) {
                out[threadIdx.x] = a * 2.0 + 1.0;
            }
        "#;
        let k = parse_kernel(src).unwrap();
        let mut pool = MemPool::new();
        let out = pool.alloc_elems(Scalar::F32, 8);
        let args = [Arg::Buffer(out), Arg::float(3.0)];
        let launch = LaunchConfig::new(1u32, 8u32);
        let prog = Program::compile(&k, launch, &args).unwrap();
        // Folded value + tid + store: no multiply/add instructions remain.
        assert!(prog.num_insts() <= 4, "got {} insts", prog.num_insts());
        run_range(&prog, &mut pool, 0..1).unwrap();
        assert_eq!(pool.read_f32(out), vec![7.0f32; 8]);
    }
}
