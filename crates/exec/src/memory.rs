//! Byte-addressed device memory pools.
//!
//! A [`MemPool`] models one memory space as a set of allocations, the way a
//! CUDA context tracks `cudaMalloc` regions. In the cluster simulation every
//! node owns its own pool — the pools are genuinely disjoint `Vec<u8>`s, so
//! any consistency the runtime achieves is achieved by really moving bytes.

use cucc_ir::{Scalar, Value};

/// Handle to one allocation in a [`MemPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub u32);

impl BufferId {
    /// Index into the pool's allocation table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A set of byte buffers standing in for one device/node memory space.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemPool {
    bufs: Vec<Vec<u8>>,
}

impl MemPool {
    /// Empty pool.
    pub fn new() -> MemPool {
        MemPool::default()
    }

    /// Allocate `bytes` zeroed bytes; returns the handle.
    pub fn alloc(&mut self, bytes: usize) -> BufferId {
        let id = BufferId(self.bufs.len() as u32);
        self.bufs.push(vec![0u8; bytes]);
        id
    }

    /// Allocate room for `len` elements of type `elem`.
    pub fn alloc_elems(&mut self, elem: Scalar, len: usize) -> BufferId {
        self.alloc(elem.size() * len)
    }

    /// Number of allocations.
    pub fn len(&self) -> usize {
        self.bufs.len()
    }

    /// True when no allocations exist.
    pub fn is_empty(&self) -> bool {
        self.bufs.is_empty()
    }

    /// Size in bytes of one allocation.
    pub fn size_of(&self, id: BufferId) -> usize {
        self.bufs[id.index()].len()
    }

    /// Read-only view of an allocation.
    pub fn bytes(&self, id: BufferId) -> &[u8] {
        &self.bufs[id.index()]
    }

    /// Mutable view of an allocation.
    pub fn bytes_mut(&mut self, id: BufferId) -> &mut [u8] {
        &mut self.bufs[id.index()]
    }

    /// Overwrite an allocation's contents (lengths must match).
    pub fn write_all(&mut self, id: BufferId, data: &[u8]) {
        let dst = self.bytes_mut(id);
        assert_eq!(dst.len(), data.len(), "write_all length mismatch");
        dst.copy_from_slice(data);
    }

    /// Load element `index` of an allocation viewed as `elem[]`.
    ///
    /// Returns `None` on out-of-bounds.
    #[inline]
    pub fn load(&self, id: BufferId, elem: Scalar, index: i64) -> Option<Value> {
        let bytes = self.bytes(id);
        let sz = elem.size();
        if index < 0 {
            return None;
        }
        let off = (index as usize).checked_mul(sz)?;
        let slice = bytes.get(off..off + sz)?;
        Some(decode(elem, slice))
    }

    /// Store `value` into element `index` of an allocation viewed as
    /// `elem[]`, applying C narrowing. Returns `false` on out-of-bounds.
    #[inline]
    pub fn store(&mut self, id: BufferId, elem: Scalar, index: i64, value: Value) -> bool {
        let sz = elem.size();
        if index < 0 {
            return false;
        }
        let Some(off) = (index as usize).checked_mul(sz) else {
            return false;
        };
        let bytes = self.bytes_mut(id);
        let Some(slice) = bytes.get_mut(off..off + sz) else {
            return false;
        };
        encode(elem, value, slice);
        true
    }

    /// Typed bulk write of a slice of `f32`s.
    pub fn write_f32(&mut self, id: BufferId, data: &[f32]) {
        let dst = self.bytes_mut(id);
        assert_eq!(dst.len(), data.len() * 4);
        for (i, v) in data.iter().enumerate() {
            dst[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Typed bulk read of `f32`s.
    pub fn read_f32(&self, id: BufferId) -> Vec<f32> {
        let src = self.bytes(id);
        src.chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Typed bulk write of `i32`s.
    pub fn write_i32(&mut self, id: BufferId, data: &[i32]) {
        let dst = self.bytes_mut(id);
        assert_eq!(dst.len(), data.len() * 4);
        for (i, v) in data.iter().enumerate() {
            dst[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Typed bulk read of `i32`s.
    pub fn read_i32(&self, id: BufferId) -> Vec<i32> {
        let src = self.bytes(id);
        src.chunks_exact(4)
            .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Typed bulk write of `f64`s.
    pub fn write_f64(&mut self, id: BufferId, data: &[f64]) {
        let dst = self.bytes_mut(id);
        assert_eq!(dst.len(), data.len() * 8);
        for (i, v) in data.iter().enumerate() {
            dst[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Typed bulk read of `f64`s.
    pub fn read_f64(&self, id: BufferId) -> Vec<f64> {
        let src = self.bytes(id);
        src.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }
}

/// Decode one element from little-endian bytes.
#[inline]
pub fn decode(elem: Scalar, bytes: &[u8]) -> Value {
    match elem {
        Scalar::U8 => Value::I64(bytes[0] as i64),
        Scalar::I8 => Value::I64(bytes[0] as i8 as i64),
        Scalar::I32 => Value::I64(i32::from_le_bytes(bytes.try_into().unwrap()) as i64),
        Scalar::U32 => Value::I64(u32::from_le_bytes(bytes.try_into().unwrap()) as i64),
        Scalar::I64 => Value::I64(i64::from_le_bytes(bytes.try_into().unwrap())),
        Scalar::F32 => Value::F64(f32::from_le_bytes(bytes.try_into().unwrap()) as f64),
        Scalar::F64 => Value::F64(f64::from_le_bytes(bytes.try_into().unwrap())),
    }
}

/// Encode one value (with C narrowing) into little-endian bytes.
#[inline]
pub fn encode(elem: Scalar, value: Value, out: &mut [u8]) {
    match elem {
        Scalar::U8 => out[0] = value.as_i64() as u8,
        Scalar::I8 => out[0] = value.as_i64() as i8 as u8,
        Scalar::I32 => out.copy_from_slice(&(value.as_i64() as i32).to_le_bytes()),
        Scalar::U32 => out.copy_from_slice(&(value.as_i64() as u32).to_le_bytes()),
        Scalar::I64 => out.copy_from_slice(&value.as_i64().to_le_bytes()),
        Scalar::F32 => out.copy_from_slice(&(value.as_f64() as f32).to_le_bytes()),
        Scalar::F64 => out.copy_from_slice(&value.as_f64().to_le_bytes()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_roundtrip_scalars() {
        let mut p = MemPool::new();
        let b = p.alloc_elems(Scalar::I32, 4);
        assert_eq!(p.size_of(b), 16);
        assert!(p.store(b, Scalar::I32, 2, Value::I64(-7)));
        assert_eq!(p.load(b, Scalar::I32, 2), Some(Value::I64(-7)));
        assert_eq!(p.load(b, Scalar::I32, 0), Some(Value::I64(0)));
    }

    #[test]
    fn oob_is_none_or_false() {
        let mut p = MemPool::new();
        let b = p.alloc_elems(Scalar::F32, 2);
        assert_eq!(p.load(b, Scalar::F32, 2), None);
        assert_eq!(p.load(b, Scalar::F32, -1), None);
        assert!(!p.store(b, Scalar::F32, 2, Value::F64(1.0)));
        assert!(!p.store(b, Scalar::F32, -1, Value::F64(1.0)));
    }

    #[test]
    fn narrowing_on_store() {
        let mut p = MemPool::new();
        let b = p.alloc_elems(Scalar::U8, 1);
        p.store(b, Scalar::U8, 0, Value::I64(300));
        assert_eq!(p.load(b, Scalar::U8, 0), Some(Value::I64(44)));
        let f = p.alloc_elems(Scalar::F32, 1);
        p.store(f, Scalar::F32, 0, Value::F64(0.1));
        assert_eq!(p.load(f, Scalar::F32, 0), Some(Value::F64(0.1f32 as f64)));
    }

    #[test]
    fn typed_bulk_io() {
        let mut p = MemPool::new();
        let b = p.alloc_elems(Scalar::F32, 3);
        p.write_f32(b, &[1.0, 2.5, -3.0]);
        assert_eq!(p.read_f32(b), vec![1.0, 2.5, -3.0]);
        let c = p.alloc_elems(Scalar::I32, 2);
        p.write_i32(c, &[7, -9]);
        assert_eq!(p.read_i32(c), vec![7, -9]);
        let d = p.alloc_elems(Scalar::F64, 2);
        p.write_f64(d, &[0.5, 1.5]);
        assert_eq!(p.read_f64(d), vec![0.5, 1.5]);
    }

    #[test]
    fn cross_scalar_decode_encode() {
        let mut buf = [0u8; 8];
        encode(Scalar::I64, Value::I64(i64::MIN), &mut buf);
        assert_eq!(decode(Scalar::I64, &buf), Value::I64(i64::MIN));
        let mut b4 = [0u8; 4];
        encode(Scalar::U32, Value::I64(-1), &mut b4);
        assert_eq!(decode(Scalar::U32, &b4), Value::I64(u32::MAX as i64));
    }
}
