//! Dynamic kernel sanitizer: per-buffer write logging with an OOB trap.
//!
//! This is the runtime counterpart of the static verifier in
//! `cucc-analysis::verify`, playing the same role `oracle.rs` plays for the
//! distribution planner: an independent, brute-force ground truth. Every
//! block of the launch runs on a scratch clone of the memory pool with the
//! interpreter's write tracing enabled; the per-block write logs are
//! coalesced into byte intervals and swept for **inter-block overlaps**
//! (write-write races — node-order-dependent after migration), while any
//! `ExecError::OutOfBounds` the interpreter traps is recorded as an OOB
//! finding. Other faults (division by zero, divergent barriers) are kept
//! separate so the verifier soundness contract stays precise: *dynamic OOB
//! implies the static bounds verdict is not `Safe`*, and likewise for races.
//!
//! Overlapping **atomic** writes from different blocks are not races — the
//! distribution analysis already refuses to distribute atomics, and they
//! commute under replicated execution — so atomic-atomic overlaps are
//! excluded (mixed atomic/plain overlaps are reported).

use crate::interp::{execute_block_traced, Arg, WriteRecord};
use crate::memory::MemPool;
use cucc_ir::{Kernel, LaunchConfig};

/// Cap on recorded findings per category; the run is marked `truncated`
/// when reached (checking continues so `clean()` stays meaningful).
const FINDING_CAP: usize = 32;

/// One observed inter-block write-write overlap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceFinding {
    /// Buffer parameter index.
    pub param: u32,
    /// Overlapping byte range (inclusive lo, exclusive hi).
    pub byte_lo: u64,
    pub byte_hi: u64,
    /// The two racing blocks (linear ids).
    pub block_a: u64,
    pub block_b: u64,
    /// True when exactly one side was atomic (both-atomic is not reported).
    pub atomic_mix: bool,
}

/// One trapped out-of-bounds access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OobFinding {
    /// Linear id of the faulting block.
    pub block: u64,
    /// The interpreter's fault message.
    pub message: String,
}

/// Everything the sanitizer observed for one launch.
#[derive(Debug, Clone, Default)]
pub struct SanitizeReport {
    /// Blocks executed.
    pub blocks: u64,
    /// Global-memory write records observed (pre-coalescing).
    pub writes: u64,
    /// Inter-block write-write overlaps.
    pub races: Vec<RaceFinding>,
    /// Out-of-bounds traps.
    pub oob: Vec<OobFinding>,
    /// Non-OOB faults (division by zero, divergent barrier, …) as
    /// `(block, message)` — kept apart from `oob` so each static rule is
    /// cross-checked against exactly its own dynamic signal.
    pub faults: Vec<(u64, String)>,
    /// Some findings were dropped after [`FINDING_CAP`].
    pub truncated: bool,
}

impl SanitizeReport {
    /// True when no race, OOB or fault was observed.
    pub fn clean(&self) -> bool {
        self.races.is_empty() && self.oob.is_empty() && self.faults.is_empty()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        if self.clean() {
            format!(
                "sanitizer: clean ({} blocks, {} writes)",
                self.blocks, self.writes
            )
        } else {
            format!(
                "sanitizer: {} race(s), {} oob trap(s), {} other fault(s) over {} blocks{}",
                self.races.len(),
                self.oob.len(),
                self.faults.len(),
                self.blocks,
                if self.truncated { " [truncated]" } else { "" }
            )
        }
    }
}

/// A coalesced per-block write interval (bytes, exclusive hi).
#[derive(Debug, Clone, Copy)]
struct Interval {
    param: u32,
    lo: u64,
    hi: u64,
    block: u64,
    atomic: bool,
}

/// Coalesce one block's raw write records into maximal intervals, keeping
/// atomic and non-atomic runs separate.
fn coalesce(block: u64, records: &[WriteRecord], out: &mut Vec<Interval>) {
    let mut sorted: Vec<&WriteRecord> = records.iter().collect();
    sorted.sort_by_key(|r| (r.param, r.atomic, r.byte_off));
    let mut cur: Option<Interval> = None;
    for r in sorted {
        let (lo, hi) = (r.byte_off, r.byte_off + r.bytes as u64);
        match &mut cur {
            Some(c) if c.param == r.param && c.atomic == r.atomic && lo <= c.hi => {
                c.hi = c.hi.max(hi);
            }
            _ => {
                if let Some(c) = cur.take() {
                    out.push(c);
                }
                cur = Some(Interval {
                    param: r.param,
                    lo,
                    hi,
                    block,
                    atomic: r.atomic,
                });
            }
        }
    }
    if let Some(c) = cur.take() {
        out.push(c);
    }
}

/// Run every block of the launch with write tracing on a scratch clone of
/// `pool` and report all inter-block write-write overlaps, OOB traps and
/// other faults. Purely observational: the caller's pool is untouched.
pub fn sanitize_launch(
    kernel: &Kernel,
    launch: LaunchConfig,
    args: &[Arg],
    pool: &MemPool,
) -> SanitizeReport {
    let mut report = SanitizeReport::default();
    let mut scratch = pool.clone();
    let mut intervals: Vec<Interval> = Vec::new();
    let mut trace: Vec<WriteRecord> = Vec::new();
    for block in 0..launch.num_blocks() {
        trace.clear();
        match execute_block_traced(kernel, launch, block, args, &mut scratch, &mut trace) {
            Ok(_) => {}
            Err(e) => {
                let msg = e.to_string();
                if matches!(e, crate::interp::ExecError::OutOfBounds { .. }) {
                    if report.oob.len() < FINDING_CAP {
                        report.oob.push(OobFinding {
                            block,
                            message: msg,
                        });
                    } else {
                        report.truncated = true;
                    }
                } else if report.faults.len() < FINDING_CAP {
                    report.faults.push((block, msg));
                } else {
                    report.truncated = true;
                }
            }
        }
        report.blocks += 1;
        report.writes += trace.len() as u64;
        coalesce(block, &trace, &mut intervals);
    }

    // Sweep for overlaps between intervals of *different* blocks.
    intervals.sort_by_key(|iv| (iv.param, iv.lo));
    let mut active: Vec<Interval> = Vec::new();
    for iv in &intervals {
        active.retain(|a| a.param == iv.param && a.hi > iv.lo);
        for a in &active {
            if a.block == iv.block || (a.atomic && iv.atomic) {
                continue;
            }
            if report.races.len() >= FINDING_CAP {
                report.truncated = true;
                break;
            }
            report.races.push(RaceFinding {
                param: iv.param,
                byte_lo: iv.lo.max(a.lo),
                byte_hi: iv.hi.min(a.hi),
                block_a: a.block,
                block_b: iv.block,
                atomic_mix: a.atomic != iv.atomic,
            });
        }
        active.push(*iv);
    }
    report
}

/// Cross-validate an attached bounds-certificate table dynamically: re-run
/// the whole launch on scratch clones of `pool` with the certificates
/// forced to [`CertMode::Validate`], on both the scalar bytecode engine and
/// the vectorized lane engine. In that mode every access takes the checked
/// path, and a bounds fault at a certified access surfaces as
/// [`crate::ExecError::CertificateViolation`] — the certificate itself is
/// wrong (the analysis claimed in-bounds, execution disagreed). `Ok(())`
/// means every certificate held on this launch; other runtime faults are
/// reported as-is. No-op `Ok` when no table is attached. The caller's pool
/// and program are never modified.
pub fn cross_validate_certs(prog: &crate::Program, pool: &MemPool) -> Result<(), crate::ExecError> {
    if prog.cert_mode().is_none() {
        return Ok(());
    }
    let mut vprog = prog.clone();
    vprog.set_cert_mode(crate::CertMode::Validate);
    let nb = vprog.launch().num_blocks();
    let mut scratch = pool.clone();
    crate::engine::run_range(&vprog, &mut scratch, 0..nb)?;
    let mut scratch = pool.clone();
    crate::lane::run_range_simd(&vprog, &mut scratch, 0..nb)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::BufferId;
    use cucc_ir::parse_kernel;

    fn pool_with(elems: usize) -> MemPool {
        let mut pool = MemPool::new();
        let id = pool.alloc(elems * 4);
        assert_eq!(id, BufferId(0));
        pool
    }

    #[test]
    fn cross_validate_accepts_good_and_rejects_bad_certs() {
        let k = parse_kernel(
            "__global__ void k(int* out, int n) {
                int id = blockIdx.x * blockDim.x + threadIdx.x;
                if (id < n) out[id] = id;
            }",
        )
        .unwrap();
        let launch = LaunchConfig::cover1(30, 8);
        let pool = pool_with(30);
        let args = [Arg::Buffer(BufferId(0)), Arg::int(30)];
        let mut prog = crate::Program::compile(&k, launch, &args).unwrap();

        // No certs attached: trivially Ok.
        assert!(cross_validate_certs(&prog, &pool).is_ok());

        // All accesses are guarded in-bounds, so an all-true table holds.
        let mask = vec![true; prog.num_insts()];
        prog.attach_certs(&mask, crate::CertMode::Elide);
        assert!(cross_validate_certs(&prog, &pool).is_ok());

        // Shrink the buffer under the same certificates: now they are wrong,
        // and validation must say so with the typed violation error.
        let small = pool_with(20);
        let bad = cross_validate_certs(&prog, &small);
        assert!(
            matches!(bad, Err(crate::ExecError::CertificateViolation { .. })),
            "{bad:?}"
        );
    }

    #[test]
    fn clean_kernel_reports_clean() {
        let k = parse_kernel(
            "__global__ void k(int* out) {
                out[blockIdx.x * blockDim.x + threadIdx.x] = 1;
            }",
        )
        .unwrap();
        let launch = LaunchConfig::new(4u32, 8u32);
        let pool = pool_with(32);
        let r = sanitize_launch(&k, launch, &[Arg::Buffer(BufferId(0))], &pool);
        assert!(r.clean(), "{r:?}");
        assert_eq!(r.blocks, 4);
        assert_eq!(r.writes, 32);
    }

    #[test]
    fn block_invariant_writes_race() {
        let k = parse_kernel(
            "__global__ void k(int* out) {
                out[threadIdx.x] = 1;
            }",
        )
        .unwrap();
        let launch = LaunchConfig::new(3u32, 8u32);
        let pool = pool_with(8);
        let r = sanitize_launch(&k, launch, &[Arg::Buffer(BufferId(0))], &pool);
        assert!(!r.races.is_empty(), "{r:?}");
        assert!(r.oob.is_empty());
        let f = &r.races[0];
        assert_ne!(f.block_a, f.block_b);
        assert!(f.byte_hi > f.byte_lo);
    }

    #[test]
    fn sliding_window_halo_races_on_the_boundary() {
        let k = parse_kernel(
            "__global__ void k(float* out) {
                out[blockIdx.x * (blockDim.x - 1) + threadIdx.x] = 1.0f;
            }",
        )
        .unwrap();
        let launch = LaunchConfig::new(4u32, 8u32);
        let pool = pool_with(3 * 7 + 8);
        let r = sanitize_launch(&k, launch, &[Arg::Buffer(BufferId(0))], &pool);
        // Adjacent blocks share exactly one element = 4 bytes.
        assert!(!r.races.is_empty(), "{r:?}");
        assert_eq!(r.races[0].byte_hi - r.races[0].byte_lo, 4);
    }

    #[test]
    fn oob_trapped_not_classified_as_race() {
        let k = parse_kernel(
            "__global__ void k(int* out) {
                out[blockIdx.x * blockDim.x + threadIdx.x] = 1;
            }",
        )
        .unwrap();
        let launch = LaunchConfig::new(4u32, 8u32);
        let pool = pool_with(16); // half the needed extent
        let r = sanitize_launch(&k, launch, &[Arg::Buffer(BufferId(0))], &pool);
        assert!(!r.oob.is_empty(), "{r:?}");
        assert!(r.races.is_empty());
        assert!(r.faults.is_empty());
        assert!(!r.clean());
    }

    #[test]
    fn atomic_atomic_overlap_excluded() {
        let k = parse_kernel(
            "__global__ void k(int* out) {
                atomicAdd(&out[0], 1);
            }",
        )
        .unwrap();
        let launch = LaunchConfig::new(4u32, 8u32);
        let pool = pool_with(4);
        let r = sanitize_launch(&k, launch, &[Arg::Buffer(BufferId(0))], &pool);
        assert!(r.races.is_empty(), "{r:?}");
    }

    #[test]
    fn atomic_plain_mix_reported() {
        let k = parse_kernel(
            "__global__ void k(int* out) {
                atomicAdd(&out[0], 1);
                if (threadIdx.x == 0) out[1] = 7;
                if (threadIdx.x == 1) out[0] = 9;
            }",
        )
        .unwrap();
        let launch = LaunchConfig::new(2u32, 8u32);
        let pool = pool_with(4);
        let r = sanitize_launch(&k, launch, &[Arg::Buffer(BufferId(0))], &pool);
        assert!(r.races.iter().any(|f| f.atomic_mix), "{r:?}");
    }

    #[test]
    fn caller_pool_is_untouched() {
        let k = parse_kernel(
            "__global__ void k(int* out) {
                out[threadIdx.x] = 42;
            }",
        )
        .unwrap();
        let launch = LaunchConfig::new(2u32, 4u32);
        let pool = pool_with(4);
        let before = pool.bytes(BufferId(0)).to_vec();
        let _ = sanitize_launch(&k, launch, &[Arg::Buffer(BufferId(0))], &pool);
        assert_eq!(pool.bytes(BufferId(0)), &before[..]);
    }
}
